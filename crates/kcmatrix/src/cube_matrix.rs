//! The cube–literal matrix for common-**cube** extraction.
//!
//! §2 of the paper: "When the subexpression is a cube (kernel) then the
//! factoring is called *cube extraction* (*kernel extraction*). Since
//! the algorithms for kernel extraction and cube extraction are almost
//! similar, we will be dealing with one of them." This module supplies
//! the other one: rows are the network's cubes, columns are literals,
//! and a rectangle `(R, C)` is a common cube `C` shared by the rows `R`.
//! Extracting it as a node `X = Π C` rewrites every covered cube `c`
//! into `(c \ C)·X`, saving
//!
//! ```text
//! value(R, C) = |R| · (|C| − 1) − |C|
//! ```
//!
//! literals. The search enumerates candidate cubes as pairwise row
//! intersections (every maximal rectangle's column set is the
//! intersection of some pair of its rows), then takes the support of
//! each candidate — the standard SIS-era heuristic, exact for maximal
//! rectangles of two or more rows.

use pf_sop::fx::{FxHashMap, FxHashSet};
use pf_sop::{Cube, Lit};

/// One row: a cube of a node's function.
#[derive(Clone, Debug)]
pub struct ClRow {
    /// Owning node.
    pub node: u32,
    /// The product term.
    pub cube: Cube,
}

/// The cube–literal matrix of a set of node functions.
#[derive(Default)]
pub struct CubeLitMatrix {
    rows: Vec<ClRow>,
    /// Rows containing each literal, keyed by literal code.
    by_lit: FxHashMap<Lit, Vec<usize>>,
}

/// A common cube found by [`CubeLitMatrix::best_common_cube`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommonCube {
    /// The shared cube (≥ 2 literals).
    pub cube: Cube,
    /// Indices of the rows it divides.
    pub rows: Vec<usize>,
    /// Literal saving `|rows|·(|cube|−1) − |cube|`.
    pub value: i64,
}

impl CubeLitMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every cube of a node function (cubes with < 2 literals can
    /// never participate in a common cube and are skipped).
    pub fn add_node(&mut self, node: u32, func: &pf_sop::Sop) {
        for cube in func.iter() {
            if cube.len() < 2 {
                continue;
            }
            let idx = self.rows.len();
            for lit in cube.iter() {
                self.by_lit.entry(lit).or_default().push(idx);
            }
            self.rows.push(ClRow {
                node,
                cube: cube.clone(),
            });
        }
    }

    /// The rows.
    pub fn rows(&self) -> &[ClRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows whose cubes are divisible by `cube`.
    pub fn support(&self, cube: &Cube) -> Vec<usize> {
        let mut lits = cube.iter();
        let Some(first) = lits.next() else {
            return (0..self.rows.len()).collect();
        };
        let mut rows: Vec<usize> = match self.by_lit.get(&first) {
            Some(v) => v.clone(),
            None => return Vec::new(),
        };
        for lit in lits {
            let Some(other) = self.by_lit.get(&lit) else {
                return Vec::new();
            };
            rows = intersect(&rows, other);
            if rows.is_empty() {
                break;
            }
        }
        rows
    }

    /// Finds the best common cube (≥ 2 literals, ≥ 2 rows, positive
    /// value), or `None`. `max_pairs` bounds the pairwise candidate
    /// enumeration (per starting row) to keep worst-case cost linearish
    /// on huge PLAs.
    pub fn best_common_cube(&self, max_pairs: usize) -> Option<CommonCube> {
        let mut best: Option<CommonCube> = None;
        let mut tried: FxHashSet<Cube> = FxHashSet::default();
        for (i, row) in self.rows.iter().enumerate() {
            // Candidate partners: rows sharing the row's first literal
            // (any common cube with this row shares every literal, so
            // enumerating per-literal partners would only add dups).
            let mut budget = max_pairs;
            for lit in row.cube.iter() {
                let Some(partners) = self.by_lit.get(&lit) else {
                    continue;
                };
                for &j in partners {
                    if j <= i {
                        continue;
                    }
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                    let cand = row.cube.intersection(&self.rows[j].cube);
                    if cand.len() < 2 || !tried.insert(cand.clone()) {
                        continue;
                    }
                    let support = self.support(&cand);
                    let value = support.len() as i64 * (cand.len() as i64 - 1) - cand.len() as i64;
                    if value > 0
                        && best
                            .as_ref()
                            .is_none_or(|b| (value, &b.cube) > (b.value, &cand))
                    {
                        best = Some(CommonCube {
                            cube: cand,
                            rows: support,
                            value,
                        });
                    }
                }
            }
        }
        best
    }
}

/// Sorted-slice intersection.
fn intersect(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::Sop;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    #[test]
    fn finds_shared_cube_across_nodes() {
        // f = abc + abd, g = abe: common cube ab in 3 rows:
        // value = 3·1 − 2 = 1.
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1, 2, 3], &[1, 2, 4]]));
        m.add_node(1, &sop(&[&[1, 2, 5]]));
        let best = m.best_common_cube(1 << 20).unwrap();
        assert_eq!(best.cube, cube(&[1, 2]));
        assert_eq!(best.rows.len(), 3);
        assert_eq!(best.value, 1);
    }

    #[test]
    fn bigger_shared_cube_wins() {
        // abc shared by 3 rows (value 3·2−3 = 3) beats ab in the same
        // rows (3·1−2 = 1).
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1, 2, 3, 4], &[1, 2, 3, 5], &[1, 2, 3, 6]]));
        let best = m.best_common_cube(1 << 20).unwrap();
        assert_eq!(best.cube, cube(&[1, 2, 3]));
        assert_eq!(best.value, 3);
    }

    #[test]
    fn no_common_cube_returns_none() {
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1, 2], &[3, 4]]));
        assert!(m.best_common_cube(1 << 20).is_none());
    }

    #[test]
    fn two_rows_two_lits_is_break_even_rejected() {
        // ab in exactly 2 rows: value = 2·1 − 2 = 0 → not profitable.
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1, 2, 3], &[1, 2, 4]]));
        assert!(m.best_common_cube(1 << 20).is_none());
    }

    #[test]
    fn three_literal_pair_is_profitable() {
        // abc in exactly 2 rows: value = 2·2 − 3 = 1.
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1, 2, 3, 4], &[1, 2, 3, 5]]));
        let best = m.best_common_cube(1 << 20).unwrap();
        assert_eq!(best.cube, cube(&[1, 2, 3]));
        assert_eq!(best.value, 1);
    }

    #[test]
    fn support_matches_divisibility() {
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3, 4]]));
        let s = m.support(&cube(&[1, 3]));
        for (i, row) in m.rows().iter().enumerate() {
            assert_eq!(
                s.contains(&i),
                row.cube.divisible_by(&cube(&[1, 3])),
                "row {i}"
            );
        }
    }

    #[test]
    fn single_literal_cubes_skipped() {
        let mut m = CubeLitMatrix::new();
        m.add_node(0, &sop(&[&[1], &[2]]));
        assert!(m.is_empty());
    }

    #[test]
    fn negative_phase_literals_work() {
        let mut m = CubeLitMatrix::new();
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::neg(1), Lit::pos(2), Lit::pos(3)]),
            Cube::from_lits([Lit::neg(1), Lit::pos(2), Lit::pos(4)]),
            Cube::from_lits([Lit::neg(1), Lit::pos(2), Lit::pos(5)]),
        ]);
        m.add_node(0, &f);
        let best = m.best_common_cube(1 << 20).unwrap();
        assert_eq!(best.cube, Cube::from_lits([Lit::neg(1), Lit::pos(2)]));
        assert_eq!(best.rows.len(), 3);
    }
}
