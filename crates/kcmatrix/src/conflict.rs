//! Conflict graph + greedy selection over a top-K candidate batch.
//!
//! One extraction pass with `SearchConfig::topk > 1` returns up to K
//! candidate rectangles; applying more than one of them before the next
//! search is only sound when the applies cannot interfere. Two
//! rectangles **conflict** iff:
//!
//! * they share a KC-matrix column (the extracted kernels overlap — the
//!   covered-cube dedup would make their values sub-additive), or
//! * they touch a common network node: `Engine::apply` tombstones
//!   *every* row of every affected node and re-kernelizes it, so a
//!   shared node means one apply invalidates the other's rows and
//!   support. Sharing a row is the special case of sharing that row's
//!   node, and "one's apply would tombstone rows in the other's
//!   support" is exactly node overlap too — a row's rows live and die
//!   with their node.
//!
//! For a column-disjoint, node-disjoint set the applies commute and the
//! values are exactly additive: cube identities are per (node, cube), so
//! no covered cube is shared, no row is tombstoned from under a
//! surviving candidate, and row/column indices stay valid (rows are
//! tombstoned in place, columns only appended). The engine can therefore
//! apply the whole selected batch back-to-back and each apply still
//! saves exactly its rectangle's value.
//!
//! Selection is greedy maximal-independent-set in the canonical
//! (value, cols, rows) order — the same total order the search merge
//! uses — so the selected batch is deterministic and independent of
//! thread count and of the candidates' arrival order.

use crate::matrix::KcMatrix;
use crate::rectangle::{canonical_better, Rectangle};
use pf_sop::fx::FxHashSet;

/// The set of network nodes a rectangle's apply touches (the nodes of
/// its rows). Every row of every one of these nodes is tombstoned when
/// the rectangle is applied.
pub fn affected_nodes(m: &KcMatrix, rect: &Rectangle) -> FxHashSet<u32> {
    rect.rows.iter().map(|&r| m.rows()[r].node).collect()
}

/// Whether two rectangles conflict: shared column, or overlapping
/// affected-node sets (which subsumes shared rows and tombstoned-support
/// overlap — see the module docs).
pub fn conflicts(m: &KcMatrix, a: &Rectangle, b: &Rectangle) -> bool {
    if sorted_overlap(&a.cols, &b.cols) {
        return true;
    }
    let nodes_a = affected_nodes(m, a);
    b.rows.iter().any(|&r| nodes_a.contains(&m.rows()[r].node))
}

/// Whether two ascending-sorted index slices intersect.
fn sorted_overlap(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Greedy maximal non-conflicting subset of `candidates`, selected in
/// canonical (value, cols, rows) order and returned in that order, at
/// most `max` rectangles. The input need not be sorted or deduplicated:
/// it is sorted canonically first (so the result is independent of
/// arrival order), and equal duplicates conflict with themselves (shared
/// columns) so at most one survives.
pub fn select_nonconflicting(m: &KcMatrix, candidates: &[Rectangle], max: usize) -> Vec<Rectangle> {
    if candidates.is_empty() || max == 0 {
        return Vec::new();
    }
    let mut order: Vec<&Rectangle> = candidates.iter().collect();
    order.sort_by(|a, b| {
        if a == b {
            std::cmp::Ordering::Equal
        } else if canonical_better(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });

    let mut selected: Vec<Rectangle> = Vec::new();
    // Union of the selected batch's affected nodes / columns, for O(1)
    // conflict checks against each further candidate.
    let mut nodes: FxHashSet<u32> = FxHashSet::default();
    let mut cols: FxHashSet<usize> = FxHashSet::default();
    for cand in order {
        if selected.len() >= max {
            break;
        }
        if cand.cols.iter().any(|c| cols.contains(c)) {
            continue;
        }
        if cand.rows.iter().any(|&r| nodes.contains(&m.rows()[r].node)) {
            continue;
        }
        cols.extend(cand.cols.iter().copied());
        nodes.extend(cand.rows.iter().map(|&r| m.rows()[r].node));
        selected.push(cand.clone());
    }
    selected
}

/// The canonical non-conflicting *prefix* of `candidates`: walk the
/// canonical (value, cols, rows) order and stop at the first candidate
/// that conflicts with an earlier pick, at most `max` rectangles.
///
/// Prefer this over [`select_nonconflicting`] when the rejected
/// candidates will be *re-validated and re-ranked* before further use
/// (the batched cover's wave drain). The first conflict is evidence the
/// ranking below it is stale: the winner's apply rewrites the loser's
/// rows, which can shrink the loser and every candidate ranked after it,
/// so skipping over the conflict and applying lower-ranked candidates
/// blind inflates the extraction count with small flat extractions the
/// one-per-pass engine never makes. Stopping at the conflict keeps every
/// applied rectangle ranked against a fresh pool. Like
/// [`select_nonconflicting`], the input is sorted canonically first and
/// the result is deterministic; the canonical best is always selected.
pub fn select_prefix_nonconflicting(
    m: &KcMatrix,
    candidates: &[Rectangle],
    max: usize,
) -> Vec<Rectangle> {
    if candidates.is_empty() || max == 0 {
        return Vec::new();
    }
    let mut order: Vec<&Rectangle> = candidates.iter().collect();
    order.sort_by(|a, b| {
        if a == b {
            std::cmp::Ordering::Equal
        } else if canonical_better(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });

    let mut selected: Vec<Rectangle> = Vec::new();
    let mut nodes: FxHashSet<u32> = FxHashSet::default();
    let mut cols: FxHashSet<usize> = FxHashSet::default();
    for cand in order {
        if selected.len() >= max {
            break;
        }
        if cand.cols.iter().any(|c| cols.contains(c))
            || cand.rows.iter().any(|&r| nodes.contains(&m.rows()[r].node))
        {
            break;
        }
        cols.extend(cand.cols.iter().copied());
        nodes.extend(cand.rows.iter().map(|&r| m.rows()[r].node));
        selected.push(cand.clone());
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LabelGen;
    use crate::rectangle::{best_rectangles_seeded, SearchConfig};
    use crate::registry::CubeRegistry;
    use pf_sop::kernel::KernelConfig;
    use pf_sop::{Cube, Lit, Sop};

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    /// The paper's network N: F (id 10), G (id 9), H (id 8).
    fn paper_matrix() -> (KcMatrix, Vec<u32>) {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let f = sop(&[
            &[1, 6],
            &[2, 6],
            &[1, 7],
            &[3, 7],
            &[1, 4, 5],
            &[2, 4, 5],
            &[3, 4, 5],
        ]);
        let g = sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]);
        let h = sop(&[&[1, 4, 5], &[3, 4, 5]]);
        let kc = KernelConfig::default();
        m.add_node_kernels(10, &f, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(9, &g, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(8, &h, &kc, &reg, &mut rl, &mut cl);
        let weights = reg.weights_snapshot();
        (m, weights)
    }

    #[test]
    fn shared_column_conflicts() {
        let (m, _) = paper_matrix();
        let a = Rectangle {
            rows: vec![0],
            cols: vec![0, 2],
            value: 3,
        };
        let b = Rectangle {
            rows: vec![1],
            cols: vec![2, 5],
            value: 2,
        };
        assert!(conflicts(&m, &a, &b));
        assert!(conflicts(&m, &b, &a));
    }

    #[test]
    fn shared_node_conflicts_even_with_disjoint_rows_and_cols() {
        let (m, _) = paper_matrix();
        // Two rows of the same node (the paper matrix starts with
        // several rows of node 10).
        let same_node: Vec<usize> = (0..m.rows().len())
            .filter(|&r| m.rows()[r].node == 10)
            .take(2)
            .collect();
        assert_eq!(same_node.len(), 2);
        let a = Rectangle {
            rows: vec![same_node[0]],
            cols: vec![0],
            value: 1,
        };
        let b = Rectangle {
            rows: vec![same_node[1]],
            cols: vec![1],
            value: 1,
        };
        assert!(conflicts(&m, &a, &b), "same node must conflict");
    }

    #[test]
    fn disjoint_rectangles_do_not_conflict() {
        let (m, _) = paper_matrix();
        let row_of = |node: u32| {
            (0..m.rows().len())
                .find(|&r| m.rows()[r].node == node)
                .unwrap()
        };
        let a = Rectangle {
            rows: vec![row_of(10)],
            cols: vec![0],
            value: 1,
        };
        let b = Rectangle {
            rows: vec![row_of(9)],
            cols: vec![1],
            value: 1,
        };
        assert!(!conflicts(&m, &a, &b));
    }

    #[test]
    fn selection_is_greedy_canonical_and_conflict_free() {
        let (m, w) = paper_matrix();
        let cfg = SearchConfig {
            topk: 8,
            ..SearchConfig::default()
        };
        let (cands, _) = best_rectangles_seeded(&m, &|id| w[id as usize], &cfg, None);
        assert!(cands.len() > 1, "paper matrix has multiple rectangles");
        let sel = select_nonconflicting(&m, &cands, usize::MAX);
        assert!(!sel.is_empty());
        // Best candidate always survives (it is picked first).
        assert_eq!(sel[0], cands[0]);
        // Pairwise conflict-free.
        for i in 0..sel.len() {
            for j in (i + 1)..sel.len() {
                assert!(!conflicts(&m, &sel[i], &sel[j]), "selected set conflicts");
            }
        }
        // Maximality: every rejected candidate conflicts with a pick.
        for c in &cands {
            if !sel.contains(c) {
                assert!(
                    sel.iter().any(|s| conflicts(&m, s, c)),
                    "rejected candidate conflicts with nothing"
                );
            }
        }
    }

    #[test]
    fn selection_is_input_order_independent_and_respects_max() {
        let (m, w) = paper_matrix();
        let cfg = SearchConfig {
            topk: 8,
            ..SearchConfig::default()
        };
        let (cands, _) = best_rectangles_seeded(&m, &|id| w[id as usize], &cfg, None);
        let sel = select_nonconflicting(&m, &cands, usize::MAX);
        let mut shuffled = cands.clone();
        shuffled.reverse();
        assert_eq!(select_nonconflicting(&m, &shuffled, usize::MAX), sel);
        let capped = select_nonconflicting(&m, &cands, 1);
        assert_eq!(capped.len(), 1);
        assert_eq!(capped[0], sel[0]);
        assert!(select_nonconflicting(&m, &cands, 0).is_empty());
        assert!(select_nonconflicting(&m, &[], usize::MAX).is_empty());
    }

    #[test]
    fn prefix_selection_stops_at_the_first_conflict() {
        let (m, w) = paper_matrix();
        let cfg = SearchConfig {
            topk: 8,
            ..SearchConfig::default()
        };
        let (cands, _) = best_rectangles_seeded(&m, &|id| w[id as usize], &cfg, None);
        assert!(cands.len() > 1);
        let prefix = select_prefix_nonconflicting(&m, &cands, usize::MAX);
        let greedy = select_nonconflicting(&m, &cands, usize::MAX);
        // The canonical best is always selected, and the prefix is a
        // prefix of the skip-over greedy selection.
        assert!(!prefix.is_empty());
        assert_eq!(prefix[0], cands[0]);
        assert!(prefix.len() <= greedy.len());
        assert_eq!(&greedy[..prefix.len()], &prefix[..]);
        // It really is the canonical prefix: the candidate right after
        // the last pick (in canonical order) conflicts with a pick.
        if prefix.len() < cands.len() {
            let next = cands
                .iter()
                .find(|c| !prefix.contains(c))
                .expect("a rejected candidate exists");
            assert!(prefix.iter().any(|s| conflicts(&m, s, next)));
        }
        // Capping and empty input behave like the greedy variant.
        let capped = select_prefix_nonconflicting(&m, &cands, 1);
        assert_eq!(capped, vec![cands[0].clone()]);
        assert!(select_prefix_nonconflicting(&m, &cands, 0).is_empty());
        assert!(select_prefix_nonconflicting(&m, &[], usize::MAX).is_empty());
    }

    #[test]
    fn duplicates_collapse_to_one() {
        let (m, _) = paper_matrix();
        let a = Rectangle {
            rows: vec![0],
            cols: vec![0, 1],
            value: 4,
        };
        let sel = select_nonconflicting(&m, &[a.clone(), a.clone()], usize::MAX);
        assert_eq!(sel, vec![a]);
    }
}
