//! Reference rectangle search: the original sorted-`Vec<RowIdx>`
//! implementation, kept verbatim as a differential-testing oracle for
//! the bitset engine in [`crate::rectangle`].
//!
//! It mirrors the classic sequential path exactly — same enumeration
//! order, same pruning, same first-found-max tie handling, and the same
//! (fixed) budget semantics: an expansion is denied *before* it starts,
//! `visited` counts completed expansions, and `budget_exhausted` is set
//! only when a denial actually happened. A property suite asserts the
//! two engines agree on best value and stats; see
//! `crates/kcmatrix/tests/props.rs`. `SearchConfig::par_threads` is
//! ignored here — the oracle is always sequential.

use crate::matrix::{ColIdx, KcMatrix, RowIdx};
use crate::rectangle::{
    evaluate_with, revalidate_seed, row_full_values, stripe_admits, CostModel, Rectangle,
    SearchConfig, SearchStats,
};
use crate::registry::CubeId;
use pf_sop::fx::FxHashSet;

/// Sequential vec-based [`crate::rectangle::best_rectangle`].
pub fn best_rectangle(
    m: &KcMatrix,
    value_of: &(dyn Fn(CubeId) -> u32 + Sync),
    cfg: &SearchConfig,
) -> (Option<Rectangle>, SearchStats) {
    let model = CostModel::area(value_of);
    best_rectangle_with_seed(m, &model, cfg, None)
}

/// Sequential vec-based [`crate::rectangle::best_rectangle_with`].
pub fn best_rectangle_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
) -> (Option<Rectangle>, SearchStats) {
    best_rectangle_with_seed(m, model, cfg, None)
}

/// Sequential vec-based [`crate::rectangle::best_rectangle_with_seed`].
pub fn best_rectangle_with_seed(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
) -> (Option<Rectangle>, SearchStats) {
    let row_full_value = row_full_values(m, model);

    let mut best = seed.and_then(|s| revalidate_seed(m, model, cfg, s));
    if cfg.greedy_seed {
        greedy_sweep(m, model, cfg, &mut best);
    }

    let mut state = Search {
        m,
        model,
        cfg,
        row_full_value: &row_full_value,
        visited: 0,
        truncated: false,
        best,
        cols: Vec::new(),
        scratch: Vec::new(),
        seen: FxHashSet::default(),
    };
    for c0 in 0..m.cols().len() {
        if !stripe_admits(cfg, c0) {
            continue;
        }
        let rows0: Vec<RowIdx> = m.cols()[c0].rows.clone();
        if rows0.is_empty() {
            continue;
        }
        if state.truncated {
            break;
        }
        state.cols.clear();
        state.cols.push(c0);
        state.explore(0, rows0);
    }
    let stats = SearchStats {
        visited: state.visited,
        budget_exhausted: state.truncated,
        // The oracle predates (and does not need) the prune/bound
        // counters; differential tests only compare rectangle, visited
        // and budget_exhausted.
        ..SearchStats::default()
    };
    (state.best, stats)
}

struct Search<'a> {
    m: &'a KcMatrix,
    model: &'a CostModel<'a>,
    cfg: &'a SearchConfig,
    row_full_value: &'a [i64],
    visited: u64,
    truncated: bool,
    best: Option<Rectangle>,
    /// Current column set (shared across the recursion as a stack).
    cols: Vec<ColIdx>,
    /// Per-depth row-intersection buffers, reused between branches.
    scratch: Vec<Vec<RowIdx>>,
    /// Reusable dedup set for exact evaluation.
    seen: FxHashSet<CubeId>,
}

impl Search<'_> {
    fn best_value(&self) -> i64 {
        self.best.as_ref().map_or(0, |b| b.value)
    }

    /// Expands the current column set (`self.cols`) whose supporting
    /// rows are `rows`. `depth` indexes the scratch pool. Returns the
    /// `rows` buffer so the caller can pool it.
    fn explore(&mut self, depth: usize, rows: Vec<RowIdx>) -> Vec<RowIdx> {
        if self.visited >= self.cfg.budget {
            self.truncated = true;
            return rows;
        }
        self.visited += 1;

        if self.cols.len() >= self.cfg.min_cols {
            // Cheap gate first: the duplicate-blind value is an upper
            // bound on the exact value, so the exact (allocating) pass
            // only runs on candidates that could beat the best.
            let col_cost: i64 = self
                .cols
                .iter()
                .map(|&c| (self.model.col_cost)(&self.m.cols()[c].cube))
                .sum();
            let mut approx: i64 = -col_cost;
            for &r in &rows {
                let row = &self.m.rows()[r];
                let mut contrib: i64 = -(self.model.row_cost)(&row.cokernel);
                for &c in &self.cols {
                    let id = row.entry(c).expect("row supports all cols");
                    contrib += (self.model.cube_value)(id) as i64;
                }
                if contrib > 0 {
                    approx += contrib;
                }
            }
            if approx > self.best_value() {
                self.seen.clear();
                if let Some(rect) =
                    evaluate_with(self.m, self.model, &self.cols, &rows, &mut self.seen)
                {
                    if rect.value > self.best_value() {
                        self.best = Some(rect);
                    }
                }
            }
        }

        // Extend with columns to the right of the current rightmost.
        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.scratch.len() <= depth {
            self.scratch.resize_with(depth + 1, Vec::new);
        }
        for c in from..self.m.cols().len() {
            // rows ∩ rows(c), into the per-depth scratch buffer.
            let mut shared = std::mem::take(&mut self.scratch[depth]);
            shared.clear();
            intersect_into(&rows, &self.m.cols()[c].rows, &mut shared);
            if shared.is_empty() {
                self.scratch[depth] = shared;
                continue;
            }
            // Admissible bound: every surviving row can contribute at
            // most its full-row value; column costs only grow.
            let ub: i64 = shared.iter().map(|&r| self.row_full_value[r].max(0)).sum();
            if ub <= self.best_value() {
                self.scratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore(depth + 1, shared);
            self.scratch[depth] = buf;
            self.cols.pop();
            if self.truncated {
                return rows;
            }
        }
        rows
    }
}

/// `out = a ∩ b` over sorted slices, reusing `out`'s allocation.
pub(crate) fn intersect_into(a: &[RowIdx], b: &[RowIdx], out: &mut Vec<RowIdx>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Greedy seed, vec flavour — candidate set and tie handling identical
/// to the bitset `greedy_sweep` in [`crate::rectangle`].
fn greedy_sweep(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    best: &mut Option<Rectangle>,
) {
    let mut seen: FxHashSet<CubeId> = FxHashSet::default();
    for row in m.rows().iter().filter(|r| r.alive) {
        if row.entries.len() < cfg.min_cols {
            continue;
        }
        let cols: Vec<ColIdx> = row.entries.iter().map(|&(c, _)| c).collect();
        if !stripe_admits(cfg, cols[0]) {
            continue;
        }
        // Supporting rows: intersection of the column row-lists.
        let mut support = m.cols()[cols[0]].rows.clone();
        for &c in &cols[1..] {
            support = KcMatrix::intersect_rows(&support, &m.cols()[c].rows);
            if support.is_empty() {
                break;
            }
        }
        if support.is_empty() {
            continue;
        }
        seen.clear();
        if let Some(rect) = evaluate_with(m, model, &cols, &support, &mut seen) {
            if rect.value > best.as_ref().map_or(0, |b| b.value) {
                *best = Some(rect);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LabelGen;
    use crate::registry::CubeRegistry;
    use pf_sop::kernel::KernelConfig;
    use pf_sop::{Cube, Lit, Sop};

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&i| Lit::pos(i)))),
        )
    }

    #[test]
    fn oracle_matches_bitset_engine_on_paper_g() {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            9,
            &sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let cfg = SearchConfig::default();
        let (ours, our_stats) = best_rectangle(&m, &value_of, &cfg);
        let (theirs, their_stats) = crate::rectangle::best_rectangle(&m, &value_of, &cfg);
        assert_eq!(ours, theirs);
        assert_eq!(our_stats.visited, their_stats.visited);
        assert_eq!(our_stats.budget_exhausted, their_stats.budget_exhausted);
    }

    #[test]
    fn intersect_into_matches_manual() {
        let mut out = Vec::new();
        intersect_into(&[1, 3, 5, 7], &[3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
    }
}
