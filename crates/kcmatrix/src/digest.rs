//! Canonical content digests — the one hashing implementation shared by
//! the extraction cache, poison-pill quarantine and (eventually) shard
//! routing.
//!
//! A [`Digest`] is a 128-bit content address computed over *canonical*
//! structure: cube literals are hashed in the sorted order [`Cube`]
//! already maintains, SOP cubes in their canonical ascending order, and
//! networks signal-by-signal in id order. Two byte-identical inputs
//! always produce the same digest across runs, platforms and processes
//! (the hash is a fixed-seed FNV-1a pair with an avalanche finisher —
//! deliberately *not* `std::hash`, whose output is allowed to change
//! between releases and is randomized for hash maps).
//!
//! The digest is a cache/routing key, not a cryptographic commitment:
//! collisions are astronomically unlikely for the matrix sizes involved
//! but not adversarially hard.

use pf_network::{Network, SignalKind};
use pf_sop::{Cube, Sop};
use std::fmt;

/// A 128-bit stable content digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u64, pub u64);

impl Digest {
    /// Digest of a byte string.
    pub fn of_bytes(bytes: &[u8]) -> Digest {
        let mut h = DigestBuilder::new();
        h.write_bytes(bytes);
        h.finish()
    }

    /// Digest of a UTF-8 string.
    pub fn of_str(s: &str) -> Digest {
        Digest::of_bytes(s.as_bytes())
    }

    /// Folds another digest into this one (order-sensitive), producing
    /// a combined key — e.g. `algorithm ⊕ content ⊕ procs`.
    pub fn combine(self, other: Digest) -> Digest {
        let mut h = DigestBuilder::new();
        h.write_u64(self.0);
        h.write_u64(self.1);
        h.write_u64(other.0);
        h.write_u64(other.1);
        h.finish()
    }

    /// Lowercase hex rendering (32 chars), for logs and wire payloads.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental digest state. Feed it lengths before variable-size
/// fields so concatenation ambiguity can't alias two inputs.
pub struct DigestBuilder {
    a: u64,
    b: u64,
}

impl Default for DigestBuilder {
    fn default() -> Self {
        DigestBuilder::new()
    }
}

impl DigestBuilder {
    /// Fresh state with the fixed seeds.
    pub fn new() -> Self {
        DigestBuilder {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Hashes raw bytes into both lanes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ (byte as u64).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Hashes one `u32`.
    pub fn write_u32(&mut self, x: u32) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Hashes a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Finalizes with a splitmix-style avalanche so low-entropy inputs
    /// (small literal codes) still spread across all 128 bits.
    pub fn finish(self) -> Digest {
        Digest(
            mix(self.a ^ self.b.rotate_left(32)),
            mix(self.b ^ self.a.rotate_left(32)),
        )
    }
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hashes one cube's sorted literals into `h`.
fn write_cube(h: &mut DigestBuilder, cube: &Cube) {
    h.write_u64(cube.len() as u64);
    for l in cube.iter() {
        h.write_u32(l.code());
    }
}

/// Digest of a cube: its sorted literal codes.
pub fn cube_digest(cube: &Cube) -> Digest {
    let mut h = DigestBuilder::new();
    write_cube(&mut h, cube);
    h.finish()
}

/// Digest of an SOP — the canonical hash of its sorted cube literals.
/// [`Sop`] keeps cubes sorted and duplicate-free, so equal functions
/// digest equally regardless of how they were built.
pub fn sop_digest(f: &Sop) -> Digest {
    let mut h = DigestBuilder::new();
    h.write_u64(f.num_cubes() as u64);
    for cube in f.iter() {
        write_cube(&mut h, cube);
    }
    h.finish()
}

/// Content digest of a whole network: every signal in id order (kind,
/// name, and — for nodes — the canonical cube-literal hash of its
/// function) plus the output list. Two networks built the same way
/// digest identically; any change to any cone changes the digest.
pub fn network_digest(nw: &Network) -> Digest {
    let mut h = DigestBuilder::new();
    h.write_u64(nw.num_signals() as u64);
    for id in nw.signal_ids() {
        h.write_str(nw.name(id));
        match nw.kind(id) {
            SignalKind::PrimaryInput => h.write_u32(1),
            SignalKind::Node => {
                h.write_u32(2);
                let f = nw.func(id);
                h.write_u64(f.num_cubes() as u64);
                for cube in f.iter() {
                    write_cube(&mut h, cube);
                }
            }
        }
    }
    h.write_u64(nw.outputs().len() as u64);
    for &o in nw.outputs() {
        h.write_u32(o);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::Lit;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    #[test]
    fn equal_inputs_digest_equally() {
        let a = Sop::from_cubes([cube(&[1, 2]), cube(&[3])]);
        let b = Sop::from_cubes([cube(&[3]), cube(&[2, 1])]); // canonicalized
        assert_eq!(sop_digest(&a), sop_digest(&b));
        assert_eq!(cube_digest(&cube(&[5, 9])), cube_digest(&cube(&[9, 5])));
    }

    #[test]
    fn different_inputs_digest_differently() {
        assert_ne!(
            sop_digest(&Sop::from_cube(cube(&[1]))),
            sop_digest(&Sop::from_cube(cube(&[2])))
        );
        // Phase matters.
        assert_ne!(
            cube_digest(&Cube::single(Lit::pos(4))),
            cube_digest(&Cube::single(Lit::neg(4)))
        );
        // Cube grouping matters: {ab} vs {a}+{b}.
        assert_ne!(
            sop_digest(&Sop::from_cube(cube(&[1, 2]))),
            sop_digest(&Sop::from_cubes([cube(&[1]), cube(&[2])]))
        );
    }

    #[test]
    fn digest_is_stable_across_calls() {
        let d1 = Digest::of_str("seq/gen:misex3@0.05");
        let d2 = Digest::of_str("seq/gen:misex3@0.05");
        assert_eq!(d1, d2);
        assert_eq!(d1.to_hex().len(), 32);
        assert_ne!(d1, Digest::of_str("seq/gen:misex3@0.06"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Digest::of_str("a");
        let b = Digest::of_str("b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_ne!(a.combine(b), a);
    }

    #[test]
    fn network_digest_tracks_content() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw
            .add_node(
                "f",
                Sop::from_cubes([Cube::single(Lit::pos(a)), Cube::single(Lit::pos(b))]),
            )
            .unwrap();
        nw.mark_output(f).unwrap();
        let d0 = network_digest(&nw);
        assert_eq!(d0, network_digest(&nw.clone()));
        // Changing one cone changes the digest.
        let mut changed = nw.clone();
        changed
            .set_func(f, Sop::from_cube(Cube::single(Lit::pos(a))))
            .unwrap();
        assert_ne!(d0, network_digest(&changed));
    }
}
