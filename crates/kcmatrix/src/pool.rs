//! Persistent parallel search executor: a [`SearchPool`] of long-lived
//! workers plus cross-pass per-column value ceilings.
//!
//! The extraction loop calls the rectangle search hundreds of times per
//! circuit, and [`crate::par_search::search`] pays two per-pass taxes
//! for that: `N − 1` thread spawns, and cold scratch (greedy buffers,
//! per-depth row sets, visited sets) reallocated by every worker on
//! every call. This module makes the steady-state pass spawn-free and
//! allocation-free:
//!
//! * workers are spawned once ([`SearchPool::warm`], or lazily on the
//!   first pass that needs them) and park on a condvar between passes;
//! * each worker — including the inline worker 0, which runs on the
//!   calling thread — owns one [`WorkerScratch`] for its whole life, so
//!   buffer capacities survive across passes (and across jobs, when the
//!   pool itself is reused by a resident service);
//! * a 1-thread pass touches no locks, no condvars and no atomics at
//!   all: it runs the worker body inline over plain `Cell` state.
//!
//! # Cross-pass ceilings
//!
//! After `Engine::apply`, only the rows and columns intersecting the
//! applied rectangle change — every other leftmost-column subtree would
//! be re-explored bit-identically. The pool therefore remembers, per
//! leftmost column, a **ceiling**: a sound upper bound on the value of
//! any rectangle rooted at that column, recorded when the column's task
//! ran to completion. On the next pass the caller declares which
//! columns are dirty ([`CeilingUpdate::Dirty`]) and a surviving (clean,
//! valid) ceiling strictly below the pass's shared bound prunes the
//! whole task before it starts.
//!
//! ## Invariants
//!
//! 1. **Admissibility.** A task's recorded ceiling is the running max
//!    of `approx_value` over every expanded node of its subtree and of
//!    the admissible `ub` of every bound-pruned edge. Any positive
//!    -value rectangle in the subtree either sits at an expanded node
//!    (its exact value ≤ that node's `approx`) or below a pruned edge
//!    (its value ≤ that edge's `ub`) — so the ceiling bounds them all,
//!    regardless of how the shared bound moved while the task ran.
//! 2. **Staleness.** A ceiling is only consulted while its column's
//!    subtree is byte-identical to when it was recorded. The caller
//!    must mark dirty every column that gained or lost a row, or whose
//!    rows' values changed; [`CeilingUpdate::Off`] and truncated passes
//!    invalidate everything (a truncated pass completes no task set
//!    worth trusting, and its explored prefix is interleaving-
//!    dependent). A fingerprint of `(min_cols, stripe)` guards against
//!    config drift between passes — `approx` and task admission depend
//!    on both.
//! 3. **Determinism.** The skip test is `ceiling < bound` (strict) or
//!    `ceiling ≤ 0`: identical in spirit to the in-pass strict prune,
//!    so a subtree that could still *tie* the final winner is always
//!    re-explored and the canonical (value, cols, rows) merge sees the
//!    same candidate set as a cold pass. Warm and cold passes return
//!    byte-identical rectangles; only `SearchStats` (visited/pruned
//!    counts) differ.
//!
//! The ceilings are *task-level* pruning state. They are never used to
//! seed the shared lower bound — they are upper bounds, and feeding one
//! into the bound could prune a true maximum elsewhere. The bound is
//! seeded, as always, from the re-validated previous-pass rectangle.

use crate::matrix::{ColIdx, KcMatrix};
use crate::par_search::{
    admissible_tasks, merge_results, run_worker, AtomicSync, CeilingsView, PassSync, Queue,
    SoloSync, WorkerScratch,
};
use crate::rectangle::{
    revalidate_seed, row_full_values, CostModel, Rectangle, SearchConfig, SearchStats,
};
use crate::tiles::TilePanels;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a pooled pass should treat the stored per-column ceilings.
pub enum CeilingUpdate<'a> {
    /// Ceilings off: drop any stored state and record none. For callers
    /// whose cube values can *rise* between passes (e.g. the L-shaped
    /// engine's COVERED→FREE release) or whose matrix identity is
    /// unknown (a pool reused across jobs).
    Off,
    /// First pass over a fresh matrix: reset all ceilings to invalid,
    /// record fresh ones.
    Reset,
    /// Incremental pass: the matrix changed only in these columns (and
    /// in rows appended since the last pass — the caller must include
    /// the appended rows' columns). Clean columns keep their ceilings.
    Dirty(&'a [ColIdx]),
}

/// Type-erased pass body handed to the parked workers. The `'static` is
/// a lie told via [`std::mem::transmute`] in [`SearchPool::run_pass`],
/// made sound because the caller blocks until every participant
/// finished the pass — no borrow in the closure outlives the call.
type Job = Arc<dyn Fn(usize, &mut WorkerScratch) + Send + Sync + 'static>;

/// [`Job`] before the lifetime lie: the same closure object still
/// carrying its real borrows.
type BorrowedJob<'a> = Arc<dyn Fn(usize, &mut WorkerScratch) + Send + Sync + 'a>;

struct PoolState {
    /// Bumped once per multi-worker pass; sleeping workers wake on it.
    epoch: u64,
    job: Option<Job>,
    /// Background workers participating in the current pass. A worker
    /// with `idx > participants` skips the epoch without touching
    /// `active` (a pass may use fewer workers than exist).
    participants: usize,
    /// Participants still running the current pass.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between passes.
    work_cv: Condvar,
    /// The caller parks here until `active == 0`.
    done_cv: Condvar,
}

/// Per-column cross-pass ceilings (see the module docs).
#[derive(Default)]
struct Ceilings {
    vals: Vec<i64>,
    valid: Vec<bool>,
    /// `(min_cols, stripe)` the ceilings were recorded under; a
    /// mismatch invalidates everything.
    fingerprint: Option<(usize, Option<(u32, u32)>)>,
}

/// A portable copy of a pool's per-column ceilings, for warm-starting a
/// *different* pool over a byte-identical matrix (the cross-job half of
/// the ceiling story — see [`SearchPool::export_ceilings`]).
///
/// Soundness is the caller's contract: a snapshot may only be seeded
/// into a pass over a matrix byte-identical to the one it was recorded
/// over (content-addressing in `pf-cache` is what establishes that).
/// Config drift is still self-guarding — the embedded `(min_cols,
/// stripe)` fingerprint makes a mismatched pass reset instead of
/// consulting stale bounds — and determinism invariant 3 (strict skip
/// test) keeps seeded passes byte-identical to cold ones.
#[derive(Clone, Debug, Default)]
pub struct CeilingSnapshot {
    vals: Vec<i64>,
    valid: Vec<bool>,
    fingerprint: Option<(usize, Option<(u32, u32)>)>,
}

impl CeilingSnapshot {
    /// Number of columns with a valid (consultable) ceiling.
    pub fn valid_columns(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

impl Ceilings {
    fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.fingerprint = None;
    }

    fn reset(&mut self, ncols: usize) {
        self.vals.clear();
        self.vals.resize(ncols, 0);
        self.valid.clear();
        self.valid.resize(ncols, false);
        self.fingerprint = None;
    }
}

/// A persistent pool of rectangle-search workers with owned scratch and
/// cross-pass pruning state. Create one per extraction run (or adopt
/// one per resident worker thread), drive every pass through
/// [`crate::rectangle::best_rectangle_pooled`], and drop it when done —
/// `Drop` joins the background threads.
pub struct SearchPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Worker 0's scratch — the inline worker on the calling thread.
    solo: WorkerScratch,
    spawned: u64,
    passes: u64,
    ceil: Ceilings,
    /// Resident tile-panel mirror for `SearchConfig::tile_width > 0`
    /// passes, kept in sync across passes by the same dirty-column
    /// bookkeeping that drives the ceilings (see [`crate::tiles`]).
    panel: Option<TilePanels>,
    /// `tile` phase counters: full panel (re)builds and in-place
    /// column re-encodes, for observability (`tile_rebuilds` /
    /// `tile_synced_cols`).
    tile_rebuilds: u64,
    tile_synced_cols: u64,
}

impl Default for SearchPool {
    fn default() -> Self {
        SearchPool::new()
    }
}

impl SearchPool {
    /// A pool with no background threads yet; they are spawned lazily
    /// by the first pass that needs them (or eagerly by [`warm`]).
    ///
    /// [`warm`]: SearchPool::warm
    pub fn new() -> Self {
        SearchPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    job: None,
                    participants: 0,
                    active: 0,
                    panicked: false,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            handles: Vec::new(),
            solo: WorkerScratch::default(),
            spawned: 0,
            passes: 0,
            ceil: Ceilings::default(),
            panel: None,
            tile_rebuilds: 0,
            tile_synced_cols: 0,
        }
    }

    /// Eagerly spawns the background workers an `nthreads`-wide pass
    /// will use, so the first search pays no spawn latency. Call before
    /// the measured region starts.
    pub fn warm(&mut self, nthreads: usize) {
        self.ensure_bg(nthreads.saturating_sub(1));
    }

    /// Background (parked) worker threads currently alive.
    pub fn bg_threads(&self) -> usize {
        self.handles.len()
    }

    /// Total threads ever spawned by this pool — the warm-pool
    /// regression metric: repeated passes must not move it.
    pub fn spawned_threads(&self) -> u64 {
        self.spawned
    }

    /// Search passes executed through this pool.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// `tile` phase counter: full panel (re)builds this pool performed
    /// for the tiled kernel. A steady-state incremental run should pin
    /// this at 1 (the first pass) — a climbing count means the dirty
    /// contract keeps forcing rebuilds.
    pub fn tile_rebuilds(&self) -> u64 {
        self.tile_rebuilds
    }

    /// `tile` phase counter: columns re-encoded in place (dirty or
    /// appended) across all incremental panel syncs.
    pub fn tile_synced_cols(&self) -> u64 {
        self.tile_synced_cols
    }

    /// Drops all stored ceilings (e.g. before reusing the pool on a
    /// different matrix). Equivalent to the next pass running with
    /// [`CeilingUpdate::Off`] then [`CeilingUpdate::Reset`].
    pub fn invalidate_ceilings(&mut self) {
        self.ceil.invalidate_all();
    }

    /// Copies the current ceilings out for cross-job warm-starting, or
    /// `None` when nothing consultable is stored (ceilings off,
    /// invalidated, or no completed pass yet).
    pub fn export_ceilings(&self) -> Option<CeilingSnapshot> {
        if self.ceil.fingerprint.is_none() || !self.ceil.valid.iter().any(|&v| v) {
            return None;
        }
        Some(CeilingSnapshot {
            vals: self.ceil.vals.clone(),
            valid: self.ceil.valid.clone(),
            fingerprint: self.ceil.fingerprint,
        })
    }

    /// Installs a snapshot exported by [`export_ceilings`], replacing
    /// any stored ceilings. The next [`CeilingUpdate::Dirty`] pass
    /// consults them; see [`CeilingSnapshot`] for the matrix-identity
    /// contract the caller must uphold.
    ///
    /// [`export_ceilings`]: SearchPool::export_ceilings
    pub fn seed_ceilings(&mut self, snap: &CeilingSnapshot) {
        self.ceil.vals = snap.vals.clone();
        self.ceil.valid = snap.valid.clone();
        self.ceil.fingerprint = snap.fingerprint;
    }

    fn ensure_bg(&mut self, nbg: usize) {
        while self.handles.len() < nbg {
            let idx = self.handles.len() + 1; // worker 0 is inline
            let shared = Arc::clone(&self.shared);
            let start_epoch = shared.state.lock().epoch;
            self.spawned += 1;
            let h = std::thread::Builder::new()
                .name(format!("pf-search-{idx}"))
                .spawn(move || worker_loop(shared, idx, start_epoch))
                .expect("spawn search pool worker");
            self.handles.push(h);
        }
    }

    /// Runs `f(worker_index, scratch)` on `nworkers` workers: index 0
    /// inline on the calling thread, the rest on parked pool threads.
    /// Blocks until all participants return. Panics (after the pass
    /// fully drains) if any worker panicked.
    fn run_pass<F>(&mut self, nworkers: usize, f: &F)
    where
        F: Fn(usize, &mut WorkerScratch) + Sync,
    {
        self.passes += 1;
        let nbg = nworkers.saturating_sub(1);
        if nbg == 0 {
            // 1-thread fast path: no locks, no wakeups, no atomics.
            f(0, &mut self.solo);
            return;
        }
        self.ensure_bg(nbg);

        // Erase the closure's borrows; sound because this function does
        // not return until `active == 0` (every participant is done and
        // has dropped its clone of the job).
        let job: Job = {
            let arc: BorrowedJob<'_> = Arc::new(f);
            #[allow(clippy::missing_transmute_annotations)]
            unsafe {
                std::mem::transmute(arc)
            }
        };
        {
            let mut st = self.shared.state.lock();
            st.job = Some(job);
            st.participants = nbg;
            st.active = nbg;
            st.panicked = false;
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }

        f(0, &mut self.solo);

        let mut st = self.shared.state.lock();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        assert!(!panicked, "search worker panicked");
    }
}

impl Drop for SearchPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, idx: usize, start_epoch: u64) {
    // The worker's whole point: scratch allocated once, reused across
    // every pass (and every job) until the pool is dropped.
    let mut scratch = WorkerScratch::default();
    let mut seen_epoch = start_epoch;
    loop {
        let (job, participate) = {
            let mut st = shared.state.lock();
            while !st.shutdown && st.epoch == seen_epoch {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            // A worker past the pass's width skips without touching
            // `active` — it was never counted in.
            if idx <= st.participants {
                (st.job.clone(), true)
            } else {
                (None, false)
            }
        };
        if !participate {
            continue;
        }
        let job = job.expect("participant woken without a job");
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(idx, &mut scratch)));
        drop(job);
        let mut st = shared.state.lock();
        if outcome.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// One rectangle-search pass on the pool. Mirrors
/// [`crate::par_search::search`] exactly — same tasks, same greedy
/// striping, same canonical merge and truncation fallback — plus the
/// ceiling lifecycle described in the module docs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pool_search(
    pool: &mut SearchPool,
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[crate::rowset::RowSet],
    init_best: Option<Rectangle>,
    update: CeilingUpdate<'_>,
) -> (Vec<Rectangle>, SearchStats) {
    let ncols = m.cols().len();
    // Panel prologue: keep the resident tile mirror in sync with the
    // matrix. The caller's `update` carries exactly the information the
    // panel needs — `Dirty` lists every column that gained or lost a
    // row since the previous pass (the `Engine::apply` contract), so an
    // incremental re-encode suffices; anything else rebuilds.
    if cfg.tile_width == 0 {
        pool.panel = None;
    } else if let (Some(panel), CeilingUpdate::Dirty(dirty)) = (&mut pool.panel, &update) {
        let appended = col_sets.len().saturating_sub(panel.ncols());
        if panel.sync(m.rows().len(), col_sets, cfg.tile_width, dirty) {
            pool.tile_rebuilds += 1;
        } else {
            pool.tile_synced_cols += (appended + dirty.len()) as u64;
        }
    } else {
        pool.panel = Some(TilePanels::build(m.rows().len(), col_sets, cfg.tile_width));
        pool.tile_rebuilds += 1;
    }

    // Ceiling prologue: decide whether this pass consults and records
    // ceilings, and apply the caller-declared invalidation.
    let enabled = match update {
        CeilingUpdate::Off => {
            pool.ceil.invalidate_all();
            false
        }
        CeilingUpdate::Reset => {
            pool.ceil.reset(ncols);
            true
        }
        CeilingUpdate::Dirty(dirty) => {
            let fp = Some((cfg.min_cols, cfg.stripe));
            if pool.ceil.fingerprint != fp || pool.ceil.vals.len() > ncols {
                // Config drift or a shrunk matrix (should not happen —
                // rows are tombstoned, columns appended): start over.
                pool.ceil.reset(ncols);
            } else {
                // New columns arrive invalid; dirty columns flip off.
                pool.ceil.vals.resize(ncols, 0);
                pool.ceil.valid.resize(ncols, false);
                for &c in dirty {
                    if let Some(v) = pool.ceil.valid.get_mut(c) {
                        *v = false;
                    }
                }
            }
            true
        }
    };

    let tasks = admissible_tasks(m, cfg, col_sets);
    if tasks.is_empty() {
        return (init_best.into_iter().collect(), SearchStats::default());
    }
    let nthreads = cfg.par_threads.min(tasks.len()).max(1);
    let greedy_rows = if cfg.greedy_seed { m.rows().len() } else { 0 };
    let queue = Queue::new(&tasks, nthreads, greedy_rows);
    let init_bound = crate::par_search::init_bound(cfg, init_best.as_ref());

    // Move the ceilings (and the panel) out of the pool so
    // `run_pass(&mut pool)` and the read-only views can coexist.
    let mut ceil = std::mem::take(&mut pool.ceil);
    let panel = std::mem::take(&mut pool.panel);
    let panel_ref = panel.as_ref();
    let view = if enabled {
        Some(CeilingsView {
            vals: &ceil.vals,
            valid: &ceil.valid,
        })
    } else {
        None
    };

    let (best, stats, ceil_out, truncated) = if nthreads == 1 {
        // Atomic-free pass straight on the caller's thread; identical
        // enumeration and pruning, so identical results.
        pool.passes += 1;
        let sync = SoloSync::new(init_bound);
        let result = run_worker(
            m,
            model,
            cfg,
            row_full_value,
            col_sets,
            &queue,
            &sync,
            &mut pool.solo,
            view.as_ref(),
            panel_ref,
        );
        let truncated = sync.is_truncated();
        let (best, stats, ceil_out) = merge_results(vec![result], init_best, truncated, cfg.topk);
        (best, stats, ceil_out, truncated)
    } else {
        let sync = AtomicSync::new(init_bound);
        let slots: Vec<Mutex<Option<crate::par_search::WorkerResult>>> =
            (0..nthreads).map(|_| Mutex::new(None)).collect();
        let view_ref = view.as_ref();
        pool.run_pass(nthreads, &|idx: usize, ws: &mut WorkerScratch| {
            let r = run_worker(
                m,
                model,
                cfg,
                row_full_value,
                col_sets,
                &queue,
                &sync,
                ws,
                view_ref,
                panel_ref,
            );
            *slots[idx].lock() = Some(r);
        });
        let results: Vec<_> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every pass worker reports"))
            .collect();
        let truncated = sync.is_truncated();
        let (best, stats, ceil_out) = merge_results(results, init_best, truncated, cfg.topk);
        (best, stats, ceil_out, truncated)
    };

    // Ceiling epilogue: commit the freshly recorded ceilings — unless
    // the pass truncated, in which case nothing finished cleanly and
    // every stored ceiling dies with it (invariant 2).
    if enabled {
        if truncated {
            ceil.invalidate_all();
        } else {
            for (c, v) in ceil_out {
                ceil.vals[c] = v;
                ceil.valid[c] = true;
            }
            ceil.fingerprint = Some((cfg.min_cols, cfg.stripe));
        }
    }
    pool.ceil = ceil;
    // The panel stays valid regardless of truncation — it mirrors
    // matrix *content*, not search state.
    pool.panel = panel;

    (best, stats)
}

/// [`pool_search`] with seed revalidation — the pooled twin of
/// [`crate::rectangle::best_rectangle_with_seed`].
pub(crate) fn pool_search_seeded(
    pool: &mut SearchPool,
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
    update: CeilingUpdate<'_>,
) -> (Vec<Rectangle>, SearchStats) {
    let row_full_value = row_full_values(m, model);
    let col_sets = m.col_row_sets();
    let best = seed.and_then(|s| revalidate_seed(m, model, cfg, s));
    pool_search(
        pool,
        m,
        model,
        cfg,
        &row_full_value,
        &col_sets,
        best,
        update,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LabelGen;
    use crate::rectangle::{best_rectangle_seeded, SearchConfig};
    use crate::registry::CubeRegistry;
    use pf_sop::kernel::KernelConfig;
    use pf_sop::{Cube, Lit, Sop};

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    /// The paper's network N (Eq. 1) — same fixture as the rectangle
    /// tests: F (id 10), G (id 9), H (id 8), vars a=1 … g=7.
    fn paper_matrix() -> (KcMatrix, Vec<u32>) {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let f = sop(&[
            &[1, 6],
            &[2, 6],
            &[1, 7],
            &[3, 7],
            &[1, 4, 5],
            &[2, 4, 5],
            &[3, 4, 5],
        ]);
        let g = sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]);
        let h = sop(&[&[1, 4, 5], &[3, 4, 5]]);
        let kc = KernelConfig::default();
        m.add_node_kernels(10, &f, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(9, &g, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(8, &h, &kc, &reg, &mut rl, &mut cl);
        let weights = reg.weights_snapshot();
        (m, weights)
    }

    #[test]
    fn one_thread_pass_spawns_no_threads() {
        let (m, w) = paper_matrix();
        let mut pool = SearchPool::new();
        let cfg = SearchConfig {
            par_threads: 1,
            ..SearchConfig::default()
        };
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        for _ in 0..5 {
            let _ = crate::rectangle::best_rectangle_pooled(
                &m,
                &value_of,
                &cfg,
                None,
                &mut pool,
                CeilingUpdate::Off,
            );
        }
        assert_eq!(pool.spawned_threads(), 0, "t1 passes must never spawn");
        assert_eq!(pool.bg_threads(), 0);
        assert_eq!(pool.passes(), 5);
    }

    #[test]
    fn warm_pool_never_respawns() {
        let (m, w) = paper_matrix();
        let mut pool = SearchPool::new();
        let cfg = SearchConfig {
            par_threads: 4,
            ..SearchConfig::default()
        };
        pool.warm(4);
        let after_warm = pool.spawned_threads();
        assert!(after_warm <= 3);
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let mut rects = Vec::new();
        for _ in 0..8 {
            let (r, _) = crate::rectangle::best_rectangle_pooled(
                &m,
                &value_of,
                &cfg,
                None,
                &mut pool,
                CeilingUpdate::Off,
            );
            rects.push(r);
        }
        assert_eq!(
            pool.spawned_threads(),
            after_warm,
            "warm pool must not spawn per pass"
        );
        // Every warm pass returns the same canonical rectangle.
        for r in &rects[1..] {
            assert_eq!(r, &rects[0]);
        }
    }

    #[test]
    fn pooled_matches_spawn_executor() {
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        for threads in [1usize, 2, 4] {
            let cfg = SearchConfig {
                par_threads: threads,
                ..SearchConfig::default()
            };
            let (spawn_rect, spawn_stats) = best_rectangle_seeded(&m, &value_of, &cfg, None);
            let mut pool = SearchPool::new();
            let (pool_rect, pool_stats) = crate::rectangle::best_rectangle_pooled(
                &m,
                &value_of,
                &cfg,
                None,
                &mut pool,
                CeilingUpdate::Off,
            );
            assert_eq!(pool_rect, spawn_rect, "threads={threads}");
            assert_eq!(
                pool_stats.budget_exhausted, spawn_stats.budget_exhausted,
                "threads={threads}"
            );
            if threads == 1 {
                // Deterministic single-worker schedule: stats line up too.
                assert_eq!(pool_stats.visited, spawn_stats.visited);
            }
        }
    }

    #[test]
    fn ceilings_preserve_results_across_identical_passes() {
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let cfg = SearchConfig {
            par_threads: 1,
            ..SearchConfig::default()
        };
        let mut pool = SearchPool::new();
        let (cold, _) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Reset,
        );
        // Nothing dirty: every surviving ceiling may prune, and the
        // result must still be byte-identical.
        let (warm, warm_stats) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Dirty(&[]),
        );
        assert_eq!(cold, warm);
        // Seeding the warm pass with the cold winner makes the bound
        // tight from the start — ceilings then prune almost everything.
        let (seeded, seeded_stats) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            cold.as_ref(),
            &mut pool,
            CeilingUpdate::Dirty(&[]),
        );
        assert_eq!(cold, seeded);
        assert!(seeded_stats.visited <= warm_stats.visited);
    }

    #[test]
    fn exported_ceilings_warm_start_a_fresh_pool_identically() {
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let cfg = SearchConfig {
            par_threads: 1,
            ..SearchConfig::default()
        };
        let mut cold_pool = SearchPool::new();
        let (cold, cold_stats) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut cold_pool,
            CeilingUpdate::Reset,
        );
        let snap = cold_pool.export_ceilings().expect("completed pass records");
        assert!(snap.valid_columns() > 0);
        // A brand-new pool seeded with the snapshot over the identical
        // matrix: byte-identical winner, no more work than cold.
        let mut warm_pool = SearchPool::new();
        warm_pool.seed_ceilings(&snap);
        let (warm, warm_stats) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            cold.as_ref(),
            &mut warm_pool,
            CeilingUpdate::Dirty(&[]),
        );
        assert_eq!(cold, warm);
        assert!(warm_stats.visited <= cold_stats.visited);
        // Fresh pool with nothing stored exports nothing.
        assert!(SearchPool::new().export_ceilings().is_none());
    }

    #[test]
    fn off_update_invalidates_stored_ceilings() {
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let cfg = SearchConfig {
            par_threads: 1,
            ..SearchConfig::default()
        };
        let mut pool = SearchPool::new();
        let _ = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Reset,
        );
        assert!(pool.ceil.valid.iter().any(|&v| v));
        let _ = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Off,
        );
        assert!(pool.ceil.valid.iter().all(|&v| !v));
    }

    #[test]
    fn fingerprint_mismatch_resets_ceilings() {
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let mut pool = SearchPool::new();
        let cfg1 = SearchConfig {
            par_threads: 1,
            min_cols: 2,
            ..SearchConfig::default()
        };
        let _ = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg1,
            None,
            &mut pool,
            CeilingUpdate::Reset,
        );
        // min_cols changed: stored ceilings are meaningless; Dirty(&[])
        // must behave like Reset, and the result must match a fresh
        // search under the new config.
        let cfg2 = SearchConfig {
            par_threads: 1,
            min_cols: 1,
            ..SearchConfig::default()
        };
        let (warm, _) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg2,
            None,
            &mut pool,
            CeilingUpdate::Dirty(&[]),
        );
        let (cold, _) = best_rectangle_seeded(&m, &value_of, &cfg2, None);
        assert_eq!(warm, cold);
    }

    #[test]
    fn truncated_pass_invalidates_ceilings_and_falls_back() {
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let cfg = SearchConfig {
            par_threads: 1,
            budget: 1,
            ..SearchConfig::default()
        };
        let mut pool = SearchPool::new();
        let (rect, stats) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Reset,
        );
        assert!(stats.budget_exhausted);
        // Rule 3: the greedy fallback still yields a rectangle here.
        assert!(rect.is_some());
        assert!(pool.ceil.valid.iter().all(|&v| !v));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives_drop() {
        let mut pool = SearchPool::new();
        pool.warm(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_pass(2, &|idx, _ws| {
                if idx == 1 {
                    panic!("injected");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still drain and drop cleanly afterwards.
        drop(pool);
    }

    #[test]
    fn surplus_workers_skip_narrow_passes() {
        // 4-wide warm pool running 2-wide passes: the two surplus
        // workers must not corrupt the active count.
        let mut pool = SearchPool::new();
        pool.warm(4);
        for _ in 0..6 {
            let hits = Mutex::new(0usize);
            pool.run_pass(2, &|_idx, _ws| {
                *hits.lock() += 1;
            });
            assert_eq!(*hits.lock(), 2);
        }
    }

    #[test]
    fn empty_matrix_returns_seed() {
        let m = KcMatrix::new();
        let mut pool = SearchPool::new();
        let cfg = SearchConfig {
            par_threads: 2,
            ..SearchConfig::default()
        };
        let value_of = |_id: crate::registry::CubeId| 1u32;
        let (rect, stats) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Reset,
        );
        assert!(rect.is_none());
        assert_eq!(stats.visited, 0);
        assert_eq!(pool.spawned_threads(), 0);
    }

    #[test]
    fn kernel_of_best_matches_reference() {
        // Smoke: pooled winner's kernel extraction works end to end.
        let (m, w) = paper_matrix();
        let value_of = |id: crate::registry::CubeId| w[id as usize];
        let cfg = SearchConfig {
            par_threads: 2,
            ..SearchConfig::default()
        };
        let mut pool = SearchPool::new();
        let (rect, _) = crate::rectangle::best_rectangle_pooled(
            &m,
            &value_of,
            &cfg,
            None,
            &mut pool,
            CeilingUpdate::Reset,
        );
        let rect = rect.expect("paper matrix has a rectangle");
        let kernel = rect.kernel(&m);
        assert!(kernel.cubes().len() >= 2);
        assert!(!kernel.cubes().iter().any(Cube::is_empty));
    }
}
