//! Dense `u64`-word bitsets over row indices.
//!
//! The rectangle search spends most of its time intersecting row-sets —
//! "which rows support this column set?" — and summing per-row bounds
//! over the result. A sorted `Vec<RowIdx>` merge costs one branchy
//! compare per element; a dense bitset costs one `AND` + `popcount` per
//! 64 rows with no branches and no allocation (buffers are pooled per
//! recursion depth). At KC-matrix densities (hundreds of rows, column
//! supports of 2–50 rows) the word loop wins by a wide margin.
//!
//! All sets over one matrix share the same universe (`row count` bits),
//! so intersections are plain word-wise `AND`s without bounds juggling.

/// A set of row indices, stored one bit per row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowSet {
    words: Vec<u64>,
}

impl RowSet {
    /// The empty set with zero capacity. Useful as a pooled scratch
    /// buffer: the first [`RowSet::assign_and`] sizes it.
    pub fn new() -> Self {
        RowSet { words: Vec::new() }
    }

    /// The empty set sized for a universe of `nbits` rows.
    pub fn zeroed(nbits: usize) -> Self {
        RowSet {
            words: vec![0; nbits.div_ceil(64)],
        }
    }

    /// Builds a set over a universe of `nbits` rows from sorted (or
    /// unsorted — order is irrelevant) indices.
    pub fn from_indices(indices: impl IntoIterator<Item = usize>, nbits: usize) -> Self {
        let mut s = RowSet::zeroed(nbits);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Inserts row `i`. Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether row `i` is in the set (`false` when outside the universe).
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of rows in the set (popcount).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self = a ∩ b`, reusing `self`'s allocation. `a` and `b` must
    /// share a universe (same word count); `self` is resized to match.
    pub fn assign_and(&mut self, a: &RowSet, b: &RowSet) {
        debug_assert_eq!(a.words.len(), b.words.len(), "universe mismatch");
        self.words.clear();
        self.words
            .extend(a.words.iter().zip(&b.words).map(|(x, y)| x & y));
    }

    /// `self = src`, reusing `self`'s allocation (unlike the derived
    /// `Clone::clone_from`, which reallocates).
    pub fn copy_from(&mut self, src: &RowSet) {
        self.words.clear();
        self.words.extend_from_slice(&src.words);
    }

    /// Empties the set and resizes it for a universe of `nbits` rows,
    /// reusing the allocation.
    pub fn reset(&mut self, nbits: usize) {
        self.words.clear();
        self.words.resize(nbits.div_ceil(64), 0);
    }

    /// Intersects `b` into `self` in place.
    pub fn and_with(&mut self, b: &RowSet) {
        debug_assert_eq!(self.words.len(), b.words.len(), "universe mismatch");
        for (w, &o) in self.words.iter_mut().zip(&b.words) {
            *w &= o;
        }
    }

    /// The backing words, least-significant row first. The final word
    /// may cover rows past the universe; those bits are always zero.
    /// [`crate::tiles::TilePanels`] mirrors columns from this slice.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the member rows in ascending order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Appends the member rows (ascending) to `out` without clearing it.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        out.extend(self.iter());
    }
}

impl<'a> IntoIterator for &'a RowSet {
    type Item = usize;
    type IntoIter = SetBits<'a>;
    fn into_iter(self) -> SetBits<'a> {
        self.iter()
    }
}

/// Iterator over the set bits of a [`RowSet`], ascending.
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let s = RowSet::from_indices([0, 63, 64, 130], 131);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(130));
        assert!(!s.contains(1) && !s.contains(129));
        assert!(!s.contains(1000)); // out of universe: false, no panic
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 130]);
    }

    #[test]
    fn empty_set() {
        let s = RowSet::zeroed(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(RowSet::new().is_empty());
        assert_eq!(RowSet::new().iter().count(), 0);
    }

    #[test]
    fn intersection_matches_sorted_merge() {
        let a: Vec<usize> = vec![1, 3, 5, 9, 64, 65, 200];
        let b: Vec<usize> = vec![2, 3, 9, 10, 65, 199, 200];
        let sa = RowSet::from_indices(a.iter().copied(), 201);
        let sb = RowSet::from_indices(b.iter().copied(), 201);
        let mut out = RowSet::new();
        out.assign_and(&sa, &sb);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![3, 9, 65, 200]);
        assert_eq!(out.len(), 4);

        let mut inplace = sa.clone();
        inplace.and_with(&sb);
        assert_eq!(inplace, out);
    }

    #[test]
    fn assign_and_reuses_allocation() {
        let sa = RowSet::from_indices([0, 7], 128);
        let sb = RowSet::from_indices([7, 100], 128);
        let mut scratch = RowSet::new(); // zero-capacity pool entry
        scratch.assign_and(&sa, &sb);
        assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![7]);
        // Reuse with a different pair — stale bits must not survive.
        let sc = RowSet::from_indices([1], 128);
        scratch.assign_and(&sa, &sc);
        assert!(scratch.is_empty());
    }

    #[test]
    fn reset_clears_and_resizes() {
        let mut s = RowSet::from_indices([3, 90], 128);
        s.reset(64);
        assert!(s.is_empty());
        s.insert(63);
        assert!(s.contains(63));
        s.reset(256);
        assert!(s.is_empty());
        s.insert(255); // the new universe must be addressable
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn collect_into_appends() {
        let s = RowSet::from_indices([4, 70], 71);
        let mut out = vec![99];
        s.collect_into(&mut out);
        assert_eq!(out, vec![99, 4, 70]);
    }
}
