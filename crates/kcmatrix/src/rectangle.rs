//! Best-rectangle search over the KC matrix.
//!
//! A rectangle `(R, C)` selects rows and columns whose intersections are
//! all `1` entries; extracting it creates the node `X = Σ_{c∈C} cube_c`
//! and rewrites every row's node. Its **value** is the literal saving
//! (Brayton–Rudell):
//!
//! ```text
//! value(R, C) = Σ_{distinct cubes covered} v(cube)
//!             − Σ_{r∈R} (|cokernel_r| + 1)      (replacement cubes cok·X)
//!             − Σ_{c∈C} |cube_c|                 (the new node's body)
//! ```
//!
//! where `v(cube)` is the cube's current value — the weight for FREE
//! cubes, 0 for cubes covered by another processor or already divided
//! (paper §5.3). The search enumerates column sets ordered by **leftmost
//! column** (exactly the decomposition Figure 1 splits across
//! processors), keeps for each column set the optimal row subset (rows
//! with positive contribution), prunes with an admissible bound, and
//! degrades to a per-row greedy sweep when a visit budget is exhausted.
//!
//! Row supports are dense [`RowSet`] bitsets: intersecting a candidate's
//! support with a column is a handful of word `AND`s instead of a sorted
//! merge. With `par_threads >= 1` the leftmost-column loop runs on a
//! chunked work queue drained by scoped threads sharing an atomic
//! pruning bound; see [`crate::par_search`] for the determinism rules.
//! The legacy `Vec<RowIdx>` implementation survives in
//! [`crate::reference`] as a differential-testing oracle.

use crate::matrix::{ColIdx, KcMatrix, RowIdx};
use crate::pool::{CeilingUpdate, SearchPool};
use crate::registry::CubeId;
use crate::rowset::RowSet;
use crate::tiles::{TilePanels, TiledSupport};
use pf_sop::fx::FxHashSet;
use pf_sop::Sop;

/// A candidate extraction: chosen rows, chosen columns, literal saving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rectangle {
    /// Row indices into the matrix (alive rows only).
    pub rows: Vec<RowIdx>,
    /// Column indices, ascending.
    pub cols: Vec<ColIdx>,
    /// Exact literal saving of extracting this rectangle now.
    pub value: i64,
}

impl Rectangle {
    /// The kernel this rectangle extracts: the sum of its column cubes.
    pub fn kernel(&self, m: &KcMatrix) -> Sop {
        Sop::from_cubes(self.cols.iter().map(|&c| m.cols()[c].cube.clone()))
    }
}

/// `a` beats `b` under the canonical (value, cols, rows) order: higher
/// value first, then lexicographically smaller column set, then
/// lexicographically smaller row set. Total over distinct rectangles, so
/// the parallel merge is independent of worker arrival order.
pub(crate) fn canonical_better(a: &Rectangle, b: &Rectangle) -> bool {
    match a.value.cmp(&b.value) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => (&a.cols, &a.rows) < (&b.cols, &b.rows),
    }
}

/// Bounded canonical-best list: at most `k` distinct rectangles, sorted
/// best-first under [`canonical_better`]. The pruning threshold is the
/// K-th (worst kept) value once full — any subtree whose bound is
/// strictly below it provably holds no top-K member. Equal rectangles
/// are deduplicated at insert (the greedy sweep and the exact search can
/// find the same rectangle).
#[derive(Clone, Debug)]
pub(crate) struct TopK {
    k: usize,
    /// Sorted best-first; `items.len() <= k`; all distinct.
    items: Vec<Rectangle>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k: k.max(1),
            items: Vec::new(),
        }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.items.len() >= self.k
    }

    /// The pruning threshold: the K-th best value when full, else 0 (any
    /// positive rectangle is still wanted).
    pub(crate) fn threshold(&self) -> i64 {
        if self.is_full() {
            self.items.last().expect("full list is non-empty").value
        } else {
            0
        }
    }

    /// Where `rect` would land, or `None` when it is rejected (a
    /// duplicate, or worse than a full list's tail). `k` is small (a
    /// batch size), so the scan is linear. The cheap value comparison
    /// runs first — the common reject (a rectangle worse than the
    /// current tail) costs two integer compares and never touches the
    /// row/column vectors.
    fn position(&self, rect: &Rectangle) -> Option<usize> {
        let mut pos = self.items.len();
        for (i, it) in self.items.iter().enumerate() {
            if canonical_better(rect, it) {
                pos = i;
                break;
            }
            // Not canonically better ⇒ an equal rectangle can only be
            // this very item (later items are strictly worse).
            if it.value == rect.value && *it == *rect {
                return None;
            }
        }
        if pos >= self.k {
            None
        } else {
            Some(pos)
        }
    }

    /// Offers a rectangle; returns whether the list changed. Duplicates
    /// and rectangles worse than a full list's tail are rejected.
    pub(crate) fn insert(&mut self, rect: Rectangle) -> bool {
        match self.position(&rect) {
            Some(pos) => {
                self.items.insert(pos, rect);
                self.items.truncate(self.k);
                true
            }
            None => false,
        }
    }

    /// [`TopK::insert`] by reference: the rectangle is cloned only when
    /// it is actually kept. The greedy phase offers every row's
    /// rectangle to two lists — cloning up front allocated two vectors
    /// per *rejected* offer, which is exactly the pooled 1-thread
    /// overhead the bench gate guards.
    pub(crate) fn insert_ref(&mut self, rect: &Rectangle) -> bool {
        match self.position(rect) {
            Some(pos) => {
                self.items.insert(pos, rect.clone());
                self.items.truncate(self.k);
                true
            }
            None => false,
        }
    }

    /// Canonical merge: offers every item of `other`.
    pub(crate) fn merge(&mut self, other: TopK) {
        for it in other.items {
            self.insert(it);
        }
    }

    /// The kept rectangles, best-first.
    pub(crate) fn into_vec(self) -> Vec<Rectangle> {
        self.items
    }
}

/// What one search run collects. Two implementations: [`BestOne`]
/// replicates the classic engine's first-maximum-in-enumeration-order
/// rule exactly (monomorphized, so `topk = 1` stays byte-identical), and
/// [`TopK`] keeps the canonical top-K with the bound keyed to the K-th
/// value.
pub(crate) trait Collect {
    /// Whether a candidate whose duplicate-blind upper bound is `approx`
    /// deserves the exact (allocating) evaluation pass.
    fn admits(&self, approx: i64) -> bool;
    /// Offers an exactly-evaluated rectangle; whether it was kept.
    fn offer(&mut self, rect: Rectangle) -> bool;
    /// Whether a subtree with admissible bound `ub` is provably dead.
    fn prunes(&self, ub: i64) -> bool;
}

/// Classic best-only collector: keeps the *first* maximum-value
/// rectangle in enumeration order (strictly-greater acceptance).
pub(crate) struct BestOne(pub(crate) Option<Rectangle>);

impl BestOne {
    fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |b| b.value)
    }
}

impl Collect for BestOne {
    fn admits(&self, approx: i64) -> bool {
        approx > self.value()
    }
    fn offer(&mut self, rect: Rectangle) -> bool {
        if rect.value > self.value() {
            self.0 = Some(rect);
            true
        } else {
            false
        }
    }
    fn prunes(&self, ub: i64) -> bool {
        ub <= self.value()
    }
}

impl Collect for TopK {
    fn admits(&self, approx: i64) -> bool {
        // `>=`: a tie on value can still be canonically better (smaller
        // cols/rows), and an under-full list takes anything positive.
        approx > 0 && approx >= self.threshold()
    }
    fn offer(&mut self, rect: Rectangle) -> bool {
        self.insert(rect)
    }
    fn prunes(&self, ub: i64) -> bool {
        // Strict below the K-th value: a subtree that could tie it might
        // hold a canonically smaller member.
        ub <= 0 || (self.is_full() && ub < self.threshold())
    }
}

/// Search options.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum number of column-set expansions before falling back to
    /// the greedy sweep result.
    pub budget: u64,
    /// Restrict the *leftmost* column of enumerated rectangles to the
    /// stripe `proc` of `nprocs` (round-robin by column index) — the §3
    /// divide-and-conquer decomposition. `None` searches everything.
    pub stripe: Option<(u32, u32)>,
    /// Minimum number of columns (2 for kernel extraction: a single
    /// column is a cube, not a kernel).
    pub min_cols: usize,
    /// Run the seeding greedy sweep before branch and bound. Disable
    /// only in tests that target the exact search.
    pub greedy_seed: bool,
    /// Intra-matrix search threads. `0` (the default) runs the classic
    /// sequential engine, which keeps the *first* maximum-value
    /// rectangle in enumeration order. `>= 1` runs the parallel engine:
    /// leftmost-column tasks on a chunked work queue, a shared atomic
    /// pruning bound, and a canonical (value, cols, rows) tie-break so
    /// the result is identical for any thread count (including 1).
    pub par_threads: usize,
    /// How many rectangles one pass collects. `1` (the default) keeps
    /// the classic best-only semantics byte-for-byte. `> 1` collects the
    /// canonical top-K (under the (value, cols, rows) order) with the
    /// pruning bound keyed to the K-th best value — identical for any
    /// thread count, including the sequential engine. Top-K batches feed
    /// [`crate::conflict`] selection in the extraction drivers.
    pub topk: usize,
    /// Words per tile of the cache-blocked search kernel
    /// ([`crate::tiles`]). `0` (the default) keeps the scalar
    /// [`RowSet`] intersection path; `>= 1` mirrors the matrix into
    /// column-major panels of `tile_width`-word tiles and runs the hot
    /// intersection/bound loop over them. Results are byte-identical
    /// for every width — only the memory access pattern changes — so
    /// this knob is result-invariant (it never joins cache keys).
    pub tile_width: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            budget: 2_000_000,
            stripe: None,
            min_cols: 2,
            greedy_seed: true,
            par_threads: 0,
            topk: 1,
            tile_width: 0,
        }
    }
}

/// Statistics from one search call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Column sets fully expanded. In parallel mode this is the sum over
    /// workers and depends on bound-arrival timing (the *result* does
    /// not).
    pub visited: u64,
    /// Whether the budget actually truncated exploration — i.e. an
    /// expansion was *denied*. A search whose final expansion lands
    /// exactly on the budget completed and is not exhausted. On
    /// truncation the parallel engine discards partial worker bests and
    /// returns the deterministic greedy/seed result.
    pub budget_exhausted: bool,
    /// Subtrees cut by the admissible pruning bound before expansion.
    /// Like `visited`, the parallel-mode count depends on bound-arrival
    /// timing.
    pub pruned: u64,
    /// Times the best-so-far value (sequential) or the shared atomic
    /// bound (parallel, including greedy publishes) was actually raised.
    pub bound_updates: u64,
}

/// The cost functions defining a rectangle's value. The default (area)
/// model values a covered cube at its literal count, a row replacement
/// `cok·X` at `|cok| + 1` and a kernel cube at its literal count; the
/// paper's conclusion points out that timing- and power-driven synthesis
/// only need these three functions swapped ("our methods can be directly
/// applied … provided the algorithms are formulated in terms of a
/// rectangular cover problem"). The functions are `Sync` so the parallel
/// engine can share them across worker threads.
pub struct CostModel<'a> {
    /// Current value of a covered cube (0 when covered elsewhere or
    /// divided — the paper's `V` attribute).
    pub cube_value: &'a (dyn Fn(CubeId) -> u32 + Sync),
    /// Cost of the replacement cube `cok·X` added per chosen row.
    pub row_cost: &'a (dyn Fn(&pf_sop::Cube) -> i64 + Sync),
    /// Cost of one kernel cube in the extracted node's body.
    pub col_cost: &'a (dyn Fn(&pf_sop::Cube) -> i64 + Sync),
}

fn area_row_cost(cok: &pf_sop::Cube) -> i64 {
    cok.len() as i64 + 1
}

fn area_col_cost(cube: &pf_sop::Cube) -> i64 {
    cube.len() as i64
}

impl<'a> CostModel<'a> {
    /// The default area model over `value_of`.
    pub fn area(value_of: &'a (dyn Fn(CubeId) -> u32 + Sync)) -> Self {
        CostModel {
            cube_value: value_of,
            row_cost: &area_row_cost,
            col_cost: &area_col_cost,
        }
    }
}

/// Finds the maximum-valued rectangle with positive value, or `None`.
///
/// `value_of` maps a [`CubeId`] to its current value (weight, or 0 when
/// covered elsewhere / divided) — the paper's `V` attribute read with the
/// asking processor's identity baked in. Uses the default area cost
/// model; see [`best_rectangle_with`] for custom objectives.
pub fn best_rectangle(
    m: &KcMatrix,
    value_of: &(dyn Fn(CubeId) -> u32 + Sync),
    cfg: &SearchConfig,
) -> (Option<Rectangle>, SearchStats) {
    best_rectangle_seeded(m, value_of, cfg, None)
}

/// [`best_rectangle`], seeded with a rectangle from a *previous*
/// extraction pass. The seed's columns are re-validated against the
/// current matrix (its support and value are recomputed from scratch) so
/// branch-and-bound pruning starts tight; a stale or worthless seed is
/// simply ignored.
pub fn best_rectangle_seeded(
    m: &KcMatrix,
    value_of: &(dyn Fn(CubeId) -> u32 + Sync),
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
) -> (Option<Rectangle>, SearchStats) {
    let model = CostModel::area(value_of);
    best_rectangle_with_seed(m, &model, cfg, seed)
}

/// [`best_rectangle`] under an explicit [`CostModel`].
pub fn best_rectangle_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
) -> (Option<Rectangle>, SearchStats) {
    best_rectangle_with_seed(m, model, cfg, None)
}

/// [`best_rectangle_with`] with an optional previous-pass seed; see
/// [`best_rectangle_seeded`].
pub fn best_rectangle_with_seed(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
) -> (Option<Rectangle>, SearchStats) {
    let (rects, stats) = best_rectangles_with_seed(m, model, cfg, seed);
    (rects.into_iter().next(), stats)
}

/// The canonically best `k` of `candidates` (deduplicated, best-first
/// under the (value, cols, rows) order). The replicated driver uses this
/// to merge per-stripe top-K lists into the global top-K — every global
/// top-K member is in its own stripe's top-K, so the merged result is
/// independent of how many stripes contributed.
pub fn canonical_top_k(candidates: &[Rectangle], k: usize) -> Vec<Rectangle> {
    let mut acc = TopK::new(k);
    for r in candidates {
        acc.insert(r.clone());
    }
    acc.into_vec()
}

/// Plural [`best_rectangle_seeded`]: collects up to `cfg.topk`
/// rectangles, best-first. See [`best_rectangles_with_seed`].
pub fn best_rectangles_seeded(
    m: &KcMatrix,
    value_of: &(dyn Fn(CubeId) -> u32 + Sync),
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
) -> (Vec<Rectangle>, SearchStats) {
    let model = CostModel::area(value_of);
    best_rectangles_with_seed(m, &model, cfg, seed)
}

/// Plural [`best_rectangle_with_seed`]: collects up to `cfg.topk`
/// rectangles per pass, returned best-first under the canonical
/// (value, cols, rows) order. With `topk = 1` the sequential engine
/// keeps its classic first-maximum semantics (byte-identical to
/// [`best_rectangle_with_seed`]); with `topk > 1` both the sequential
/// and the parallel engine return exactly the canonical top-K of all
/// positive rectangles, independent of thread count.
pub fn best_rectangles_with_seed(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
) -> (Vec<Rectangle>, SearchStats) {
    let row_full_value = row_full_values(m, model);
    let col_sets = m.col_row_sets();
    // Per-call panel mirror for the tiled kernel; the resident pool
    // keeps its panel across passes instead (see [`crate::pool`]).
    let panel =
        (cfg.tile_width > 0).then(|| TilePanels::build(m.rows().len(), &col_sets, cfg.tile_width));

    let seed_rect = seed.and_then(|s| revalidate_seed(m, model, cfg, s));

    if cfg.par_threads >= 1 {
        // The parallel engine runs the greedy sweep itself, striped
        // across its workers (it dominates the sequential prologue once
        // exploration is well-pruned).
        return crate::par_search::search(
            m,
            model,
            cfg,
            &row_full_value,
            &col_sets,
            seed_rect,
            panel.as_ref(),
        );
    }

    if cfg.topk <= 1 {
        let mut acc = BestOne(seed_rect);
        let stats = sequential_search(
            m,
            model,
            cfg,
            &row_full_value,
            &col_sets,
            panel.as_ref(),
            &mut acc,
        );
        (acc.0.into_iter().collect(), stats)
    } else {
        let mut acc = TopK::new(cfg.topk);
        if let Some(s) = seed_rect {
            acc.insert(s);
        }
        let stats = sequential_search(
            m,
            model,
            cfg,
            &row_full_value,
            &col_sets,
            panel.as_ref(),
            &mut acc,
        );
        (acc.into_vec(), stats)
    }
}

/// Classic sequential branch and bound over column sets ordered by
/// leftmost column, generic over the collector (monomorphized, so the
/// best-only path compiles to exactly the pre-top-K engine). With a
/// panel the per-task recursion runs [`Search::explore_tiled`] instead
/// of [`Search::explore`] — same enumeration order, same prune/admit
/// decisions, byte-identical results.
fn sequential_search<C: Collect>(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[RowSet],
    panel: Option<&TilePanels>,
    acc: &mut C,
) -> SearchStats {
    if cfg.greedy_seed {
        greedy_sweep(m, model, cfg, row_full_value, col_sets, panel, acc);
    }

    let mut state = Search {
        m,
        model,
        cfg,
        row_full_value,
        col_sets,
        panel,
        visited: 0,
        truncated: false,
        pruned: 0,
        bound_updates: 0,
        acc,
        cols: Vec::new(),
        scratch: Vec::new(),
        tscratch: Vec::new(),
        cand: Vec::new(),
        rows_buf: Vec::new(),
        seen: FxHashSet::default(),
        root: RowSet::new(),
        troot: TiledSupport::default(),
    };
    for (c0, cset) in col_sets.iter().enumerate() {
        if !stripe_admits(cfg, c0) || cset.is_empty() {
            continue;
        }
        if state.truncated {
            break;
        }
        state.cols.clear();
        state.cols.push(c0);
        if let Some(p) = state.panel {
            let mut troot = std::mem::take(&mut state.troot);
            troot.load_col(p, c0);
            state.troot = state.explore_tiled(0, troot);
        } else {
            let mut root = std::mem::take(&mut state.root);
            root.copy_from(cset);
            state.root = state.explore(0, root);
        }
    }
    SearchStats {
        visited: state.visited,
        budget_exhausted: state.truncated,
        pruned: state.pruned,
        bound_updates: state.bound_updates,
    }
}

/// [`best_rectangle_seeded`] executed on a persistent [`SearchPool`]
/// instead of per-call spawned threads: zero thread spawns on a warm
/// pool, per-worker scratch reused across passes, and optional
/// cross-pass per-column ceilings driven by `update` (see
/// [`crate::pool`]). Results are byte-identical to the spawn executor
/// for every thread count and every `update` mode.
pub fn best_rectangle_pooled(
    m: &KcMatrix,
    value_of: &(dyn Fn(CubeId) -> u32 + Sync),
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
    pool: &mut SearchPool,
    update: CeilingUpdate<'_>,
) -> (Option<Rectangle>, SearchStats) {
    let model = CostModel::area(value_of);
    best_rectangle_pooled_with(m, &model, cfg, seed, pool, update)
}

/// [`best_rectangle_pooled`] under an explicit [`CostModel`].
pub fn best_rectangle_pooled_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
    pool: &mut SearchPool,
    update: CeilingUpdate<'_>,
) -> (Option<Rectangle>, SearchStats) {
    let (rects, stats) = crate::pool::pool_search_seeded(pool, m, model, cfg, seed, update);
    (rects.into_iter().next(), stats)
}

/// Plural [`best_rectangle_pooled`]: up to `cfg.topk` rectangles,
/// best-first, on the persistent pool. See [`best_rectangles_with_seed`]
/// for the top-K semantics.
pub fn best_rectangles_pooled(
    m: &KcMatrix,
    value_of: &(dyn Fn(CubeId) -> u32 + Sync),
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
    pool: &mut SearchPool,
    update: CeilingUpdate<'_>,
) -> (Vec<Rectangle>, SearchStats) {
    let model = CostModel::area(value_of);
    best_rectangles_pooled_with(m, &model, cfg, seed, pool, update)
}

/// [`best_rectangles_pooled`] under an explicit [`CostModel`].
pub fn best_rectangles_pooled_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: Option<&Rectangle>,
    pool: &mut SearchPool,
    update: CeilingUpdate<'_>,
) -> (Vec<Rectangle>, SearchStats) {
    crate::pool::pool_search_seeded(pool, m, model, cfg, seed, update)
}

/// Whether the stripe filter admits `c` as a leftmost column.
pub(crate) fn stripe_admits(cfg: &SearchConfig, c: ColIdx) -> bool {
    match cfg.stripe {
        Some((proc, nprocs)) => (c as u32) % nprocs == proc,
        None => true,
    }
}

/// Per alive row: Σ of entry values minus the row cost — the row's
/// contribution ceiling, used by the admissible pruning bound.
pub(crate) fn row_full_values(m: &KcMatrix, model: &CostModel<'_>) -> Vec<i64> {
    let mut out = vec![0i64; m.rows().len()];
    for (i, r) in m.rows().iter().enumerate() {
        if !r.alive {
            continue;
        }
        let sum: i64 = r
            .entries
            .iter()
            .map(|&(_, id)| (model.cube_value)(id) as i64)
            .sum();
        out[i] = sum - (model.row_cost)(&r.cokernel);
    }
    out
}

struct Search<'a, C: Collect> {
    m: &'a KcMatrix,
    model: &'a CostModel<'a>,
    cfg: &'a SearchConfig,
    row_full_value: &'a [i64],
    col_sets: &'a [RowSet],
    /// Column-major tile mirror; `Some` selects the tiled kernel.
    panel: Option<&'a TilePanels>,
    /// Column sets fully expanded so far.
    visited: u64,
    /// Set when an expansion was denied by the budget.
    truncated: bool,
    /// Subtrees cut by the admissible bound.
    pruned: u64,
    /// Times the collector accepted a rectangle.
    bound_updates: u64,
    acc: &'a mut C,
    /// Current column set (shared across the recursion as a stack).
    cols: Vec<ColIdx>,
    /// Per-depth row-support buffers, reused between branches.
    scratch: Vec<RowSet>,
    /// Per-depth tiled-support buffers (the tiled kernel's twin of
    /// `scratch`).
    tscratch: Vec<TiledSupport>,
    /// Per-depth candidate-column bitsets (universe = column count).
    cand: Vec<RowSet>,
    /// Reusable row-index buffer for exact evaluation.
    rows_buf: Vec<RowIdx>,
    /// Reusable dedup set for exact evaluation.
    seen: FxHashSet<CubeId>,
    /// Reusable root support buffer for the leftmost-column loop.
    root: RowSet,
    /// Tiled twin of `root`.
    troot: TiledSupport,
}

impl<C: Collect> Search<'_, C> {
    /// Expands the current column set (`self.cols`) whose supporting
    /// rows are `rows`. `depth` indexes the scratch pool. Returns the
    /// `rows` buffer so the caller can pool it.
    fn explore(&mut self, depth: usize, rows: RowSet) -> RowSet {
        if self.visited >= self.cfg.budget {
            self.truncated = true;
            return rows;
        }
        self.visited += 1;

        if self.cols.len() >= self.cfg.min_cols {
            // Cheap gate first: the duplicate-blind value is an upper
            // bound on the exact value, so the exact (allocating) pass
            // only runs on candidates the collector could still keep.
            let approx = approx_value(self.m, self.model, &self.cols, &rows);
            if self.acc.admits(approx) {
                self.rows_buf.clear();
                rows.collect_into(&mut self.rows_buf);
                self.seen.clear();
                if let Some(rect) = evaluate_with(
                    self.m,
                    self.model,
                    &self.cols,
                    &self.rows_buf,
                    &mut self.seen,
                ) {
                    if self.acc.offer(rect) {
                        self.bound_updates += 1;
                    }
                }
            }
        }

        // Extend with columns to the right of the current rightmost. A
        // column intersects the support only if some support row has an
        // entry in it, so enumerate the rows' entries (marked into a
        // column bitset, which dedups and sorts for free) instead of
        // intersecting against every column of the matrix.
        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.scratch.len() <= depth {
            self.scratch.resize_with(depth + 1, RowSet::new);
            self.cand.resize_with(depth + 1, RowSet::new);
        }
        let mut cand = std::mem::take(&mut self.cand[depth]);
        cand.reset(self.m.cols().len());
        for r in &rows {
            for &(c, _) in &self.m.rows()[r].entries {
                if c >= from {
                    cand.insert(c);
                }
            }
        }
        for c in &cand {
            // rows ∩ rows(c), into the per-depth scratch buffer.
            let mut shared = std::mem::take(&mut self.scratch[depth]);
            shared.assign_and(&rows, &self.col_sets[c]);
            debug_assert!(!shared.is_empty(), "candidate columns share a row");
            // Admissible bound: every surviving row can contribute at
            // most its full-row value; column costs only grow.
            let ub: i64 = shared.iter().map(|r| self.row_full_value[r].max(0)).sum();
            if self.acc.prunes(ub) {
                self.pruned += 1;
                self.scratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore(depth + 1, shared);
            self.scratch[depth] = buf;
            self.cols.pop();
            if self.truncated {
                // Terminal unwind — skip restoring the candidate pool.
                return rows;
            }
        }
        self.cand[depth] = cand;
        rows
    }

    /// [`Search::explore`] over the tiled kernel: the support is a
    /// [`TiledSupport`] and the per-candidate intersection+bound is the
    /// fused [`TiledSupport::and_ub_from`] pass over the parent's live
    /// tiles. Enumeration order, budget accounting and every
    /// prune/admit decision match the scalar body exactly.
    fn explore_tiled(&mut self, depth: usize, rows: TiledSupport) -> TiledSupport {
        if self.visited >= self.cfg.budget {
            self.truncated = true;
            return rows;
        }
        self.visited += 1;

        if self.cols.len() >= self.cfg.min_cols {
            let approx = approx_value_rows(self.m, self.model, &self.cols, rows.iter());
            if self.acc.admits(approx) {
                self.rows_buf.clear();
                rows.collect_into(&mut self.rows_buf);
                self.seen.clear();
                if let Some(rect) = evaluate_with(
                    self.m,
                    self.model,
                    &self.cols,
                    &self.rows_buf,
                    &mut self.seen,
                ) {
                    if self.acc.offer(rect) {
                        self.bound_updates += 1;
                    }
                }
            }
        }

        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.tscratch.len() <= depth {
            self.tscratch.resize_with(depth + 1, TiledSupport::default);
        }
        if self.cand.len() <= depth {
            self.cand.resize_with(depth + 1, RowSet::new);
        }
        let mut cand = std::mem::take(&mut self.cand[depth]);
        cand.reset(self.m.cols().len());
        for r in &rows {
            for &(c, _) in &self.m.rows()[r].entries {
                if c >= from {
                    cand.insert(c);
                }
            }
        }
        let panel = self.panel.expect("tiled explore requires a panel");
        for c in &cand {
            let mut shared = std::mem::take(&mut self.tscratch[depth]);
            let ub = shared.and_ub_from(&rows, panel, c, self.row_full_value);
            if self.acc.prunes(ub) {
                self.pruned += 1;
                self.tscratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore_tiled(depth + 1, shared);
            self.tscratch[depth] = buf;
            self.cols.pop();
            if self.truncated {
                // Terminal unwind — skip restoring the candidate pool.
                return rows;
            }
        }
        self.cand[depth] = cand;
        rows
    }
}

/// Duplicate-blind value of `(cols, rows)`: per-row contributions
/// clamped at zero, minus column costs. An upper bound on the exact
/// value (cube dedup only lowers it), cheap enough to gate the exact
/// pass.
pub(crate) fn approx_value(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cols: &[ColIdx],
    rows: &RowSet,
) -> i64 {
    approx_value_rows(m, model, cols, rows.iter())
}

/// [`approx_value`] over any ascending row iterator — shared by the
/// scalar ([`RowSet`]) and tiled ([`TiledSupport`]) supports. The sum
/// is order-independent, so both paths produce the same value bit for
/// bit.
pub(crate) fn approx_value_rows(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cols: &[ColIdx],
    rows: impl IntoIterator<Item = RowIdx>,
) -> i64 {
    let col_cost: i64 = cols
        .iter()
        .map(|&c| (model.col_cost)(&m.cols()[c].cube))
        .sum();
    let mut approx: i64 = -col_cost;
    for r in rows {
        let row = &m.rows()[r];
        let mut contrib: i64 = -(model.row_cost)(&row.cokernel);
        for &c in cols {
            let id = row.entry(c).expect("row supports all cols");
            contrib += (model.cube_value)(id) as i64;
        }
        if contrib > 0 {
            approx += contrib;
        }
    }
    approx
}

/// Exact evaluation of the optimal rectangle for a fixed column set:
/// keeps the rows with positive contribution and counts each covered
/// cube once. Returns `None` when no row subset yields positive value.
/// `seen` is a caller-provided (cleared) dedup buffer.
pub(crate) fn evaluate_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cols: &[ColIdx],
    rows: &[RowIdx],
    seen: &mut FxHashSet<CubeId>,
) -> Option<Rectangle> {
    // First pass: per-row contribution ignoring cross-row duplicates
    // (an upper bound per row); rows kept if positive.
    let col_cost: i64 = cols
        .iter()
        .map(|&c| (model.col_cost)(&m.cols()[c].cube))
        .sum();
    let mut kept: Vec<RowIdx> = Vec::new();
    for &r in rows {
        let row = &m.rows()[r];
        let mut contrib: i64 = -(model.row_cost)(&row.cokernel);
        for &c in cols {
            let id = row.entry(c).expect("row supports all cols");
            contrib += (model.cube_value)(id) as i64;
        }
        if contrib > 0 {
            kept.push(r);
        }
    }
    if kept.is_empty() {
        return None;
    }
    // Second pass: exact value with cross-row cube deduplication.
    let mut total: i64 = -col_cost;
    for &r in &kept {
        let row = &m.rows()[r];
        total -= (model.row_cost)(&row.cokernel);
        for &c in cols {
            let id = row.entry(c).expect("row supports all cols");
            if seen.insert(id) {
                total += (model.cube_value)(id) as i64;
            }
        }
    }
    if total <= 0 {
        return None;
    }
    Some(Rectangle {
        rows: kept,
        cols: cols.to_vec(),
        value: total,
    })
}

/// Re-validates a rectangle against the *current* matrix: recomputes the
/// maximal support of its column set and the exact value. Returns `None`
/// when the columns vanished, the support is empty, or the value is no
/// longer positive. Besides seeding the next pass's pruning bound, this
/// is how the batched drivers drain conflict-rejected candidates after a
/// batch apply without paying another search pass — the returned
/// rectangle is exact for the present matrix, so it can be re-selected
/// and applied directly.
pub fn revalidate_rectangle(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    rect: &Rectangle,
) -> Option<Rectangle> {
    revalidate_seed(m, model, cfg, rect)
}

/// Re-validates a previous-pass rectangle against the *current* matrix:
/// recomputes the support of its column set and the exact value. Returns
/// `None` when the columns vanished, the support is empty, or the value
/// is no longer positive.
pub(crate) fn revalidate_seed(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    seed: &Rectangle,
) -> Option<Rectangle> {
    if seed.cols.len() < cfg.min_cols || seed.cols.iter().any(|&c| c >= m.cols().len()) {
        return None;
    }
    let mut support = m.cols()[seed.cols[0]].rows.clone();
    for &c in &seed.cols[1..] {
        support = KcMatrix::intersect_rows(&support, &m.cols()[c].rows);
        if support.is_empty() {
            return None;
        }
    }
    if support.is_empty() {
        return None;
    }
    let mut seen = FxHashSet::default();
    evaluate_with(m, model, &seed.cols, &support, &mut seen)
}

/// Reusable buffers for [`greedy_row`]; one per sweeping thread.
#[derive(Default)]
pub(crate) struct GreedyBufs {
    seen: FxHashSet<CubeId>,
    support: RowSet,
    rows_buf: Vec<RowIdx>,
    cols: Vec<ColIdx>,
    /// Ping-pong tiled supports for [`greedy_row_tiled`].
    ta: TiledSupport,
    tb: TiledSupport,
}

/// One step of the greedy sweep: takes row `r`'s full column set as the
/// candidate kernel and evaluates the optimal rectangle for it. Returns
/// `None` for dead, too-narrow, stripe-rejected, or worthless rows.
pub(crate) fn greedy_row(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    col_sets: &[RowSet],
    r: RowIdx,
    bufs: &mut GreedyBufs,
) -> Option<Rectangle> {
    let row = &m.rows()[r];
    if !row.alive || row.entries.len() < cfg.min_cols {
        return None;
    }
    bufs.cols.clear();
    bufs.cols.extend(row.entries.iter().map(|&(c, _)| c));
    // Stripe filter applies to the leftmost column for consistency with
    // the exact search.
    if !stripe_admits(cfg, bufs.cols[0]) {
        return None;
    }
    // Supporting rows: intersection of the column row-sets.
    bufs.support.copy_from(&col_sets[bufs.cols[0]]);
    for &c in &bufs.cols[1..] {
        bufs.support.and_with(&col_sets[c]);
        if bufs.support.is_empty() {
            return None;
        }
    }
    bufs.rows_buf.clear();
    bufs.support.collect_into(&mut bufs.rows_buf);
    bufs.seen.clear();
    evaluate_with(m, model, &bufs.cols, &bufs.rows_buf, &mut bufs.seen)
}

/// [`greedy_row`] over the tiled kernel. The support intersection runs
/// the fused [`TiledSupport::and_ub_from`] pass, whose by-product — the
/// admissible bound `Σ max(row_full_value, 0)` over the survivors —
/// gates the exact evaluation against the collector: a row whose bound
/// (minus column costs) fails [`Collect::admits`] cannot change the
/// collector's state (both collectors' `admits` are conservative on
/// ties), so its collect + hash-dedup evaluation is skipped outright.
/// The greedy sweep dominates search wall time on well-pruned matrices,
/// and most rows die at this gate once the first strong rows set the
/// bar — this is where the tiled kernel's speedup lives. Results are
/// byte-identical to the scalar sweep by the admissibility argument;
/// only the work done changes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_row_tiled<C: Collect>(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    panel: &TilePanels,
    row_full_value: &[i64],
    r: RowIdx,
    bufs: &mut GreedyBufs,
    acc: &C,
) -> Option<Rectangle> {
    let row = &m.rows()[r];
    if !row.alive || row.entries.len() < cfg.min_cols {
        return None;
    }
    bufs.cols.clear();
    bufs.cols.extend(row.entries.iter().map(|&(c, _)| c));
    if !stripe_admits(cfg, bufs.cols[0]) {
        return None;
    }
    bufs.ta.load_col(panel, bufs.cols[0]);
    // The root bound walk only pays off when there is no intersection to
    // fuse it into (single-column rows, `min_cols == 1`).
    let mut ub = if bufs.cols.len() == 1 {
        bufs.ta.bound(row_full_value)
    } else {
        0
    };
    for &c in &bufs.cols[1..] {
        ub = bufs.tb.and_ub_from(&bufs.ta, panel, c, row_full_value);
        std::mem::swap(&mut bufs.ta, &mut bufs.tb);
        if bufs.ta.is_empty() {
            return None;
        }
    }
    let col_cost: i64 = bufs
        .cols
        .iter()
        .map(|&c| (model.col_cost)(&m.cols()[c].cube))
        .sum();
    if !acc.admits(ub - col_cost) {
        return None;
    }
    bufs.rows_buf.clear();
    bufs.ta.collect_into(&mut bufs.rows_buf);
    bufs.seen.clear();
    evaluate_with(m, model, &bufs.cols, &bufs.rows_buf, &mut bufs.seen)
}

/// Greedy seed: [`greedy_row`] over every row, offered to the collector
/// (first-strictly-better for [`BestOne`], canonical insert for
/// [`TopK`]). O(rows × cols); seeds the branch-and-bound with a strong
/// lower bound and is the fallback answer when the budget dies.
fn greedy_sweep<C: Collect>(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[RowSet],
    panel: Option<&TilePanels>,
    acc: &mut C,
) {
    let mut bufs = GreedyBufs::default();
    for r in 0..m.rows().len() {
        let rect = match panel {
            Some(p) => greedy_row_tiled(m, model, cfg, p, row_full_value, r, &mut bufs, &*acc),
            None => greedy_row(m, model, cfg, col_sets, r, &mut bufs),
        };
        if let Some(rect) = rect {
            acc.offer(rect);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LabelGen;
    use crate::registry::CubeRegistry;
    use pf_sop::kernel::KernelConfig;
    use pf_sop::{Cube, Lit};

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    /// Builds the full KC matrix of the paper's network N (Eq. 1):
    /// F (id 10), G (id 9), H (id 8), vars a=1 … g=7.
    fn paper_matrix() -> (KcMatrix, CubeRegistry, Vec<u32>) {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let f = sop(&[
            &[1, 6],
            &[2, 6],
            &[1, 7],
            &[3, 7],
            &[1, 4, 5],
            &[2, 4, 5],
            &[3, 4, 5],
        ]);
        let g = sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]);
        let h = sop(&[&[1, 4, 5], &[3, 4, 5]]);
        let kc = KernelConfig::default();
        m.add_node_kernels(10, &f, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(9, &g, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(8, &h, &kc, &reg, &mut rl, &mut cl);
        let weights = reg.weights_snapshot();
        (m, reg, weights)
    }

    #[test]
    fn best_rectangle_on_paper_network_is_a_plus_b() {
        let (m, _reg, w) = paper_matrix();
        let (best, stats) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
        let best = best.expect("positive rectangle exists");
        assert!(!stats.budget_exhausted);
        // Example 1.1: extracting X = a + b saves 8 literals.
        assert_eq!(best.value, 8);
        let kernel = best.kernel(&m);
        assert_eq!(kernel, sop(&[&[1], &[2]]));
        // Rows: co-kernels f, de of F and f, ce of G.
        let row_desc: Vec<(u32, Cube)> = best
            .rows
            .iter()
            .map(|&r| (m.rows()[r].node, m.rows()[r].cokernel.clone()))
            .collect();
        assert!(row_desc.contains(&(10, cube(&[6]))));
        assert!(row_desc.contains(&(10, cube(&[4, 5]))));
        assert!(row_desc.contains(&(9, cube(&[6]))));
        assert!(row_desc.contains(&(9, cube(&[3, 5]))));
        assert_eq!(best.rows.len(), 4);
    }

    #[test]
    fn exact_and_greedy_agree_on_paper_network() {
        let (m, _reg, w) = paper_matrix();
        let exact = best_rectangle(
            &m,
            &|id| w[id as usize],
            &SearchConfig {
                greedy_seed: false,
                ..SearchConfig::default()
            },
        )
        .0
        .unwrap();
        let seeded = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        assert_eq!(exact.value, seeded.value);
    }

    #[test]
    fn stripes_partition_the_search() {
        // The union of the best rectangles over all stripes must contain
        // a rectangle as good as the global best (Figure 1's reduction).
        let (m, _reg, w) = paper_matrix();
        let global = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        let nprocs = 3u32;
        let mut best_striped: i64 = 0;
        for p in 0..nprocs {
            let cfg = SearchConfig {
                stripe: Some((p, nprocs)),
                ..SearchConfig::default()
            };
            if let (Some(r), _) = best_rectangle(&m, &|id| w[id as usize], &cfg) {
                best_striped = best_striped.max(r.value);
            }
        }
        assert_eq!(best_striped, global.value);
    }

    #[test]
    fn covered_cubes_lose_value() {
        let (m, reg, w) = paper_matrix();
        // Cover G's cubes af/bf/ace/bce for another processor: the best
        // rectangle should shrink (only F's rows contribute).
        let g_cubes = [
            cube(&[1, 6]),
            cube(&[2, 6]),
            cube(&[1, 3, 5]),
            cube(&[2, 3, 5]),
        ];
        let covered: Vec<CubeId> = g_cubes.iter().map(|c| reg.lookup(9, c).unwrap()).collect();
        let value_of = move |id: CubeId| {
            if covered.contains(&id) {
                0
            } else {
                w[id as usize]
            }
        };
        let best = best_rectangle(&m, &value_of, &SearchConfig::default())
            .0
            .unwrap();
        // a+b over F only: covered 2+2+3+3=10, rows (f:2)+(de:3)=5, cols 2 ⇒ 3
        // but other kernels may do better; value must drop below 8.
        assert!(best.value < 8);
        assert!(best.value > 0);
        for &r in &best.rows {
            assert_ne!(m.rows()[r].node, 9, "worthless rows must be dropped");
        }
    }

    #[test]
    fn budget_falls_back_to_greedy() {
        let (m, _reg, w) = paper_matrix();
        let (best, stats) = best_rectangle(
            &m,
            &|id| w[id as usize],
            &SearchConfig {
                budget: 1,
                ..SearchConfig::default()
            },
        );
        assert!(stats.budget_exhausted);
        assert_eq!(stats.visited, 1);
        // Greedy still finds the a+b rectangle here (it is a full row).
        assert_eq!(best.unwrap().value, 8);
    }

    #[test]
    fn completing_exactly_at_budget_is_not_exhausted() {
        // Run once unbounded to learn the exact expansion count, then
        // re-run with the budget set to precisely that count: the search
        // still completes, so it must NOT report exhaustion.
        let (m, _reg, w) = paper_matrix();
        let (_, free) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
        assert!(free.visited > 1);
        let (best, stats) = best_rectangle(
            &m,
            &|id| w[id as usize],
            &SearchConfig {
                budget: free.visited,
                ..SearchConfig::default()
            },
        );
        assert!(
            !stats.budget_exhausted,
            "final expansion completed the search"
        );
        assert_eq!(stats.visited, free.visited);
        assert_eq!(best.unwrap().value, 8);
        // One fewer and the search is genuinely truncated.
        let (_, short) = best_rectangle(
            &m,
            &|id| w[id as usize],
            &SearchConfig {
                budget: free.visited - 1,
                ..SearchConfig::default()
            },
        );
        assert!(short.budget_exhausted);
    }

    #[test]
    fn no_positive_rectangle_returns_none() {
        // Matrix from x = ab + cd: no kernels at all → no columns.
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            1,
            &sop(&[&[1, 2], &[3, 4]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let (best, _) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
        assert!(best.is_none());
    }

    #[test]
    fn single_node_kernel_extraction_gain() {
        // f = ac + ad + bc + bd: extracting a+b (or c+d) saves
        // covered 4·2=8 − rows (1+1)+(1+1) − cols 2 = 2.
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            1,
            &sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let best = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        assert_eq!(best.value, 2);
        assert_eq!(best.cols.len(), 2);
        assert_eq!(best.rows.len(), 2);
    }

    #[test]
    fn min_cols_one_allows_cube_rectangles() {
        // With min_cols = 1 the search may pick a single-column
        // rectangle (common-cube extraction style).
        let (m, _reg, w) = paper_matrix();
        let cfg = SearchConfig {
            min_cols: 1,
            ..SearchConfig::default()
        };
        let best = best_rectangle(&m, &|id| w[id as usize], &cfg).0.unwrap();
        assert!(best.value >= 8); // at least as good as the 2-col optimum
    }

    #[test]
    fn dedup_counts_shared_cube_once() {
        // G alone: rectangle {(a),(b)} × {f, ce} covers af,bf,ace,bce;
        // rows a,b of G; value = 10 − (2+2) − (1+2) = 3.
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            9,
            &sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let best = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        assert_eq!(best.value, 3);
    }

    #[test]
    fn seed_survives_when_still_best() {
        // Seed the search with the known optimum: the result must be
        // unchanged (the seed re-validates to the same rectangle).
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        let (best, _) = best_rectangle(&m, &value_of, &SearchConfig::default());
        let best = best.unwrap();
        let (seeded, _) =
            best_rectangle_seeded(&m, &value_of, &SearchConfig::default(), Some(&best));
        assert_eq!(seeded.unwrap().value, best.value);
    }

    #[test]
    fn stale_seed_is_ignored() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        // A seed pointing at out-of-range columns must not panic or
        // perturb the result.
        let stale = Rectangle {
            rows: vec![0],
            cols: vec![9999, 10000],
            value: 123,
        };
        let (best, _) =
            best_rectangle_seeded(&m, &value_of, &SearchConfig::default(), Some(&stale));
        assert_eq!(best.unwrap().value, 8);
    }

    #[test]
    fn parallel_matches_sequential_and_is_thread_count_independent() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        let (seq_best, _) = best_rectangle(&m, &value_of, &SearchConfig::default());
        let seq_best = seq_best.unwrap();
        let mut prior: Option<Rectangle> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = SearchConfig {
                par_threads: threads,
                ..SearchConfig::default()
            };
            let (par_best, stats) = best_rectangle(&m, &value_of, &cfg);
            let par_best = par_best.unwrap();
            assert!(!stats.budget_exhausted);
            assert_eq!(par_best.value, seq_best.value, "threads={threads}");
            if let Some(p) = &prior {
                assert_eq!(&par_best, p, "threads={threads} changed the result");
            }
            prior = Some(par_best);
        }
    }

    #[test]
    fn parallel_budget_truncation_returns_greedy_deterministically() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        let mut prior: Option<Rectangle> = None;
        for threads in [1usize, 4] {
            let cfg = SearchConfig {
                budget: 1,
                par_threads: threads,
                ..SearchConfig::default()
            };
            let (best, stats) = best_rectangle(&m, &value_of, &cfg);
            assert!(stats.budget_exhausted);
            let best = best.unwrap();
            assert_eq!(best.value, 8); // greedy finds a+b (a full row)
            if let Some(p) = &prior {
                assert_eq!(&best, p);
            }
            prior = Some(best);
        }
    }

    #[test]
    fn topk_collects_canonically_sorted_distinct_rectangles() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        let cfg = SearchConfig {
            topk: 4,
            ..SearchConfig::default()
        };
        let (rects, stats) = best_rectangles_seeded(&m, &value_of, &cfg, None);
        assert!(!stats.budget_exhausted);
        assert!(rects.len() > 1, "paper matrix holds several rectangles");
        assert!(rects.len() <= 4);
        // Best-first under the canonical order, all distinct.
        for w in rects.windows(2) {
            assert!(canonical_better(&w[0], &w[1]));
        }
        assert_eq!(rects[0].value, 8, "head is the global best");
    }

    #[test]
    fn topk_is_thread_count_independent_and_matches_sequential() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        for k in [2usize, 4, 16] {
            let seq_cfg = SearchConfig {
                topk: k,
                ..SearchConfig::default()
            };
            let (seq_rects, _) = best_rectangles_seeded(&m, &value_of, &seq_cfg, None);
            for threads in [1usize, 2, 4, 8] {
                let cfg = SearchConfig {
                    topk: k,
                    par_threads: threads,
                    ..SearchConfig::default()
                };
                let (par_rects, _) = best_rectangles_seeded(&m, &value_of, &cfg, None);
                assert_eq!(par_rects, seq_rects, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn plural_with_k1_matches_singular_exactly() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        for threads in [0usize, 1, 4] {
            let cfg = SearchConfig {
                par_threads: threads,
                ..SearchConfig::default()
            };
            let (single, _) = best_rectangle_seeded(&m, &value_of, &cfg, None);
            let (plural, _) = best_rectangles_seeded(&m, &value_of, &cfg, None);
            assert_eq!(plural.len(), 1);
            assert_eq!(plural[0], single.unwrap(), "threads={threads}");
        }
    }

    #[test]
    fn topk_seed_joins_the_batch() {
        let (m, _reg, w) = paper_matrix();
        let value_of = |id: CubeId| w[id as usize];
        let cfg = SearchConfig {
            topk: 4,
            ..SearchConfig::default()
        };
        let (unseeded, _) = best_rectangles_seeded(&m, &value_of, &cfg, None);
        let (seeded, _) = best_rectangles_seeded(&m, &value_of, &cfg, Some(&unseeded[0]));
        assert_eq!(seeded, unseeded, "re-validated seed dedups into the batch");
    }

    #[test]
    fn canonical_order_is_total_and_value_first() {
        let a = Rectangle {
            rows: vec![1, 2],
            cols: vec![0, 3],
            value: 5,
        };
        let b = Rectangle {
            rows: vec![0, 9],
            cols: vec![1, 2],
            value: 4,
        };
        assert!(canonical_better(&a, &b)); // higher value wins
        let c = Rectangle {
            rows: vec![1, 2],
            cols: vec![0, 4],
            value: 5,
        };
        assert!(canonical_better(&a, &c)); // tie → smaller cols
        assert!(!canonical_better(&c, &a));
        assert!(!canonical_better(&a, &a.clone())); // irreflexive
    }
}
