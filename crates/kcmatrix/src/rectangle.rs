//! Best-rectangle search over the KC matrix.
//!
//! A rectangle `(R, C)` selects rows and columns whose intersections are
//! all `1` entries; extracting it creates the node `X = Σ_{c∈C} cube_c`
//! and rewrites every row's node. Its **value** is the literal saving
//! (Brayton–Rudell):
//!
//! ```text
//! value(R, C) = Σ_{distinct cubes covered} v(cube)
//!             − Σ_{r∈R} (|cokernel_r| + 1)      (replacement cubes cok·X)
//!             − Σ_{c∈C} |cube_c|                 (the new node's body)
//! ```
//!
//! where `v(cube)` is the cube's current value — the weight for FREE
//! cubes, 0 for cubes covered by another processor or already divided
//! (paper §5.3). The search enumerates column sets ordered by **leftmost
//! column** (exactly the decomposition Figure 1 splits across
//! processors), keeps for each column set the optimal row subset (rows
//! with positive contribution), prunes with an admissible bound, and
//! degrades to a per-row greedy sweep when a visit budget is exhausted.

use crate::matrix::{ColIdx, KcMatrix, RowIdx};
use crate::registry::CubeId;
use pf_sop::fx::FxHashSet;
use pf_sop::Sop;

/// A candidate extraction: chosen rows, chosen columns, literal saving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rectangle {
    /// Row indices into the matrix (alive rows only).
    pub rows: Vec<RowIdx>,
    /// Column indices, ascending.
    pub cols: Vec<ColIdx>,
    /// Exact literal saving of extracting this rectangle now.
    pub value: i64,
}

impl Rectangle {
    /// The kernel this rectangle extracts: the sum of its column cubes.
    pub fn kernel(&self, m: &KcMatrix) -> Sop {
        Sop::from_cubes(self.cols.iter().map(|&c| m.cols()[c].cube.clone()))
    }
}

/// Search options.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum number of column-set expansions before falling back to
    /// the greedy sweep result.
    pub budget: u64,
    /// Restrict the *leftmost* column of enumerated rectangles to the
    /// stripe `proc` of `nprocs` (round-robin by column index) — the §3
    /// divide-and-conquer decomposition. `None` searches everything.
    pub stripe: Option<(u32, u32)>,
    /// Minimum number of columns (2 for kernel extraction: a single
    /// column is a cube, not a kernel).
    pub min_cols: usize,
    /// Run the seeding greedy sweep before branch and bound. Disable
    /// only in tests that target the exact search.
    pub greedy_seed: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            budget: 2_000_000,
            stripe: None,
            min_cols: 2,
            greedy_seed: true,
        }
    }
}

/// Statistics from one search call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Column sets expanded.
    pub visited: u64,
    /// Whether the branch-and-bound budget ran out (result may be the
    /// greedy one).
    pub budget_exhausted: bool,
}

/// The cost functions defining a rectangle's value. The default (area)
/// model values a covered cube at its literal count, a row replacement
/// `cok·X` at `|cok| + 1` and a kernel cube at its literal count; the
/// paper's conclusion points out that timing- and power-driven synthesis
/// only need these three functions swapped ("our methods can be directly
/// applied … provided the algorithms are formulated in terms of a
/// rectangular cover problem").
pub struct CostModel<'a> {
    /// Current value of a covered cube (0 when covered elsewhere or
    /// divided — the paper's `V` attribute).
    pub cube_value: &'a dyn Fn(CubeId) -> u32,
    /// Cost of the replacement cube `cok·X` added per chosen row.
    pub row_cost: &'a dyn Fn(&pf_sop::Cube) -> i64,
    /// Cost of one kernel cube in the extracted node's body.
    pub col_cost: &'a dyn Fn(&pf_sop::Cube) -> i64,
}

/// Finds the maximum-valued rectangle with positive value, or `None`.
///
/// `value_of` maps a [`CubeId`] to its current value (weight, or 0 when
/// covered elsewhere / divided) — the paper's `V` attribute read with the
/// asking processor's identity baked in. Uses the default area cost
/// model; see [`best_rectangle_with`] for custom objectives.
pub fn best_rectangle(
    m: &KcMatrix,
    value_of: &dyn Fn(CubeId) -> u32,
    cfg: &SearchConfig,
) -> (Option<Rectangle>, SearchStats) {
    let model = CostModel {
        cube_value: value_of,
        row_cost: &|cok| cok.len() as i64 + 1,
        col_cost: &|cube| cube.len() as i64,
    };
    best_rectangle_with(m, &model, cfg)
}

/// [`best_rectangle`] under an explicit [`CostModel`].
pub fn best_rectangle_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
) -> (Option<Rectangle>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut best: Option<Rectangle> = None;

    // Precompute, per alive row: Σ of entry values and the row cost —
    // used for the admissible pruning bound.
    let nrows = m.rows().len();
    let mut row_full_value = vec![0i64; nrows];
    for (i, r) in m.rows().iter().enumerate() {
        if !r.alive {
            continue;
        }
        let sum: i64 = r
            .entries
            .iter()
            .map(|&(_, id)| (model.cube_value)(id) as i64)
            .sum();
        row_full_value[i] = sum - (model.row_cost)(&r.cokernel);
    }

    if cfg.greedy_seed {
        greedy_sweep(m, model, cfg, &mut best);
    }

    // Branch and bound over column sets ordered by leftmost column.
    let ncols = m.cols().len();
    let mut state = Search {
        m,
        model,
        cfg,
        row_full_value: &row_full_value,
        stats: &mut stats,
        best: &mut best,
        cols: Vec::new(),
        scratch: Vec::new(),
        seen: FxHashSet::default(),
    };
    for c0 in 0..ncols {
        if let Some((proc, nprocs)) = cfg.stripe {
            if (c0 as u32) % nprocs != proc {
                continue;
            }
        }
        let rows0: Vec<RowIdx> = m.cols()[c0].rows.clone();
        if rows0.is_empty() {
            continue;
        }
        if state.exhausted() {
            break;
        }
        state.cols.clear();
        state.cols.push(c0);
        state.explore(0, rows0);
    }
    stats.budget_exhausted = stats.visited >= cfg.budget;
    (best, stats)
}

struct Search<'a> {
    m: &'a KcMatrix,
    model: &'a CostModel<'a>,
    cfg: &'a SearchConfig,
    row_full_value: &'a [i64],
    stats: &'a mut SearchStats,
    best: &'a mut Option<Rectangle>,
    /// Current column set (shared across the recursion as a stack).
    cols: Vec<ColIdx>,
    /// Per-depth row-intersection buffers, reused between branches.
    scratch: Vec<Vec<RowIdx>>,
    /// Reusable dedup set for exact evaluation.
    seen: FxHashSet<CubeId>,
}

impl Search<'_> {
    fn exhausted(&self) -> bool {
        self.stats.visited >= self.cfg.budget
    }

    fn best_value(&self) -> i64 {
        self.best.as_ref().map_or(0, |b| b.value)
    }

    /// Expands the current column set (`self.cols`) whose supporting
    /// rows are `rows`. `depth` indexes the scratch pool. Returns the
    /// `rows` buffer so the caller can pool it.
    fn explore(&mut self, depth: usize, rows: Vec<RowIdx>) -> Vec<RowIdx> {
        self.stats.visited += 1;
        if self.exhausted() {
            return rows;
        }

        if self.cols.len() >= self.cfg.min_cols {
            // Cheap gate first: the duplicate-blind value is an upper
            // bound on the exact value, so the exact (allocating) pass
            // only runs on candidates that could beat the best.
            let col_cost: i64 = self
                .cols
                .iter()
                .map(|&c| (self.model.col_cost)(&self.m.cols()[c].cube))
                .sum();
            let mut approx: i64 = -col_cost;
            for &r in &rows {
                let row = &self.m.rows()[r];
                let mut contrib: i64 = -(self.model.row_cost)(&row.cokernel);
                for &c in &self.cols {
                    let id = row.entry(c).expect("row supports all cols");
                    contrib += (self.model.cube_value)(id) as i64;
                }
                if contrib > 0 {
                    approx += contrib;
                }
            }
            if approx > self.best_value() {
                self.seen.clear();
                if let Some(rect) =
                    evaluate_with(self.m, self.model, &self.cols, &rows, &mut self.seen)
                {
                    if rect.value > self.best_value() {
                        *self.best = Some(rect);
                    }
                }
            }
        }

        // Extend with columns to the right of the current rightmost.
        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.scratch.len() <= depth {
            self.scratch.resize_with(depth + 1, Vec::new);
        }
        for c in from..self.m.cols().len() {
            // rows ∩ rows(c), into the per-depth scratch buffer.
            let mut shared = std::mem::take(&mut self.scratch[depth]);
            shared.clear();
            intersect_into(&rows, &self.m.cols()[c].rows, &mut shared);
            if shared.is_empty() {
                self.scratch[depth] = shared;
                continue;
            }
            // Admissible bound: every surviving row can contribute at
            // most its full-row value; column costs only grow.
            let ub: i64 = shared.iter().map(|&r| self.row_full_value[r].max(0)).sum();
            if ub <= self.best_value() {
                self.scratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore(depth + 1, shared);
            self.scratch[depth] = buf;
            self.cols.pop();
            if self.exhausted() {
                return rows;
            }
        }
        rows
    }
}

/// `out = a ∩ b` over sorted slices, reusing `out`'s allocation.
fn intersect_into(a: &[RowIdx], b: &[RowIdx], out: &mut Vec<RowIdx>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Exact evaluation of the optimal rectangle for a fixed column set:
/// keeps the rows with positive contribution and counts each covered
/// cube once. Returns `None` when no row subset yields positive value.
/// `seen` is a caller-provided (cleared) dedup buffer.
fn evaluate_with(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cols: &[ColIdx],
    rows: &[RowIdx],
    seen: &mut FxHashSet<CubeId>,
) -> Option<Rectangle> {
    // First pass: per-row contribution ignoring cross-row duplicates
    // (an upper bound per row); rows kept if positive.
    let col_cost: i64 = cols
        .iter()
        .map(|&c| (model.col_cost)(&m.cols()[c].cube))
        .sum();
    let mut kept: Vec<RowIdx> = Vec::new();
    for &r in rows {
        let row = &m.rows()[r];
        let mut contrib: i64 = -(model.row_cost)(&row.cokernel);
        for &c in cols {
            let id = row.entry(c).expect("row supports all cols");
            contrib += (model.cube_value)(id) as i64;
        }
        if contrib > 0 {
            kept.push(r);
        }
    }
    if kept.is_empty() {
        return None;
    }
    // Second pass: exact value with cross-row cube deduplication.
    let mut total: i64 = -col_cost;
    for &r in &kept {
        let row = &m.rows()[r];
        total -= (model.row_cost)(&row.cokernel);
        for &c in cols {
            let id = row.entry(c).expect("row supports all cols");
            if seen.insert(id) {
                total += (model.cube_value)(id) as i64;
            }
        }
    }
    if total <= 0 {
        return None;
    }
    Some(Rectangle {
        rows: kept,
        cols: cols.to_vec(),
        value: total,
    })
}

/// Greedy seed: for every alive row, take its full column set as the
/// candidate kernel and evaluate the optimal rectangle for it. O(rows ×
/// cols); seeds the branch-and-bound with a strong lower bound and is
/// the fallback answer when the budget dies.
fn greedy_sweep(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    best: &mut Option<Rectangle>,
) {
    let mut seen: FxHashSet<CubeId> = FxHashSet::default();
    for row in m.rows().iter().filter(|r| r.alive) {
        if row.entries.len() < cfg.min_cols {
            continue;
        }
        let cols: Vec<ColIdx> = row.entries.iter().map(|&(c, _)| c).collect();
        if let Some((proc, nprocs)) = cfg.stripe {
            // Stripe filter applies to the leftmost column for
            // consistency with the exact search.
            if (cols[0] as u32) % nprocs != proc {
                continue;
            }
        }
        // Supporting rows: intersection of the column row-lists.
        let mut support = m.cols()[cols[0]].rows.clone();
        for &c in &cols[1..] {
            support = KcMatrix::intersect_rows(&support, &m.cols()[c].rows);
            if support.is_empty() {
                break;
            }
        }
        if support.is_empty() {
            continue;
        }
        seen.clear();
        if let Some(rect) = evaluate_with(m, model, &cols, &support, &mut seen) {
            if rect.value > best.as_ref().map_or(0, |b| b.value) {
                *best = Some(rect);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LabelGen;
    use crate::registry::CubeRegistry;
    use pf_sop::kernel::KernelConfig;
    use pf_sop::{Cube, Lit};

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    /// Builds the full KC matrix of the paper's network N (Eq. 1):
    /// F (id 10), G (id 9), H (id 8), vars a=1 … g=7.
    fn paper_matrix() -> (KcMatrix, CubeRegistry, Vec<u32>) {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let f = sop(&[
            &[1, 6],
            &[2, 6],
            &[1, 7],
            &[3, 7],
            &[1, 4, 5],
            &[2, 4, 5],
            &[3, 4, 5],
        ]);
        let g = sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]);
        let h = sop(&[&[1, 4, 5], &[3, 4, 5]]);
        let kc = KernelConfig::default();
        m.add_node_kernels(10, &f, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(9, &g, &kc, &reg, &mut rl, &mut cl);
        m.add_node_kernels(8, &h, &kc, &reg, &mut rl, &mut cl);
        let weights = reg.weights_snapshot();
        (m, reg, weights)
    }

    #[test]
    fn best_rectangle_on_paper_network_is_a_plus_b() {
        let (m, _reg, w) = paper_matrix();
        let (best, stats) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
        let best = best.expect("positive rectangle exists");
        assert!(!stats.budget_exhausted);
        // Example 1.1: extracting X = a + b saves 8 literals.
        assert_eq!(best.value, 8);
        let kernel = best.kernel(&m);
        assert_eq!(kernel, sop(&[&[1], &[2]]));
        // Rows: co-kernels f, de of F and f, ce of G.
        let row_desc: Vec<(u32, Cube)> = best
            .rows
            .iter()
            .map(|&r| (m.rows()[r].node, m.rows()[r].cokernel.clone()))
            .collect();
        assert!(row_desc.contains(&(10, cube(&[6]))));
        assert!(row_desc.contains(&(10, cube(&[4, 5]))));
        assert!(row_desc.contains(&(9, cube(&[6]))));
        assert!(row_desc.contains(&(9, cube(&[3, 5]))));
        assert_eq!(best.rows.len(), 4);
    }

    #[test]
    fn exact_and_greedy_agree_on_paper_network() {
        let (m, _reg, w) = paper_matrix();
        let exact = best_rectangle(
            &m,
            &|id| w[id as usize],
            &SearchConfig {
                greedy_seed: false,
                ..SearchConfig::default()
            },
        )
        .0
        .unwrap();
        let seeded = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        assert_eq!(exact.value, seeded.value);
    }

    #[test]
    fn stripes_partition_the_search() {
        // The union of the best rectangles over all stripes must contain
        // a rectangle as good as the global best (Figure 1's reduction).
        let (m, _reg, w) = paper_matrix();
        let global = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        let nprocs = 3u32;
        let mut best_striped: i64 = 0;
        for p in 0..nprocs {
            let cfg = SearchConfig {
                stripe: Some((p, nprocs)),
                ..SearchConfig::default()
            };
            if let (Some(r), _) = best_rectangle(&m, &|id| w[id as usize], &cfg) {
                best_striped = best_striped.max(r.value);
            }
        }
        assert_eq!(best_striped, global.value);
    }

    #[test]
    fn covered_cubes_lose_value() {
        let (m, reg, w) = paper_matrix();
        // Cover G's cubes af/bf/ace/bce for another processor: the best
        // rectangle should shrink (only F's rows contribute).
        let g_cubes = [
            cube(&[1, 6]),
            cube(&[2, 6]),
            cube(&[1, 3, 5]),
            cube(&[2, 3, 5]),
        ];
        let covered: Vec<CubeId> = g_cubes.iter().map(|c| reg.lookup(9, c).unwrap()).collect();
        let value_of = move |id: CubeId| {
            if covered.contains(&id) {
                0
            } else {
                w[id as usize]
            }
        };
        let best = best_rectangle(&m, &value_of, &SearchConfig::default())
            .0
            .unwrap();
        // a+b over F only: covered 2+2+3+3=10, rows (f:2)+(de:3)=5, cols 2 ⇒ 3
        // but other kernels may do better; value must drop below 8.
        assert!(best.value < 8);
        assert!(best.value > 0);
        for &r in &best.rows {
            assert_ne!(m.rows()[r].node, 9, "worthless rows must be dropped");
        }
    }

    #[test]
    fn budget_falls_back_to_greedy() {
        let (m, _reg, w) = paper_matrix();
        let (best, stats) = best_rectangle(
            &m,
            &|id| w[id as usize],
            &SearchConfig {
                budget: 1,
                ..SearchConfig::default()
            },
        );
        assert!(stats.budget_exhausted);
        // Greedy still finds the a+b rectangle here (it is a full row).
        assert_eq!(best.unwrap().value, 8);
    }

    #[test]
    fn no_positive_rectangle_returns_none() {
        // Matrix from x = ab + cd: no kernels at all → no columns.
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            1,
            &sop(&[&[1, 2], &[3, 4]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let (best, _) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
        assert!(best.is_none());
    }

    #[test]
    fn single_node_kernel_extraction_gain() {
        // f = ac + ad + bc + bd: extracting a+b (or c+d) saves
        // covered 4·2=8 − rows (1+1)+(1+1) − cols 2 = 2.
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            1,
            &sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let best = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        assert_eq!(best.value, 2);
        assert_eq!(best.cols.len(), 2);
        assert_eq!(best.rows.len(), 2);
    }

    #[test]
    fn min_cols_one_allows_cube_rectangles() {
        // With min_cols = 1 the search may pick a single-column
        // rectangle (common-cube extraction style).
        let (m, _reg, w) = paper_matrix();
        let cfg = SearchConfig {
            min_cols: 1,
            ..SearchConfig::default()
        };
        let best = best_rectangle(&m, &|id| w[id as usize], &cfg).0.unwrap();
        assert!(best.value >= 8); // at least as good as the 2-col optimum
    }

    #[test]
    fn dedup_counts_shared_cube_once() {
        // G alone: rectangle {(a),(b)} × {f, ce} covers af,bf,ace,bce;
        // rows a,b of G; value = 10 − (2+2) − (1+2) = 3.
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            9,
            &sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let w = reg.weights_snapshot();
        let best = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .unwrap();
        assert_eq!(best.value, 3);
    }
}
