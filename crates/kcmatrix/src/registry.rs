//! Cube interning and the shared cube-state table.
//!
//! Every `1` entry of the KC matrix corresponds to a *network cube* — a
//! concrete product term of a concrete node. The same network cube can
//! appear at several matrix positions (through different co-kernels), and
//! in Algorithm L the overlapping blocks `B_ij` replicate entries across
//! processors; cube identity is therefore global. The
//! [`CubeRegistry`] interns `(node, cube)` pairs into dense [`CubeId`]s,
//! and [`CubeStates`] keeps one atomic word per cube implementing the
//! paper's Table 5:
//!
//! | state   | V | T | meaning                                     |
//! |---------|---|---|---------------------------------------------|
//! | FREE    | w | — | not covered by any best rectangle           |
//! | COVERED | 0 | w | speculatively covered by `owner`, not divided |
//! | DIVIDED | 0 | 0 | covered by some rectangle and divided       |
//!
//! `value_for(cube, asking_proc)` returns the *trueval* `w` to the owner
//! while COVERED (the owner may still improve its own best rectangle) and
//! `0` to everyone else — the §5.3 mechanism that stops two processors
//! from both banking the same literals.

use parking_lot::Mutex;
use pf_sop::fx::{FxHashMap, FxHasher};
use pf_sop::Cube;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};

/// Dense id of an interned network cube.
pub type CubeId = u32;

/// Processor id in the parallel algorithms (0-based).
pub type ProcId = u16;

/// The per-cube state of Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CubeState {
    /// Not covered by any processor's current best rectangle.
    Free,
    /// Speculatively covered by this processor's best rectangle.
    Covered(ProcId),
    /// Extracted: the covering rectangle has been divided out.
    Divided,
}

// Atomic encoding: bit 17 = divided, bit 16 = covered, bits 0..16 = owner.
const DIVIDED_BIT: u32 = 1 << 17;
const COVERED_BIT: u32 = 1 << 16;
const OWNER_MASK: u32 = 0xFFFF;

/// Interns `(node, cube)` pairs and records each cube's literal weight.
///
/// Interning is mutex-protected (it happens during matrix construction,
/// off the hot search path); lookups of weight by id are lock-free.
///
/// The index maps the *hash* of `(node, cube)` to the ids sharing it,
/// and candidate hits are confirmed against the owned `cubes` table —
/// so a hit costs zero clones, and a miss clones the cube exactly once
/// (into `cubes`; the map key is just the hash). Batch readers use
/// [`CubeRegistry::for_each_from`] to walk new entries under one lock
/// acquisition instead of one lock + clone per id.
#[derive(Default)]
pub struct CubeRegistry {
    inner: Mutex<RegistryInner>,
}

/// Ids sharing one `(node, cube)` hash. Almost always a single id;
/// `Many` keeps collisions correct without a per-entry `Vec`.
enum IdList {
    One(CubeId),
    Many(Vec<CubeId>),
}

impl IdList {
    fn push(&mut self, id: CubeId) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    fn iter(&self) -> impl Iterator<Item = CubeId> + '_ {
        match self {
            IdList::One(id) => std::slice::from_ref(id).iter().copied(),
            IdList::Many(v) => v.as_slice().iter().copied(),
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    index: FxHashMap<u64, IdList>,
    weights: Vec<u32>,
    cubes: Vec<(u32, Cube)>,
}

fn key_hash(node: u32, cube: &Cube) -> u64 {
    let mut h = FxHasher::default();
    node.hash(&mut h);
    cube.hash(&mut h);
    h.finish()
}

impl RegistryInner {
    fn find(&self, h: u64, node: u32, cube: &Cube) -> Option<CubeId> {
        let list = self.index.get(&h)?;
        list.iter().find(|&id| {
            let (n, c) = &self.cubes[id as usize];
            *n == node && c == cube
        })
    }
}

impl CubeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the cube `cube` of node `node`, returning its id. The
    /// weight recorded is the cube's literal count. A hit clones
    /// nothing; a miss clones the cube once.
    pub fn intern(&self, node: u32, cube: &Cube) -> CubeId {
        let h = key_hash(node, cube);
        let mut g = self.inner.lock();
        if let Some(id) = g.find(h, node, cube) {
            return id;
        }
        let id = g.weights.len() as CubeId;
        g.weights.push(cube.len() as u32);
        g.cubes.push((node, cube.clone()));
        g.index
            .entry(h)
            .and_modify(|list| list.push(id))
            .or_insert(IdList::One(id));
        id
    }

    /// The `(node, cube)` behind an id — the reverse of
    /// [`CubeRegistry::intern`]. Used by weighted cost models to value
    /// cubes by their literals. Clones; batch readers should prefer
    /// [`CubeRegistry::for_each_from`].
    pub fn cube(&self, id: CubeId) -> (u32, Cube) {
        self.inner.lock().cubes[id as usize].clone()
    }

    /// Looks up an already-interned cube (clone-free).
    pub fn lookup(&self, node: u32, cube: &Cube) -> Option<CubeId> {
        let h = key_hash(node, cube);
        self.inner.lock().find(h, node, cube)
    }

    /// Visits every cube with id ≥ `from` in id order, under a single
    /// lock acquisition and without cloning — the batch form of
    /// [`CubeRegistry::cube`] for incremental caches (`f` receives the
    /// node and the cube).
    pub fn for_each_from(&self, from: usize, mut f: impl FnMut(u32, &Cube)) {
        let g = self.inner.lock();
        for (node, cube) in g.cubes.iter().skip(from) {
            f(*node, cube);
        }
    }

    /// The literal weight of a cube.
    pub fn weight(&self, id: CubeId) -> u32 {
        self.inner.lock().weights[id as usize]
    }

    /// Number of interned cubes.
    pub fn len(&self) -> usize {
        self.inner.lock().weights.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all weights, indexed by [`CubeId`] — taken once per
    /// search pass so the hot loop never locks.
    pub fn weights_snapshot(&self) -> Vec<u32> {
        self.inner.lock().weights.clone()
    }

    /// Appends the weights of cubes interned since `cache.len()` to
    /// `cache` — the incremental form of [`CubeRegistry::weights_snapshot`],
    /// used by the parallel workers to avoid re-copying the whole table
    /// under the lock after every extraction.
    pub fn extend_weights(&self, cache: &mut Vec<u32>) {
        let g = self.inner.lock();
        if cache.len() < g.weights.len() {
            cache.extend_from_slice(&g.weights[cache.len()..]);
        }
    }
}

/// The shared state table: one atomic word per cube.
///
/// Grows monotonically; `ensure(len)` must be called after interning new
/// cubes and before using their ids (single-threaded phases only — the
/// parallel search phases never resize).
#[derive(Default)]
pub struct CubeStates {
    words: Vec<AtomicU32>,
}

impl CubeStates {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table sized for `n` cubes, all FREE.
    pub fn with_len(n: usize) -> Self {
        CubeStates {
            words: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Grows the table to at least `n` entries (new entries FREE).
    pub fn ensure(&mut self, n: usize) {
        while self.words.len() < n {
            self.words.push(AtomicU32::new(0));
        }
    }

    /// Number of tracked cubes.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Decodes the current state of a cube.
    pub fn state(&self, id: CubeId) -> CubeState {
        decode(self.words[id as usize].load(Ordering::Acquire))
    }

    /// The paper's `value` attribute as seen by `asking` (§5.3):
    /// * FREE → the true weight,
    /// * COVERED by `asking` itself → the true weight (trueval),
    /// * COVERED by another processor → 0,
    /// * DIVIDED → 0.
    #[inline]
    pub fn value_for(&self, id: CubeId, weight: u32, asking: ProcId) -> u32 {
        match self.state(id) {
            CubeState::Free => weight,
            CubeState::Covered(owner) if owner == asking => weight,
            _ => 0,
        }
    }

    /// Attempts to speculatively cover a FREE cube for `proc`
    /// (FREE → COVERED(proc)). Returns whether the claim succeeded; a
    /// cube already covered by `proc` also reports success (idempotent).
    pub fn claim(&self, id: CubeId, proc: ProcId) -> bool {
        let target = COVERED_BIT | proc as u32;
        loop {
            let cur = self.words[id as usize].load(Ordering::Acquire);
            match decode(cur) {
                CubeState::Free => {
                    if self.words[id as usize]
                        .compare_exchange(cur, target, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return true;
                    }
                }
                CubeState::Covered(owner) => return owner == proc,
                CubeState::Divided => return false,
            }
        }
    }

    /// Releases a cube this processor had covered
    /// (COVERED(proc) → FREE) — the "copies back the value from
    /// trueval" transition when the owner found a better rectangle.
    /// No-op unless currently covered by `proc`.
    pub fn release(&self, id: CubeId, proc: ProcId) -> bool {
        let cur = COVERED_BIT | proc as u32;
        self.words[id as usize]
            .compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks a cube DIVIDED (terminal). Any owner is overridden — the
    /// dividing processor has, by protocol, claimed the cube first or
    /// received it in a shipped partial rectangle.
    pub fn mark_divided(&self, id: CubeId) {
        self.words[id as usize].store(DIVIDED_BIT, Ordering::Release);
    }

    /// Resets every cube to FREE. Used between independent extraction
    /// passes of the sequential driver.
    pub fn reset(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }
}

#[inline]
fn decode(word: u32) -> CubeState {
    if word & DIVIDED_BIT != 0 {
        CubeState::Divided
    } else if word & COVERED_BIT != 0 {
        CubeState::Covered((word & OWNER_MASK) as ProcId)
    } else {
        CubeState::Free
    }
}

/// A lock-free, append-only variant of [`CubeStates`] for the threaded
/// algorithms: fixed-size chunks of atomics are allocated on demand
/// behind `OnceLock`s, so *reads never take a lock* — the rectangle
/// search evaluates millions of cube values per second and a shared
/// `RwLock` would serialize the processors.
///
/// Capacity is `CHUNK_SIZE · MAX_CHUNKS` (= 64 Mi cubes), far beyond any
/// realistic run; `ensure` panics past that.
pub struct ConcurrentCubeStates {
    chunks: Vec<std::sync::OnceLock<Box<[AtomicU32]>>>,
}

/// Entries per chunk (2^16).
const CHUNK_SIZE: usize = 1 << 16;
/// Maximum number of chunks.
const MAX_CHUNKS: usize = 1 << 10;

impl Default for ConcurrentCubeStates {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentCubeStates {
    /// An empty table.
    pub fn new() -> Self {
        let mut chunks = Vec::with_capacity(MAX_CHUNKS);
        chunks.resize_with(MAX_CHUNKS, std::sync::OnceLock::new);
        ConcurrentCubeStates { chunks }
    }

    /// Makes ids `0..n` addressable (allocates the covering chunks).
    pub fn ensure(&self, n: usize) {
        assert!(n <= CHUNK_SIZE * MAX_CHUNKS, "cube-state table exhausted");
        let needed = n.div_ceil(CHUNK_SIZE);
        for c in 0..needed {
            self.chunks[c].get_or_init(|| {
                (0..CHUNK_SIZE)
                    .map(|_| AtomicU32::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            });
        }
    }

    #[inline]
    fn word(&self, id: CubeId) -> &AtomicU32 {
        let id = id as usize;
        let chunk = self.chunks[id / CHUNK_SIZE]
            .get()
            .expect("ensure() must cover every id in use");
        &chunk[id % CHUNK_SIZE]
    }

    /// Decoded state of a cube.
    pub fn state(&self, id: CubeId) -> CubeState {
        decode(self.word(id).load(Ordering::Acquire))
    }

    /// Table 5's `value` as seen by `asking` (see
    /// [`CubeStates::value_for`]).
    #[inline]
    pub fn value_for(&self, id: CubeId, weight: u32, asking: ProcId) -> u32 {
        match self.state(id) {
            CubeState::Free => weight,
            CubeState::Covered(owner) if owner == asking => weight,
            _ => 0,
        }
    }

    /// FREE → COVERED(proc); idempotent for the same processor.
    pub fn claim(&self, id: CubeId, proc: ProcId) -> bool {
        let w = self.word(id);
        let target = COVERED_BIT | proc as u32;
        loop {
            let cur = w.load(Ordering::Acquire);
            match decode(cur) {
                CubeState::Free => {
                    if w.compare_exchange(cur, target, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return true;
                    }
                }
                CubeState::Covered(owner) => return owner == proc,
                CubeState::Divided => return false,
            }
        }
    }

    /// COVERED(proc) → FREE; no-op for other owners or states.
    pub fn release(&self, id: CubeId, proc: ProcId) -> bool {
        let cur = COVERED_BIT | proc as u32;
        self.word(id)
            .compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Any state → DIVIDED (terminal).
    pub fn mark_divided(&self, id: CubeId) {
        self.word(id).store(DIVIDED_BIT, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::Lit;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    #[test]
    fn interning_is_idempotent() {
        let reg = CubeRegistry::new();
        let id1 = reg.intern(0, &cube(&[1, 2]));
        let id2 = reg.intern(0, &cube(&[1, 2]));
        assert_eq!(id1, id2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.weight(id1), 2);
    }

    #[test]
    fn same_cube_different_node_distinct() {
        let reg = CubeRegistry::new();
        let id1 = reg.intern(0, &cube(&[1, 2]));
        let id2 = reg.intern(1, &cube(&[1, 2]));
        assert_ne!(id1, id2);
    }

    #[test]
    fn for_each_from_visits_only_the_tail_in_id_order() {
        let reg = CubeRegistry::new();
        reg.intern(0, &cube(&[1]));
        reg.intern(0, &cube(&[1, 2]));
        reg.intern(1, &cube(&[3]));
        let mut seen = Vec::new();
        reg.for_each_from(1, |node, c| seen.push((node, c.len())));
        assert_eq!(seen, vec![(0, 2), (1, 1)]);
        // From the end: nothing.
        let mut none = 0;
        reg.for_each_from(3, |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn id_list_handles_hash_collisions() {
        // Force the Many path directly: distinct cubes pushed under one
        // hash must all stay findable.
        let mut list = IdList::One(0);
        list.push(1);
        list.push(2);
        assert_eq!(list.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn lookup_finds_interned_only() {
        let reg = CubeRegistry::new();
        let id = reg.intern(3, &cube(&[4]));
        assert_eq!(reg.lookup(3, &cube(&[4])), Some(id));
        assert_eq!(reg.lookup(3, &cube(&[5])), None);
    }

    #[test]
    fn table5_free_state() {
        let st = CubeStates::with_len(4);
        assert_eq!(st.state(0), CubeState::Free);
        // FREE: everyone sees the weight.
        assert_eq!(st.value_for(0, 7, 0), 7);
        assert_eq!(st.value_for(0, 7, 3), 7);
    }

    #[test]
    fn table5_covered_state() {
        let st = CubeStates::with_len(4);
        assert!(st.claim(0, 2));
        assert_eq!(st.state(0), CubeState::Covered(2));
        // COVERED: owner sees trueval, others see 0 (Example 5.2 fix).
        assert_eq!(st.value_for(0, 7, 2), 7);
        assert_eq!(st.value_for(0, 7, 1), 0);
    }

    #[test]
    fn table5_divided_state() {
        let st = CubeStates::with_len(4);
        st.claim(0, 1);
        st.mark_divided(0);
        assert_eq!(st.state(0), CubeState::Divided);
        assert_eq!(st.value_for(0, 7, 1), 0);
        assert_eq!(st.value_for(0, 7, 2), 0);
        // A divided cube can never be claimed again.
        assert!(!st.claim(0, 1));
    }

    #[test]
    fn claim_is_exclusive_but_idempotent() {
        let st = CubeStates::with_len(2);
        assert!(st.claim(0, 1));
        assert!(!st.claim(0, 2)); // other processor rejected
        assert!(st.claim(0, 1)); // same processor fine
    }

    #[test]
    fn release_restores_trueval_for_everyone() {
        let st = CubeStates::with_len(2);
        st.claim(0, 1);
        assert!(st.release(0, 1));
        assert_eq!(st.state(0), CubeState::Free);
        assert_eq!(st.value_for(0, 9, 2), 9);
        // Releasing an unowned cube is a no-op.
        assert!(!st.release(0, 1));
    }

    #[test]
    fn release_wrong_owner_rejected() {
        let st = CubeStates::with_len(2);
        st.claim(0, 1);
        assert!(!st.release(0, 2));
        assert_eq!(st.state(0), CubeState::Covered(1));
    }

    #[test]
    fn reset_clears_everything() {
        let st = CubeStates::with_len(3);
        st.claim(0, 1);
        st.mark_divided(1);
        st.reset();
        for i in 0..3 {
            assert_eq!(st.state(i), CubeState::Free);
        }
    }

    #[test]
    fn concurrent_states_mirror_locked_table() {
        let st = ConcurrentCubeStates::new();
        st.ensure(3);
        assert_eq!(st.state(0), CubeState::Free);
        assert!(st.claim(0, 2));
        assert_eq!(st.state(0), CubeState::Covered(2));
        assert_eq!(st.value_for(0, 7, 2), 7);
        assert_eq!(st.value_for(0, 7, 1), 0);
        assert!(!st.claim(0, 1));
        assert!(st.release(0, 2));
        assert_eq!(st.state(0), CubeState::Free);
        st.mark_divided(1);
        assert_eq!(st.state(1), CubeState::Divided);
        assert!(!st.claim(1, 0));
    }

    #[test]
    fn concurrent_states_cross_chunk_ids() {
        let st = ConcurrentCubeStates::new();
        let big = (1usize << 16) + 5;
        st.ensure(big + 1);
        assert!(st.claim(big as CubeId, 3));
        assert_eq!(st.state(big as CubeId), CubeState::Covered(3));
        // Chunk 0 unaffected.
        assert_eq!(st.state(0), CubeState::Free);
    }

    #[test]
    fn concurrent_states_parallel_single_winner() {
        use std::sync::Arc;
        let st = Arc::new(ConcurrentCubeStates::new());
        st.ensure(1);
        let mut handles = Vec::new();
        for p in 0..8u16 {
            let st = Arc::clone(&st);
            handles.push(std::thread::spawn(move || st.claim(0, p)));
        }
        let winners: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(winners, 1);
    }

    #[test]
    fn concurrent_claims_have_single_winner() {
        use std::sync::Arc;
        let st = Arc::new(CubeStates::with_len(1));
        let mut handles = Vec::new();
        for p in 0..8u16 {
            let st = Arc::clone(&st);
            handles.push(std::thread::spawn(move || st.claim(0, p)));
        }
        let winners: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(winners, 1);
    }
}
