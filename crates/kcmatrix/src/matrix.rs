//! The sparse co-kernel cube matrix.
//!
//! Rows are `(node, co-kernel)` pairs, columns are distinct kernel cubes,
//! and each `1` entry records the interned [`CubeId`] of the network cube
//! `co-kernel ∪ kernel-cube` it covers (the paper's Figure 2 writes the
//! cube's index at each entry). Row and column labels follow the paper's
//! §5.2 offset scheme: processor `p` labels from `p · offset + 1`, so
//! labels are consistent across processors no matter the generation
//! order.

use crate::registry::{CubeId, CubeRegistry};
use crate::rowset::RowSet;
use pf_sop::fx::FxHashMap;
use pf_sop::kernel::{kernels_config, KernelConfig};
use pf_sop::{Cube, Sop};
use std::fmt;

/// Dense index of a row inside one matrix (not the label).
pub type RowIdx = usize;
/// Dense index of a column inside one matrix (not the label).
pub type ColIdx = usize;

/// Generates row or column labels with the paper's processor offset: the
/// first label of processor `p` is `p · offset + 1` (so processor 2's
/// first kernel is 200001 when `offset = 100_000`, as in Example 5.1).
#[derive(Clone, Debug)]
pub struct LabelGen {
    next: u64,
    limit: u64,
}

impl LabelGen {
    /// Label generator for processor `proc` with the given offset block
    /// size. Panics if a processor exhausts its block — with the default
    /// offset of 10⁹ that means a pathological run.
    pub fn new(proc: u16, offset: u64) -> Self {
        let base = proc as u64 * offset;
        LabelGen {
            next: base + 1,
            limit: base + offset,
        }
    }

    /// Default offset used by the engine (large enough for any workload).
    pub const DEFAULT_OFFSET: u64 = 1_000_000_000;

    /// Paper-sized offset (100 000), used when rendering Figure 4.
    pub const PAPER_OFFSET: u64 = 100_000;

    /// Produces the next label.
    #[allow(clippy::should_implement_trait)] // not an Iterator: labels never end mid-run
    pub fn next(&mut self) -> u64 {
        assert!(self.next <= self.limit, "label block exhausted");
        let l = self.next;
        self.next += 1;
        l
    }
}

/// A matrix row: one co-kernel of one node.
#[derive(Clone, Debug)]
pub struct KcRow {
    /// Paper-style label (globally unique across processors).
    pub label: u64,
    /// The node this co-kernel belongs to.
    pub node: u32,
    /// The co-kernel cube.
    pub cokernel: Cube,
    /// Entries `(column index, covered cube id)`.
    ///
    /// **Invariant:** strictly sorted by column index (no duplicates).
    /// Every constructor sorts + dedups before insertion and
    /// [`KcMatrix::push_row`] checks it in debug builds; [`KcRow::entry`]
    /// binary-searches on the strength of it. Mutators that rebuild rows
    /// (e.g. Algorithm L's `rebuild_node_rows`) go through
    /// `remove_node_rows` + `add_node_kernels`, so the invariant holds
    /// matrix-wide for the row's whole life.
    pub entries: Vec<(ColIdx, CubeId)>,
    /// Tombstone flag; dead rows are skipped by every search.
    pub alive: bool,
}

impl KcRow {
    /// The entry in column `c`, if present.
    pub fn entry(&self, c: ColIdx) -> Option<CubeId> {
        self.entries
            .binary_search_by_key(&c, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }
}

/// A matrix column: one distinct kernel cube.
#[derive(Clone, Debug)]
pub struct KcCol {
    /// Paper-style label.
    pub label: u64,
    /// The kernel cube.
    pub cube: Cube,
    /// Alive rows with an entry in this column, sorted.
    pub rows: Vec<RowIdx>,
}

/// The sparse co-kernel cube matrix.
#[derive(Default)]
pub struct KcMatrix {
    rows: Vec<KcRow>,
    cols: Vec<KcCol>,
    col_by_cube: FxHashMap<Cube, ColIdx>,
}

impl KcMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rows (including tombstoned ones — check `alive`).
    pub fn rows(&self) -> &[KcRow] {
        &self.rows
    }

    /// All columns.
    pub fn cols(&self) -> &[KcCol] {
        &self.cols
    }

    /// Number of alive rows.
    pub fn num_alive_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.alive).count()
    }

    /// Total number of `1` entries in alive rows.
    pub fn num_entries(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.entries.len())
            .sum()
    }

    /// The column index for a kernel cube, creating the column (with a
    /// label from `labels`) if needed.
    pub fn col_for_cube(&mut self, cube: &Cube, labels: &mut LabelGen) -> ColIdx {
        if let Some(&c) = self.col_by_cube.get(cube) {
            return c;
        }
        let idx = self.cols.len();
        self.cols.push(KcCol {
            label: labels.next(),
            cube: cube.clone(),
            rows: Vec::new(),
        });
        self.col_by_cube.insert(cube.clone(), idx);
        idx
    }

    /// Looks up a column by its kernel cube.
    pub fn find_col(&self, cube: &Cube) -> Option<ColIdx> {
        self.col_by_cube.get(cube).copied()
    }

    /// Adds a row for `(node, cokernel)` whose kernel is `kernel`,
    /// interning each covered cube in `registry`. Returns the row index.
    pub fn add_row(
        &mut self,
        row_label: u64,
        node: u32,
        cokernel: Cube,
        kernel: &Sop,
        registry: &CubeRegistry,
        col_labels: &mut LabelGen,
    ) -> RowIdx {
        let mut entries = Vec::with_capacity(kernel.num_cubes());
        for kc in kernel.iter() {
            let col = self.col_for_cube(kc, col_labels);
            let covered = cokernel
                .product(kc)
                .expect("co-kernel and kernel cube are variable-disjoint");
            let id = registry.intern(node, &covered);
            entries.push((col, id));
        }
        entries.sort_unstable_by_key(|e| e.0);
        self.push_row(KcRow {
            label: row_label,
            node,
            cokernel,
            entries,
            alive: true,
        })
    }

    /// Adds a pre-assembled row (used when merging shipped `B_ij`
    /// sub-rows in Algorithm L). Entries are `(kernel cube, cube id)`;
    /// columns are resolved or created here.
    pub fn add_row_with_entries(
        &mut self,
        row_label: u64,
        node: u32,
        cokernel: Cube,
        entries: impl IntoIterator<Item = (Cube, CubeId)>,
        col_labels: &mut LabelGen,
    ) -> RowIdx {
        let mut es: Vec<(ColIdx, CubeId)> = entries
            .into_iter()
            .map(|(cube, id)| (self.col_for_cube(&cube, col_labels), id))
            .collect();
        es.sort_unstable_by_key(|e| e.0);
        es.dedup_by_key(|e| e.0);
        self.push_row(KcRow {
            label: row_label,
            node,
            cokernel,
            entries: es,
            alive: true,
        })
    }

    fn push_row(&mut self, row: KcRow) -> RowIdx {
        debug_assert!(
            row.entries.windows(2).all(|w| w[0].0 < w[1].0),
            "row entries must be strictly sorted by column index"
        );
        let idx = self.rows.len();
        for &(c, _) in &row.entries {
            let rows = &mut self.cols[c].rows;
            match rows.binary_search(&idx) {
                Ok(_) => {}
                Err(pos) => rows.insert(pos, idx),
            }
        }
        self.rows.push(row);
        idx
    }

    /// Generates all kernel rows of a node function and adds them.
    /// Returns the new row indices.
    pub fn add_node_kernels(
        &mut self,
        node: u32,
        func: &Sop,
        cfg: &KernelConfig,
        registry: &CubeRegistry,
        row_labels: &mut LabelGen,
        col_labels: &mut LabelGen,
    ) -> Vec<RowIdx> {
        kernels_config(func, cfg)
            .into_iter()
            .map(|p| {
                self.add_row(
                    row_labels.next(),
                    node,
                    p.cokernel,
                    &p.kernel,
                    registry,
                    col_labels,
                )
            })
            .collect()
    }

    /// Tombstones a single row and scrubs it from the column row-lists.
    /// Only the columns the row actually occupies are touched (the
    /// sorted-entries invariant tells us exactly which those are).
    pub fn tombstone_row(&mut self, idx: RowIdx) {
        if !self.rows[idx].alive {
            return;
        }
        self.rows[idx].alive = false;
        for e in 0..self.rows[idx].entries.len() {
            let c = self.rows[idx].entries[e].0;
            let rows = &mut self.cols[c].rows;
            if let Ok(pos) = rows.binary_search(&idx) {
                rows.remove(pos);
            }
        }
    }

    /// Tombstones every row belonging to `node` (after the node's
    /// function changed) and scrubs the column row-lists.
    pub fn remove_node_rows(&mut self, node: u32) {
        let removed: Vec<RowIdx> = (0..self.rows.len())
            .filter(|&i| self.rows[i].alive && self.rows[i].node == node)
            .collect();
        for i in removed {
            self.tombstone_row(i);
        }
    }

    /// Per-column supports as dense [`RowSet`] bitsets over the row
    /// universe — the search's working representation. Tombstoned rows
    /// never appear (column row-lists are scrubbed on removal).
    pub fn col_row_sets(&self) -> Vec<RowSet> {
        let nrows = self.rows.len();
        self.cols
            .iter()
            .map(|c| RowSet::from_indices(c.rows.iter().copied(), nrows))
            .collect()
    }

    /// Row intersection helper: alive rows present in both sorted lists.
    pub fn intersect_rows(a: &[RowIdx], b: &[RowIdx]) -> Vec<RowIdx> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Renders the matrix in the style of the paper's Figure 2 / Figure 4:
    /// a header row of kernel-cube labels, then one line per alive row
    /// with its label, co-kernel and the covered-cube ids. `name_of`
    /// supplies display names for node ids and variable indices.
    pub fn render(&self, name_of: &dyn Fn(u32) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cube_name = |cube: &Cube| -> String {
            if cube.is_one() {
                "1".to_string()
            } else {
                cube.iter()
                    .map(|l| {
                        let n = name_of(l.var().index());
                        if l.is_negated() {
                            format!("~{n}")
                        } else {
                            n
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("")
            }
        };
        write!(out, "{:>18} |", "").unwrap();
        for c in &self.cols {
            write!(out, " {:>8}", cube_name(&c.cube)).unwrap();
        }
        out.push('\n');
        write!(out, "{:>18} |", "label").unwrap();
        for c in &self.cols {
            write!(out, " {:>8}", c.label).unwrap();
        }
        out.push('\n');
        writeln!(out, "{}", "-".repeat(20 + 9 * self.cols.len())).unwrap();
        for r in self.rows.iter().filter(|r| r.alive) {
            let head = format!(
                "{} {} ({})",
                name_of(r.node),
                cube_name(&r.cokernel),
                r.label
            );
            write!(out, "{head:>18} |").unwrap();
            let mut k = 0usize;
            for ci in 0..self.cols.len() {
                if k < r.entries.len() && r.entries[k].0 == ci {
                    write!(out, " {:>8}", r.entries[k].1).unwrap();
                    k += 1;
                } else {
                    write!(out, " {:>8}", ".").unwrap();
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for KcMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KcMatrix[{} rows ({} alive), {} cols, {} entries]",
            self.rows.len(),
            self.num_alive_rows(),
            self.cols.len(),
            self.num_entries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::Lit;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    /// G = af + bf + ace + bce with a=1 b=2 c=3 e=5 f=6.
    fn paper_g() -> Sop {
        sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]])
    }

    #[test]
    fn label_gen_uses_processor_offsets() {
        let mut g0 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
        let mut g2 = LabelGen::new(2, LabelGen::PAPER_OFFSET);
        let mut g5 = LabelGen::new(5, LabelGen::PAPER_OFFSET);
        assert_eq!(g0.next(), 1);
        assert_eq!(g2.next(), 200_001); // paper: "first kernel in processor 2
        assert_eq!(g5.next(), 500_001); //  will be 200001 … processor 5 … 500001"
        assert_eq!(g2.next(), 200_002);
    }

    #[test]
    fn build_matrix_for_paper_g() {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let rows = m.add_node_kernels(
            9, // node id for G
            &paper_g(),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        // 4 co-kernels: a, b, ce, f — kernel cubes {f, ce} and {a, b}.
        assert_eq!(rows.len(), 4);
        assert_eq!(m.cols().len(), 4);
        // Every entry covers a real cube of G with correct weight.
        for r in m.rows() {
            for &(c, id) in &r.entries {
                let covered = r.cokernel.product(&m.cols()[c].cube).unwrap();
                assert!(paper_g().contains_cube(&covered));
                assert_eq!(reg.weight(id), covered.len() as u32);
            }
        }
        // The cube "af" is covered from two positions (row a / col f and
        // row f / col a) and must be interned once.
        let af = cube(&[1, 6]);
        assert!(reg.lookup(9, &af).is_some());
        let af_id = reg.lookup(9, &af).unwrap();
        let positions: usize = m
            .rows()
            .iter()
            .flat_map(|r| r.entries.iter())
            .filter(|(_, id)| *id == af_id)
            .count();
        assert_eq!(positions, 2);
    }

    #[test]
    fn column_rows_track_membership() {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            9,
            &paper_g(),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        for (ci, col) in m.cols().iter().enumerate() {
            for &r in &col.rows {
                assert!(m.rows()[r].entry(ci).is_some());
            }
        }
        // col "a" has the rows with co-kernels f and ce.
        let ca = m.find_col(&cube(&[1])).unwrap();
        let coks: Vec<&Cube> = m.cols()[ca]
            .rows
            .iter()
            .map(|&r| &m.rows()[r].cokernel)
            .collect();
        assert!(coks.contains(&&cube(&[6])));
        assert!(coks.contains(&&cube(&[3, 5])));
    }

    #[test]
    fn remove_node_rows_tombstones() {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        m.add_node_kernels(
            9,
            &paper_g(),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        m.add_node_kernels(
            8,
            &sop(&[&[1, 4, 5], &[3, 4, 5]]),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        let before = m.num_alive_rows();
        m.remove_node_rows(9);
        assert_eq!(m.num_alive_rows(), before - 4);
        for col in m.cols() {
            for &r in &col.rows {
                assert!(m.rows()[r].alive);
            }
        }
    }

    #[test]
    fn add_row_with_entries_merges_columns() {
        let mut m = KcMatrix::new();
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let c_a = m.col_for_cube(&cube(&[1]), &mut cl);
        let r = m.add_row_with_entries(
            42,
            7,
            cube(&[6]),
            [(cube(&[1]), 0), (cube(&[2]), 1)],
            &mut cl,
        );
        assert_eq!(m.rows()[r].label, 42);
        assert_eq!(m.rows()[r].entries.len(), 2);
        // Column "a" was reused, "b" created.
        assert_eq!(m.find_col(&cube(&[1])), Some(c_a));
        assert!(m.find_col(&cube(&[2])).is_some());
    }

    #[test]
    fn intersect_rows_merges_sorted() {
        assert_eq!(
            KcMatrix::intersect_rows(&[1, 3, 5, 9], &[2, 3, 9, 10]),
            vec![3, 9]
        );
        assert!(KcMatrix::intersect_rows(&[], &[1]).is_empty());
    }

    #[test]
    fn render_mentions_labels_and_cokernels() {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::PAPER_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::PAPER_OFFSET);
        m.add_node_kernels(
            9,
            &paper_g(),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
        // Variable indices are 1-based in these fixtures (a=1 … g=7).
        let names = ["?", "a", "b", "c", "d", "e", "f", "g", "H", "G"];
        let txt = m.render(&|i| names[i as usize].to_string());
        assert!(txt.contains("G"));
        assert!(txt.contains("ce"));
    }

    #[test]
    #[should_panic(expected = "label block exhausted")]
    fn label_block_overflow_panics() {
        let mut g = LabelGen::new(0, 2);
        g.next();
        g.next();
        g.next();
    }
}
