//! Parallel rectangle search: a chunked work queue over leftmost
//! columns, drained by workers sharing a pruning bound.
//!
//! Two executors drive the same worker body ([`run_worker`]):
//!
//! * [`search`] — the original per-call executor: scoped threads spawned
//!   for every pass, fresh scratch per worker. Kept as the differential
//!   oracle for the pooled executor.
//! * [`crate::pool::SearchPool`] — the persistent executor: long-lived
//!   parked workers with owned scratch reused across passes, plus
//!   cross-pass per-column value ceilings. Zero spawns per pass once
//!   warm.
//!
//! ## Determinism rules
//!
//! The classic sequential engine keeps the *first* maximum-value
//! rectangle in enumeration order — a rule racing workers cannot
//! reproduce. The parallel engine is instead deterministic by
//! construction, for **any** thread count (including 1):
//!
//! 1. **Canonical winner.** Workers keep their local top-K under the
//!    total (value, cols, rows) order ([`TopK`]) and the merge applies
//!    the same order, so the reduction is independent of which worker
//!    finishes first.
//! 2. **Strict pruning.** A subtree is pruned only when its admissible
//!    bound is *strictly below* the shared bound (`ub < bound`, not
//!    `ub <= bound`). A worker publishes its local K-th best value —
//!    never exceeding the global K-th best value (its local top-K are K
//!    real rectangles at least that good) — so every member of the
//!    global canonical top-K is expanded, evaluated, and retained in
//!    some worker's local list no matter when other workers publish
//!    improvements; late bound arrival can only cost wasted work, never
//!    change the merged winners. With `topk = 1` this degenerates to
//!    exactly the original best-only rules.
//! 3. **Truncation fallback.** When the shared visit budget denies an
//!    expansion, the set of visited column sets depends on thread
//!    interleaving — so partial worker bests are discarded and the
//!    search returns the greedy/seed result. The greedy sweep itself is
//!    striped across the workers (it dominates the prologue once
//!    exploration is well-pruned), but its task set is fixed, every task
//!    always completes (greedy work is not budget-charged), and the
//!    merge is canonical — so the fallback is deterministic too.
//!
//! The same three rules extend to the pool's cross-pass ceilings: a
//! leftmost-column task is skipped only when a *sound upper bound* on
//! its whole subtree (recorded on a previous pass over unchanged
//! columns) is strictly below the current shared bound, so no
//! maximum-value rectangle — and no canonical tie — is ever lost. See
//! [`crate::pool`] for the ceiling invariants.
//!
//! In the multi-worker case the shared bound is an `AtomicI64` updated
//! with `fetch_max`: any worker's improvement immediately tightens every
//! other worker's admissible prune. All atomics use relaxed ordering —
//! they carry monotone scalars, never publish memory. Single-worker
//! passes from the pool substitute plain [`Cell`]s (the [`PassSync`]
//! abstraction): same algorithm, same enumeration order, no atomic
//! traffic.

use crate::matrix::{ColIdx, KcMatrix, RowIdx};
use crate::rectangle::{
    approx_value, approx_value_rows, evaluate_with, greedy_row, greedy_row_tiled, stripe_admits,
    CostModel, GreedyBufs, Rectangle, SearchConfig, SearchStats, TopK,
};
use crate::registry::CubeId;
use crate::rowset::RowSet;
use crate::tiles::{TilePanels, TiledSupport};
use pf_sop::fx::FxHashSet;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::thread;

/// How many chunks each worker should expect to claim, on average.
/// Smaller chunks balance better (leftmost-column subtrees are wildly
/// uneven); larger chunks reduce queue contention. Four per worker is a
/// comfortable middle for matrices with hundreds of columns.
const CHUNKS_PER_WORKER: usize = 4;

/// The two task queues of one pass: greedy row chunks, then explore
/// column chunks. Claim counters are atomic but cold (one `fetch_add`
/// per chunk, not per expansion).
pub(crate) struct Queue<'a> {
    /// Leftmost-column explore tasks (admissible, non-empty support).
    tasks: &'a [ColIdx],
    /// Explore tasks claimed per `fetch_add`.
    chunk: usize,
    /// Next unclaimed explore task.
    next: AtomicUsize,
    /// Greedy rows claimed per `fetch_add` (0 rows when greedy is off).
    greedy_rows: usize,
    /// Rows claimed per greedy `fetch_add`.
    greedy_chunk: usize,
    /// Next unclaimed greedy row.
    greedy_next: AtomicUsize,
}

impl<'a> Queue<'a> {
    pub(crate) fn new(tasks: &'a [ColIdx], nthreads: usize, greedy_rows: usize) -> Self {
        Queue {
            tasks,
            chunk: (tasks.len() / (nthreads * CHUNKS_PER_WORKER)).max(1),
            next: AtomicUsize::new(0),
            greedy_rows,
            greedy_chunk: (greedy_rows / (nthreads * CHUNKS_PER_WORKER)).max(1),
            greedy_next: AtomicUsize::new(0),
        }
    }
}

/// Per-pass synchronisation — the pruning bound, the budget ticket
/// counter and the truncation flag — abstracted so a single-worker
/// pooled pass can run on plain cells instead of atomics. The per-node
/// `fetch_add`/`load` traffic is exactly the 1-thread overhead the pool
/// exists to eliminate; the algorithm is identical either way.
pub(crate) trait PassSync {
    /// Current lower bound on the best value found anywhere.
    fn bound(&self) -> i64;
    /// Monotone max-update of the bound; whether it actually rose.
    fn raise_bound(&self, v: i64) -> bool;
    /// Claims one expansion ticket; returns the pre-increment count.
    fn ticket(&self) -> u64;
    /// Whether some worker had an expansion denied by the budget.
    fn is_truncated(&self) -> bool;
    /// Records a denied expansion.
    fn set_truncated(&self);
}

/// Multi-worker [`PassSync`] over shared atomics.
pub(crate) struct AtomicSync {
    bound: AtomicI64,
    visited: AtomicU64,
    truncated: AtomicBool,
}

impl AtomicSync {
    pub(crate) fn new(init_bound: i64) -> Self {
        AtomicSync {
            bound: AtomicI64::new(init_bound),
            visited: AtomicU64::new(0),
            truncated: AtomicBool::new(false),
        }
    }
}

impl PassSync for AtomicSync {
    #[inline]
    fn bound(&self) -> i64 {
        self.bound.load(Relaxed)
    }
    #[inline]
    fn raise_bound(&self, v: i64) -> bool {
        self.bound.fetch_max(v, Relaxed) < v
    }
    #[inline]
    fn ticket(&self) -> u64 {
        self.visited.fetch_add(1, Relaxed)
    }
    #[inline]
    fn is_truncated(&self) -> bool {
        self.truncated.load(Relaxed)
    }
    #[inline]
    fn set_truncated(&self) {
        self.truncated.store(true, Relaxed);
    }
}

/// Single-worker [`PassSync`] over plain cells — no atomic traffic.
/// Sound only when exactly one worker runs the pass (the pool's
/// 1-thread fast path); results equal the atomic run because the
/// enumeration order and pruning rules are identical.
pub(crate) struct SoloSync {
    bound: Cell<i64>,
    visited: Cell<u64>,
    truncated: Cell<bool>,
}

impl SoloSync {
    pub(crate) fn new(init_bound: i64) -> Self {
        SoloSync {
            bound: Cell::new(init_bound),
            visited: Cell::new(0),
            truncated: Cell::new(false),
        }
    }
}

impl PassSync for SoloSync {
    #[inline]
    fn bound(&self) -> i64 {
        self.bound.get()
    }
    #[inline]
    fn raise_bound(&self, v: i64) -> bool {
        if v > self.bound.get() {
            self.bound.set(v);
            true
        } else {
            false
        }
    }
    #[inline]
    fn ticket(&self) -> u64 {
        let t = self.visited.get();
        self.visited.set(t + 1);
        t
    }
    #[inline]
    fn is_truncated(&self) -> bool {
        self.truncated.get()
    }
    #[inline]
    fn set_truncated(&self) {
        self.truncated.set(true);
    }
}

/// One worker's owned buffers: greedy evaluation buffers, the
/// branch-and-bound column stack, per-depth row-set and candidate
/// pools, and the exact-evaluation scratch. Everything here is
/// capacity-retaining, which is the point — a pool worker reuses its
/// scratch across every pass of an extraction run instead of
/// reallocating per call.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    greedy: GreedyBufs,
    cols: Vec<ColIdx>,
    depths: Vec<RowSet>,
    /// Per-depth tiled-support pool — the tiled kernel's twin of
    /// `depths`, retained across passes just the same.
    tdepths: Vec<TiledSupport>,
    cand: Vec<RowSet>,
    rows_buf: Vec<RowIdx>,
    seen: FxHashSet<CubeId>,
    root: RowSet,
    /// Tiled twin of `root`.
    troot: TiledSupport,
}

/// Read-only view of the surviving per-column ceilings for one pass
/// (see [`crate::pool`]). `None` entries (invalid) force exploration.
pub(crate) struct CeilingsView<'a> {
    pub(crate) vals: &'a [i64],
    pub(crate) valid: &'a [bool],
}

impl CeilingsView<'_> {
    #[inline]
    fn get(&self, c: ColIdx) -> Option<i64> {
        if self.valid.get(c).copied().unwrap_or(false) {
            Some(self.vals[c])
        } else {
            None
        }
    }
}

/// One worker's contribution, merged canonically by [`merge_results`].
pub(crate) struct WorkerResult {
    /// Canonical top-K over this worker's greedy rows (always complete —
    /// rule 3's truncation fallback).
    greedy: TopK,
    /// Canonical top-K over everything this worker found: greedy finds
    /// plus explored column sets.
    found: TopK,
    /// Expansions completed (reported in [`SearchStats::visited`]).
    expansions: u64,
    /// Subtrees this worker cut with the shared bound (including whole
    /// tasks skipped via a surviving ceiling).
    pruned: u64,
    /// Times this worker actually raised the shared bound (greedy
    /// publishes included).
    bound_updates: u64,
    /// Fresh (column, ceiling) pairs for tasks this worker explored to
    /// completion — empty when ceilings are off.
    ceil_out: Vec<(ColIdx, i64)>,
}

/// The admissible leftmost-column task list for one pass.
pub(crate) fn admissible_tasks(
    m: &KcMatrix,
    cfg: &SearchConfig,
    col_sets: &[RowSet],
) -> Vec<ColIdx> {
    (0..m.cols().len())
        .filter(|&c| stripe_admits(cfg, c) && !col_sets[c].is_empty())
        .collect()
}

/// Runs the spawn-per-call parallel search. `init_best` is the
/// re-validated previous-pass seed (not the greedy result — the greedy
/// sweep runs *inside* the parallel region, striped across workers); it
/// starts the shared bound and joins the canonical merge and truncation
/// fallback.
pub(crate) fn search(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[RowSet],
    init_best: Option<Rectangle>,
    panel: Option<&TilePanels>,
) -> (Vec<Rectangle>, SearchStats) {
    let tasks = admissible_tasks(m, cfg, col_sets);
    if tasks.is_empty() {
        // No admissible leftmost column ⇒ the greedy sweep (whose rows
        // need an admissible leftmost column too) finds nothing either.
        return (init_best.into_iter().collect(), SearchStats::default());
    }
    let nthreads = cfg.par_threads.min(tasks.len()).max(1);
    let greedy_rows = if cfg.greedy_seed { m.rows().len() } else { 0 };
    let queue = Queue::new(&tasks, nthreads, greedy_rows);
    let sync = AtomicSync::new(init_bound(cfg, init_best.as_ref()));

    // One worker runs inline on the calling thread: `par_threads = 1`
    // then costs no spawn at all, and N threads cost N − 1 spawns.
    let results: Vec<WorkerResult> = thread::scope(|s| {
        let handles: Vec<_> = (1..nthreads)
            .map(|_| {
                s.spawn(|| {
                    let mut ws = WorkerScratch::default();
                    run_worker(
                        m,
                        model,
                        cfg,
                        row_full_value,
                        col_sets,
                        &queue,
                        &sync,
                        &mut ws,
                        None,
                        panel,
                    )
                })
            })
            .collect();
        let mut ws = WorkerScratch::default();
        let mut results = vec![run_worker(
            m,
            model,
            cfg,
            row_full_value,
            col_sets,
            &queue,
            &sync,
            &mut ws,
            None,
            panel,
        )];
        results.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked")),
        );
        results
    });

    let (best, stats, _) = merge_results(results, init_best, sync.is_truncated(), cfg.topk);
    (best, stats)
}

/// The sound initial shared bound. The re-validated seed's value lower-
/// bounds the best rectangle, but with `topk > 1` only the K-th best
/// value may prune — one known rectangle says nothing about it, so the
/// bound starts at 0.
pub(crate) fn init_bound(cfg: &SearchConfig, seed: Option<&Rectangle>) -> i64 {
    if cfg.topk <= 1 {
        seed.map_or(0, |b| b.value)
    } else {
        0
    }
}

/// Canonical reduction over per-worker results: rule-3 greedy fallback
/// on truncation, otherwise the (value, cols, rows) top-K merge over
/// everything the workers found. Also concatenates the workers' fresh
/// ceilings (meaningful only to the pooled executor, and only when the
/// pass completed).
pub(crate) fn merge_results(
    results: Vec<WorkerResult>,
    init_best: Option<Rectangle>,
    truncated: bool,
    topk: usize,
) -> (Vec<Rectangle>, SearchStats, Vec<(ColIdx, i64)>) {
    let stats = SearchStats {
        visited: results.iter().map(|r| r.expansions).sum(),
        budget_exhausted: truncated,
        pruned: results.iter().map(|r| r.pruned).sum(),
        bound_updates: results.iter().map(|r| r.bound_updates).sum(),
    };
    let mut acc = TopK::new(topk);
    if let Some(b) = init_best {
        acc.insert(b);
    }
    if truncated {
        // Rule 3: the explored set is interleaving-dependent; discard it
        // and merge only the (always complete) greedy lists. The
        // recorded ceilings are incomplete too — the caller must not
        // commit them (the pool invalidates everything on truncation).
        for r in results {
            acc.merge(r.greedy);
        }
        return (acc.into_vec(), stats, Vec::new());
    }
    let mut ceil_out = Vec::new();
    for r in results {
        acc.merge(r.found);
        ceil_out.extend(r.ceil_out);
    }
    (acc.into_vec(), stats, ceil_out)
}

/// One worker's pass: greedy phase over its row chunks, then
/// branch-and-bound over its claimed leftmost-column tasks. Shared by
/// the spawn executor (fresh scratch, atomics, no ceilings) and the
/// pooled executor (persistent scratch, cells at one thread, ceilings).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker<S: PassSync>(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[RowSet],
    queue: &Queue<'_>,
    sync: &S,
    ws: &mut WorkerScratch,
    ceil: Option<&CeilingsView<'_>>,
    panel: Option<&TilePanels>,
) -> WorkerResult {
    // Phase 1: greedy rows. Never aborted — rule 3 needs the complete
    // greedy result even when another worker trips the budget. The local
    // K-th best (the list threshold) is published to the shared bound
    // immediately so phase-2 workers prune against it as early as
    // possible; with `topk = 1` that is exactly the old per-find value
    // publish. Offers go by reference — both lists clone only what they
    // actually keep, so a rejected row costs no allocation (the pooled
    // 1-thread overhead budget lives and dies here).
    let mut greedy = TopK::new(cfg.topk);
    let mut found = TopK::new(cfg.topk);
    let mut bound_updates = 0u64;
    loop {
        let start = queue.greedy_next.fetch_add(queue.greedy_chunk, Relaxed);
        if start >= queue.greedy_rows {
            break;
        }
        let end = (start + queue.greedy_chunk).min(queue.greedy_rows);
        for r in start..end {
            // Tiled rows gate their exact evaluation on `found` — in
            // this phase `found` and `greedy` hold identical contents,
            // so the gate is conservative for both lists and the
            // rule-3 merge stays exact (a gated-out row is strictly
            // below the list threshold it would have been offered to).
            let rect = match panel {
                Some(p) => {
                    greedy_row_tiled(m, model, cfg, p, row_full_value, r, &mut ws.greedy, &found)
                }
                None => greedy_row(m, model, cfg, col_sets, r, &mut ws.greedy),
            };
            if let Some(rect) = rect {
                greedy.insert_ref(&rect);
                if found.insert(rect) && sync.raise_bound(found.threshold()) {
                    bound_updates += 1;
                }
            }
        }
    }

    // Phase 2: branch-and-bound explore tasks.
    let mut root = std::mem::take(&mut ws.root);
    let mut troot = std::mem::take(&mut ws.troot);
    let mut ceil_out: Vec<(ColIdx, i64)> = Vec::new();
    let mut search = ParSearch {
        m,
        model,
        cfg,
        row_full_value,
        col_sets,
        panel,
        sync,
        stopped: false,
        expansions: 0,
        pruned: 0,
        bound_updates: 0,
        task_ceil: 0,
        found: &mut found,
        cols: &mut ws.cols,
        scratch: &mut ws.depths,
        tscratch: &mut ws.tdepths,
        cand: &mut ws.cand,
        rows_buf: &mut ws.rows_buf,
        seen: &mut ws.seen,
    };
    'queue: loop {
        let start = queue.next.fetch_add(queue.chunk, Relaxed);
        if start >= queue.tasks.len() {
            break;
        }
        let end = (start + queue.chunk).min(queue.tasks.len());
        for &c0 in &queue.tasks[start..end] {
            if search.stopped || sync.is_truncated() {
                break 'queue;
            }
            if let Some(cv) = ceil.and_then(|view| view.get(c0)) {
                // Cross-pass prune: `cv` upper-bounds every rectangle
                // whose leftmost column is `c0` (the subtree is
                // unchanged since it was recorded). Strictly below the
                // bound — or unable to go positive at all — means the
                // subtree cannot hold the canonical winner nor tie it.
                // The surviving ceiling stays valid for the next pass.
                if cv <= 0 || cv < sync.bound() {
                    search.pruned += 1;
                    continue;
                }
            }
            search.task_ceil = 0;
            search.cols.clear();
            search.cols.push(c0);
            if let Some(p) = panel {
                troot.load_col(p, c0);
                troot = search.explore_tiled(0, troot);
            } else {
                root.copy_from(&col_sets[c0]);
                root = search.explore(0, root);
            }
            if ceil.is_some() && !search.stopped {
                // Task completed: its running ceiling is a sound upper
                // bound on the whole subtree, fresh for the next pass.
                ceil_out.push((c0, search.task_ceil));
            }
        }
    }
    ws.root = root;
    ws.troot = troot;
    let expansions = search.expansions;
    let pruned = search.pruned;
    let explore_updates = search.bound_updates;
    WorkerResult {
        greedy,
        found,
        expansions,
        pruned,
        bound_updates: bound_updates + explore_updates,
        ceil_out,
    }
}

struct ParSearch<'a, S: PassSync> {
    m: &'a KcMatrix,
    model: &'a CostModel<'a>,
    cfg: &'a SearchConfig,
    row_full_value: &'a [i64],
    col_sets: &'a [RowSet],
    /// Column-major tile mirror; `Some` selects the tiled kernel.
    panel: Option<&'a TilePanels>,
    /// Shared bound / budget tickets / truncation flag for this pass.
    sync: &'a S,
    /// Local mirror of the truncation flag: once set, unwind without
    /// exploring.
    stopped: bool,
    /// Expansions *completed* by this worker (reported in stats).
    expansions: u64,
    /// Subtrees cut by the shared-bound prune.
    pruned: u64,
    /// Times this worker's evaluations raised the shared bound.
    bound_updates: u64,
    /// Running upper bound on the best value anywhere in the current
    /// leftmost-column task's subtree: the max over every node's
    /// duplicate-blind `approx` (≥ the exact value of any rectangle on
    /// that column set) and every pruned child's admissible `ub`
    /// (≥ anything in the pruned branch). Sound regardless of
    /// bound-arrival timing — that is what makes it reusable as a
    /// cross-pass ceiling.
    task_ceil: i64,
    /// Local canonical top-K (shared with the greedy phase); merged
    /// across workers by the caller.
    found: &'a mut TopK,
    cols: &'a mut Vec<ColIdx>,
    scratch: &'a mut Vec<RowSet>,
    /// Per-depth tiled-support pool (the tiled kernel's `scratch`).
    tscratch: &'a mut Vec<TiledSupport>,
    /// Per-depth candidate-column bitsets (universe = column count).
    cand: &'a mut Vec<RowSet>,
    rows_buf: &'a mut Vec<RowIdx>,
    seen: &'a mut FxHashSet<CubeId>,
}

impl<S: PassSync> ParSearch<'_, S> {
    fn explore(&mut self, depth: usize, rows: RowSet) -> RowSet {
        if self.sync.is_truncated() {
            self.stopped = true;
            return rows;
        }
        let ticket = self.sync.ticket();
        if ticket >= self.cfg.budget {
            self.sync.set_truncated();
            self.stopped = true;
            return rows;
        }
        self.expansions += 1;

        if self.cols.len() >= self.cfg.min_cols {
            // Rule 2's gate counterpart: evaluate whenever the
            // duplicate-blind upper bound could *tie* the shared bound
            // (`>=`, not `>`), so every maximum-value rectangle reaches
            // the canonical merge regardless of bound timing.
            let approx = approx_value(self.m, self.model, self.cols, &rows);
            // `approx` upper-bounds every rectangle on this exact
            // column set, so it feeds the task ceiling.
            self.task_ceil = self.task_ceil.max(approx);
            if approx > 0 && approx >= self.sync.bound() {
                self.rows_buf.clear();
                rows.collect_into(self.rows_buf);
                self.seen.clear();
                if let Some(rect) =
                    evaluate_with(self.m, self.model, self.cols, self.rows_buf, self.seen)
                {
                    // Publish the local K-th best, never the raw value:
                    // an arbitrary rectangle's value can exceed the
                    // global K-th best and would over-prune. The local
                    // threshold is witnessed by K real rectangles, so it
                    // never does.
                    if self.found.insert(rect) && self.sync.raise_bound(self.found.threshold()) {
                        self.bound_updates += 1;
                    }
                }
            }
        }

        // Candidate extensions from the support rows' entries — see the
        // sequential engine; the candidate set is scheduling-independent
        // so determinism is unaffected.
        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.scratch.len() <= depth {
            self.scratch.resize_with(depth + 1, RowSet::new);
            self.cand.resize_with(depth + 1, RowSet::new);
        }
        let mut cand = std::mem::take(&mut self.cand[depth]);
        cand.reset(self.m.cols().len());
        for r in &rows {
            for &(c, _) in &self.m.rows()[r].entries {
                if c >= from {
                    cand.insert(c);
                }
            }
        }
        for c in &cand {
            let mut shared = std::mem::take(&mut self.scratch[depth]);
            shared.assign_and(&rows, &self.col_sets[c]);
            let ub: i64 = shared.iter().map(|r| self.row_full_value[r].max(0)).sum();
            // Rule 2: strict prune — subtrees that could still tie the
            // bound are kept alive. The admissible `ub` covers the
            // pruned branch in the task ceiling.
            if ub <= 0 || ub < self.sync.bound() {
                self.pruned += 1;
                self.task_ceil = self.task_ceil.max(ub);
                self.scratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore(depth + 1, shared);
            self.scratch[depth] = buf;
            self.cols.pop();
            if self.stopped {
                // Terminal unwind — skip restoring the candidate pool.
                return rows;
            }
        }
        self.cand[depth] = cand;
        rows
    }

    /// [`ParSearch::explore`] over the tiled kernel — the worker-side
    /// twin of the sequential `explore_tiled`: same budget tickets,
    /// same `task_ceil` accounting, same strict prune and admission
    /// gates. Only the support representation and the fused
    /// intersect+bound pass differ, and both produce the exact scalar
    /// values, so results stay byte-identical.
    fn explore_tiled(&mut self, depth: usize, rows: TiledSupport) -> TiledSupport {
        if self.sync.is_truncated() {
            self.stopped = true;
            return rows;
        }
        let ticket = self.sync.ticket();
        if ticket >= self.cfg.budget {
            self.sync.set_truncated();
            self.stopped = true;
            return rows;
        }
        self.expansions += 1;

        if self.cols.len() >= self.cfg.min_cols {
            let approx = approx_value_rows(self.m, self.model, self.cols, rows.iter());
            self.task_ceil = self.task_ceil.max(approx);
            if approx > 0 && approx >= self.sync.bound() {
                self.rows_buf.clear();
                rows.collect_into(self.rows_buf);
                self.seen.clear();
                if let Some(rect) =
                    evaluate_with(self.m, self.model, self.cols, self.rows_buf, self.seen)
                {
                    if self.found.insert(rect) && self.sync.raise_bound(self.found.threshold()) {
                        self.bound_updates += 1;
                    }
                }
            }
        }

        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.tscratch.len() <= depth {
            self.tscratch.resize_with(depth + 1, TiledSupport::default);
        }
        if self.cand.len() <= depth {
            self.cand.resize_with(depth + 1, RowSet::new);
        }
        let mut cand = std::mem::take(&mut self.cand[depth]);
        cand.reset(self.m.cols().len());
        for r in &rows {
            for &(c, _) in &self.m.rows()[r].entries {
                if c >= from {
                    cand.insert(c);
                }
            }
        }
        let panel = self.panel.expect("tiled explore requires a panel");
        for c in &cand {
            let mut shared = std::mem::take(&mut self.tscratch[depth]);
            let ub = shared.and_ub_from(&rows, panel, c, self.row_full_value);
            if ub <= 0 || ub < self.sync.bound() {
                self.pruned += 1;
                self.task_ceil = self.task_ceil.max(ub);
                self.tscratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore_tiled(depth + 1, shared);
            self.tscratch[depth] = buf;
            self.cols.pop();
            if self.stopped {
                // Terminal unwind — skip restoring the candidate pool.
                return rows;
            }
        }
        self.cand[depth] = cand;
        rows
    }
}
