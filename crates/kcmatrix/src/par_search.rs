//! Parallel rectangle search: a chunked work queue over leftmost
//! columns, drained by scoped worker threads sharing an atomic pruning
//! bound.
//!
//! ## Determinism rules
//!
//! The classic sequential engine keeps the *first* maximum-value
//! rectangle in enumeration order — a rule racing workers cannot
//! reproduce. The parallel engine is instead deterministic by
//! construction, for **any** thread count (including 1):
//!
//! 1. **Canonical winner.** Workers keep their local best under the
//!    total (value, cols, rows) order ([`canonical_better`]) and the
//!    merge applies the same order, so the reduction is independent of
//!    which worker finishes first.
//! 2. **Strict pruning.** A subtree is pruned only when its admissible
//!    bound is *strictly below* the shared bound (`ub < bound`, not
//!    `ub <= bound`). The shared bound never exceeds the true maximum
//!    value, so every maximum-value rectangle is expanded and evaluated
//!    no matter when other workers publish improvements; late bound
//!    arrival can only cost wasted work, never change the winner.
//! 3. **Truncation fallback.** When the shared visit budget denies an
//!    expansion, the set of visited column sets depends on thread
//!    interleaving — so partial worker bests are discarded and the
//!    search returns the greedy/seed result. The greedy sweep itself is
//!    striped across the workers (it dominates the prologue once
//!    exploration is well-pruned), but its task set is fixed, every task
//!    always completes (greedy work is not budget-charged), and the
//!    merge is canonical — so the fallback is deterministic too.
//!
//! The shared bound is an `AtomicI64` updated with `fetch_max`: any
//! worker's improvement immediately tightens every other worker's
//! admissible prune. All atomics use relaxed ordering — they carry
//! monotone scalars, never publish memory.

use crate::matrix::{ColIdx, KcMatrix, RowIdx};
use crate::rectangle::{
    approx_value, canonical_better, evaluate_with, greedy_row, stripe_admits, CostModel,
    GreedyBufs, Rectangle, SearchConfig, SearchStats,
};
use crate::registry::CubeId;
use crate::rowset::RowSet;
use pf_sop::fx::FxHashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::thread;

/// How many chunks each worker should expect to claim, on average.
/// Smaller chunks balance better (leftmost-column subtrees are wildly
/// uneven); larger chunks reduce queue contention. Four per worker is a
/// comfortable middle for matrices with hundreds of columns.
const CHUNKS_PER_WORKER: usize = 4;

/// Shared worker coordination state: the two task queues (greedy row
/// chunks, then explore column chunks) and the pruning/budget atomics.
struct Shared<'a> {
    /// Leftmost-column explore tasks (admissible, non-empty support).
    tasks: &'a [ColIdx],
    /// Explore tasks claimed per `fetch_add`.
    chunk: usize,
    /// Next unclaimed explore task.
    next: AtomicUsize,
    /// Greedy rows claimed per `fetch_add` (0 rows when greedy is off).
    greedy_rows: usize,
    /// Rows claimed per greedy `fetch_add`.
    greedy_chunk: usize,
    /// Next unclaimed greedy row.
    greedy_next: AtomicUsize,
    /// Lower bound on the best value found anywhere (`fetch_max`).
    bound: AtomicI64,
    /// Expansion tickets charged against the budget.
    visited: AtomicU64,
    /// Set by whichever worker first has an expansion denied.
    truncated: AtomicBool,
}

/// One worker's contribution, merged canonically by [`search`].
struct WorkerResult {
    /// Canonical best over this worker's greedy rows (always complete).
    greedy_best: Option<Rectangle>,
    /// Canonical best over this worker's explored column sets.
    explore_best: Option<Rectangle>,
    /// Expansions completed (reported in [`SearchStats::visited`]).
    expansions: u64,
    /// Subtrees this worker cut with the shared bound.
    pruned: u64,
    /// Times this worker actually raised the shared bound (greedy
    /// publishes included).
    bound_updates: u64,
}

/// Runs the parallel search. `init_best` is the re-validated
/// previous-pass seed (not the greedy result — the greedy sweep runs
/// *inside* the parallel region, striped across workers); it starts the
/// shared bound and joins the canonical merge and truncation fallback.
pub(crate) fn search(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[RowSet],
    init_best: Option<Rectangle>,
) -> (Option<Rectangle>, SearchStats) {
    let tasks: Vec<ColIdx> = (0..m.cols().len())
        .filter(|&c| stripe_admits(cfg, c) && !col_sets[c].is_empty())
        .collect();
    if tasks.is_empty() {
        // No admissible leftmost column ⇒ the greedy sweep (whose rows
        // need an admissible leftmost column too) finds nothing either.
        return (init_best, SearchStats::default());
    }
    let nthreads = cfg.par_threads.min(tasks.len()).max(1);
    let greedy_rows = if cfg.greedy_seed { m.rows().len() } else { 0 };
    let shared = Shared {
        tasks: &tasks,
        chunk: (tasks.len() / (nthreads * CHUNKS_PER_WORKER)).max(1),
        next: AtomicUsize::new(0),
        greedy_rows,
        greedy_chunk: (greedy_rows / (nthreads * CHUNKS_PER_WORKER)).max(1),
        greedy_next: AtomicUsize::new(0),
        bound: AtomicI64::new(init_best.as_ref().map_or(0, |b| b.value)),
        visited: AtomicU64::new(0),
        truncated: AtomicBool::new(false),
    };

    // One worker runs inline on the calling thread: `par_threads = 1`
    // then costs no spawn at all, and N threads cost N − 1 spawns.
    let results: Vec<WorkerResult> = thread::scope(|s| {
        let handles: Vec<_> = (1..nthreads)
            .map(|_| s.spawn(|| run_worker(m, model, cfg, row_full_value, col_sets, &shared)))
            .collect();
        let mut results = vec![run_worker(m, model, cfg, row_full_value, col_sets, &shared)];
        results.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked")),
        );
        results
    });

    // Rule 3: greedy tasks all completed, so this merge is deterministic
    // even when the budget truncated exploration.
    let mut greedy_best = init_best;
    for r in &results {
        if let Some(c) = &r.greedy_best {
            if greedy_best.as_ref().is_none_or(|b| canonical_better(c, b)) {
                greedy_best = Some(c.clone());
            }
        }
    }
    let visited = results.iter().map(|r| r.expansions).sum();
    let stats = SearchStats {
        visited,
        budget_exhausted: shared.truncated.load(Relaxed),
        pruned: results.iter().map(|r| r.pruned).sum(),
        bound_updates: results.iter().map(|r| r.bound_updates).sum(),
    };
    if stats.budget_exhausted {
        // The explored set is interleaving-dependent; discard it.
        return (greedy_best, stats);
    }
    let mut best = greedy_best;
    for r in results {
        if let Some(c) = r.explore_best {
            if best.as_ref().is_none_or(|b| canonical_better(&c, b)) {
                best = Some(c);
            }
        }
    }
    (best, stats)
}

fn run_worker(
    m: &KcMatrix,
    model: &CostModel<'_>,
    cfg: &SearchConfig,
    row_full_value: &[i64],
    col_sets: &[RowSet],
    shared: &Shared<'_>,
) -> WorkerResult {
    // Phase 1: greedy rows. Never aborted — rule 3 needs the complete
    // greedy result even when another worker trips the budget. Each find
    // is published to the shared bound immediately so phase-2 workers
    // prune against it as early as possible.
    let mut greedy_best: Option<Rectangle> = None;
    let mut bound_updates = 0u64;
    let mut bufs = GreedyBufs::default();
    loop {
        let start = shared.greedy_next.fetch_add(shared.greedy_chunk, Relaxed);
        if start >= shared.greedy_rows {
            break;
        }
        let end = (start + shared.greedy_chunk).min(shared.greedy_rows);
        for r in start..end {
            if let Some(rect) = greedy_row(m, model, cfg, col_sets, r, &mut bufs) {
                if shared.bound.fetch_max(rect.value, Relaxed) < rect.value {
                    bound_updates += 1;
                }
                if greedy_best
                    .as_ref()
                    .is_none_or(|b| canonical_better(&rect, b))
                {
                    greedy_best = Some(rect);
                }
            }
        }
    }

    // Phase 2: branch-and-bound explore tasks.
    let mut search = ParSearch {
        m,
        model,
        cfg,
        row_full_value,
        col_sets,
        bound: &shared.bound,
        shared_visited: &shared.visited,
        truncated: &shared.truncated,
        stopped: false,
        expansions: 0,
        pruned: 0,
        bound_updates: 0,
        best: None,
        cols: Vec::new(),
        scratch: Vec::new(),
        cand: Vec::new(),
        rows_buf: Vec::new(),
        seen: FxHashSet::default(),
    };
    let mut root = RowSet::new();
    'queue: loop {
        let start = shared.next.fetch_add(shared.chunk, Relaxed);
        if start >= shared.tasks.len() {
            break;
        }
        let end = (start + shared.chunk).min(shared.tasks.len());
        for &c0 in &shared.tasks[start..end] {
            if search.stopped || search.truncated.load(Relaxed) {
                break 'queue;
            }
            search.cols.clear();
            search.cols.push(c0);
            root.copy_from(&col_sets[c0]);
            root = search.explore(0, root);
        }
    }
    WorkerResult {
        greedy_best,
        explore_best: search.best,
        expansions: search.expansions,
        pruned: search.pruned,
        bound_updates: bound_updates + search.bound_updates,
    }
}

struct ParSearch<'a> {
    m: &'a KcMatrix,
    model: &'a CostModel<'a>,
    cfg: &'a SearchConfig,
    row_full_value: &'a [i64],
    col_sets: &'a [RowSet],
    /// Shared lower bound on the best value found anywhere.
    bound: &'a AtomicI64,
    /// Shared expansion counter the budget is charged against.
    shared_visited: &'a AtomicU64,
    /// Set by whichever worker first has an expansion denied.
    truncated: &'a AtomicBool,
    /// Local mirror of `truncated`: once set, unwind without exploring.
    stopped: bool,
    /// Expansions *completed* by this worker (reported in stats).
    expansions: u64,
    /// Subtrees cut by the shared-bound prune.
    pruned: u64,
    /// Times this worker's evaluations raised the shared bound.
    bound_updates: u64,
    /// Local canonical best; merged across workers by the caller.
    best: Option<Rectangle>,
    cols: Vec<ColIdx>,
    scratch: Vec<RowSet>,
    /// Per-depth candidate-column bitsets (universe = column count).
    cand: Vec<RowSet>,
    rows_buf: Vec<RowIdx>,
    seen: FxHashSet<CubeId>,
}

impl ParSearch<'_> {
    fn explore(&mut self, depth: usize, rows: RowSet) -> RowSet {
        if self.truncated.load(Relaxed) {
            self.stopped = true;
            return rows;
        }
        let ticket = self.shared_visited.fetch_add(1, Relaxed);
        if ticket >= self.cfg.budget {
            self.truncated.store(true, Relaxed);
            self.stopped = true;
            return rows;
        }
        self.expansions += 1;

        if self.cols.len() >= self.cfg.min_cols {
            // Rule 2's gate counterpart: evaluate whenever the
            // duplicate-blind upper bound could *tie* the shared bound
            // (`>=`, not `>`), so every maximum-value rectangle reaches
            // the canonical merge regardless of bound timing.
            let approx = approx_value(self.m, self.model, &self.cols, &rows);
            if approx > 0 && approx >= self.bound.load(Relaxed) {
                self.rows_buf.clear();
                rows.collect_into(&mut self.rows_buf);
                self.seen.clear();
                if let Some(rect) = evaluate_with(
                    self.m,
                    self.model,
                    &self.cols,
                    &self.rows_buf,
                    &mut self.seen,
                ) {
                    if self.bound.fetch_max(rect.value, Relaxed) < rect.value {
                        self.bound_updates += 1;
                    }
                    if self
                        .best
                        .as_ref()
                        .is_none_or(|b| canonical_better(&rect, b))
                    {
                        self.best = Some(rect);
                    }
                }
            }
        }

        // Candidate extensions from the support rows' entries — see the
        // sequential engine; the candidate set is scheduling-independent
        // so determinism is unaffected.
        let from = self.cols.last().copied().unwrap_or(0) + 1;
        if self.scratch.len() <= depth {
            self.scratch.resize_with(depth + 1, RowSet::new);
            self.cand.resize_with(depth + 1, RowSet::new);
        }
        let mut cand = std::mem::take(&mut self.cand[depth]);
        cand.reset(self.m.cols().len());
        for r in &rows {
            for &(c, _) in &self.m.rows()[r].entries {
                if c >= from {
                    cand.insert(c);
                }
            }
        }
        for c in &cand {
            let mut shared = std::mem::take(&mut self.scratch[depth]);
            shared.assign_and(&rows, &self.col_sets[c]);
            let ub: i64 = shared.iter().map(|r| self.row_full_value[r].max(0)).sum();
            // Rule 2: strict prune — subtrees that could still tie the
            // bound are kept alive.
            if ub <= 0 || ub < self.bound.load(Relaxed) {
                self.pruned += 1;
                self.scratch[depth] = shared;
                continue;
            }
            self.cols.push(c);
            let buf = self.explore(depth + 1, shared);
            self.scratch[depth] = buf;
            self.cols.pop();
            if self.stopped {
                // Terminal unwind — skip restoring the candidate pool.
                return rows;
            }
        }
        self.cand[depth] = cand;
        rows
    }
}
