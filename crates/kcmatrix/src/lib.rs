#![warn(missing_docs)]

//! # pf-kcmatrix — the co-kernel cube matrix and rectangle covering
//!
//! The optimization core of algebraic factorization, after Brayton–Rudell
//! ("Multi-level logic optimization and the rectangular covering
//! problem", ICCAD'87) as used by the paper:
//!
//! * a [`registry::CubeRegistry`] interning every network cube that
//!   appears in the matrix, and a [`registry::CubeStates`] table holding
//!   the shared FREE / COVERED / DIVIDED state of each cube with its
//!   `value` / `trueval` / `owner` attributes (paper Table 5) —
//!   implemented lock-free over one atomic word per cube;
//! * the sparse [`matrix::KcMatrix`] with rows labeled by
//!   (node, co-kernel) and columns by kernel cube, using the paper's
//!   processor-offset labeling scheme (§5.2) so concurrently generated
//!   rows and columns get consistent identities on every processor;
//! * exact best-rectangle search ([`rectangle`]) by branch-and-bound over
//!   prime column sets ordered by leftmost column — the exact ordering
//!   Algorithm R (§3) distributes across processors — with an admissible
//!   pruning bound and a visit budget that falls back to a per-kernel
//!   greedy sweep on pathological matrices. Row supports are dense
//!   [`rowset::RowSet`] bitsets, and `SearchConfig::par_threads` turns
//!   on the deterministic parallel engine ([`par_search`]); the original
//!   sorted-vec search survives as the [`reference`] oracle.
//!   `SearchConfig::tile_width` swaps the hot intersection loop for the
//!   cache-blocked tiled kernel over column-major panels ([`tiles`]) —
//!   byte-identical results, linear streaming.

pub mod conflict;
pub mod cube_matrix;
pub mod digest;
pub mod matrix;
mod par_search;
pub mod pool;
pub mod rectangle;
pub mod reference;
pub mod registry;
pub mod rowset;
pub mod tiles;

pub use conflict::{conflicts, select_nonconflicting, select_prefix_nonconflicting};
pub use cube_matrix::{CommonCube, CubeLitMatrix};
pub use digest::{cube_digest, network_digest, sop_digest, Digest, DigestBuilder};
pub use matrix::{ColIdx, KcCol, KcMatrix, KcRow, LabelGen, RowIdx};
pub use pool::{CeilingSnapshot, CeilingUpdate, SearchPool};
pub use rectangle::{
    best_rectangle, best_rectangle_pooled, best_rectangle_pooled_with, best_rectangle_seeded,
    best_rectangle_with, best_rectangle_with_seed, best_rectangles_pooled,
    best_rectangles_pooled_with, best_rectangles_seeded, best_rectangles_with_seed,
    canonical_top_k, revalidate_rectangle, CostModel, Rectangle, SearchConfig, SearchStats,
};
pub use registry::{CubeId, CubeRegistry, CubeState, CubeStates, ProcId};
pub use rowset::RowSet;
pub use tiles::{TilePanels, TiledSupport};
