//! Column-major tiled mirror of the KC matrix for the cache-blocked
//! rectangle-search kernel.
//!
//! The branch-and-bound inner loop does one thing millions of times:
//! intersect the current support with a candidate column's row-set and
//! sum the admissible per-row bound over the survivors. The scalar
//! [`crate::rowset::RowSet`] path walks *every* word of the universe per
//! candidate. This module restructures the same data for that loop:
//!
//! * **Panels.** Each column's row bitset is mirrored into a
//!   `TilePanels` buffer, column-major (`data[c * stride + w]`), with
//!   `stride` padded up to a multiple of the tile width so every column
//!   is a whole number of fixed-width u64 tiles. One candidate probe
//!   streams one contiguous column — no per-row gathers.
//! * **Live-tile lists.** A support ([`TiledSupport`]) carries the
//!   ascending list of its non-zero tiles next to its words. An
//!   intersection only visits the *parent's* live tiles (a child
//!   support is always a subset), so sparse supports skip almost the
//!   whole universe.
//! * **Fused AND + bound.** [`TiledSupport::and_ub_from`] computes the
//!   child support and its admissible bound in a single pass: 4-wide
//!   unrolled word groups, an OR reduction for the dead-tile early
//!   exit, and a `count`-style bit walk only over surviving words.
//!
//! Words outside a support's live tiles are **stale** — never read,
//! never zeroed. Iteration and intersection are driven exclusively by
//! the live list, which is what makes child derivation O(live tiles)
//! instead of O(universe).
//!
//! # Sync invariants
//!
//! A panel is a *mirror*: it must stay byte-equal to the per-column
//! row-sets it was built from. The holders keep it in sync as follows:
//!
//! 1. The spawn/sequential executors build a fresh panel per search
//!    call ([`TilePanels::build`]) — trivially in sync.
//! 2. The resident [`crate::pool::SearchPool`] keeps one panel across
//!    passes and drives [`TilePanels::sync`] from the same
//!    [`crate::pool::CeilingUpdate`] bookkeeping as the ceilings: the
//!    caller's dirty-column list must cover every column that gained or
//!    lost a row (tombstoned rows' entry columns and appended rows'
//!    columns — exactly the `Engine::apply` contract). Appended columns
//!    are encoded fresh; a width change or a row-universe change that
//!    no longer fits the padded stride triggers a full rebuild.
//! 3. Results are byte-identical to the scalar path by construction:
//!    the candidate enumeration order is unchanged and the fused bound
//!    is an order-independent integer sum, so every prune/admit
//!    decision matches word-for-word.

use crate::matrix::ColIdx;
use crate::rowset::RowSet;

/// Column-major mirror of the per-column row bitsets, padded to whole
/// tiles of `width` u64 words.
#[derive(Clone, Debug, Default)]
pub struct TilePanels {
    /// Words per tile (the `--tile-width` knob; `>= 1`).
    width: usize,
    /// Words per column; a multiple of `width`, covering the row
    /// universe with zero padding above it.
    stride: usize,
    /// Rows the panel was encoded for (`ceil(nrows / 64)` words used).
    nrows: usize,
    /// Columns encoded.
    ncols: usize,
    /// `ncols * stride` words, column-major.
    data: Vec<u64>,
}

impl TilePanels {
    /// Builds a fresh panel mirror of `col_sets` (the per-column row
    /// bitsets over a universe of `nrows` rows).
    pub fn build(nrows: usize, col_sets: &[RowSet], width: usize) -> Self {
        let width = width.max(1);
        let nwords = nrows.div_ceil(64);
        let stride = nwords.div_ceil(width).max(1) * width;
        let mut p = TilePanels {
            width,
            stride,
            nrows,
            ncols: col_sets.len(),
            data: vec![0; col_sets.len() * stride],
        };
        for (c, set) in col_sets.iter().enumerate() {
            p.encode_col(c, set);
        }
        p
    }

    /// Re-syncs an existing panel to the current matrix: appended
    /// columns are encoded fresh, `dirty` columns re-encoded in place,
    /// everything else kept. Falls back to a full rebuild (returning
    /// `true`) when the width changed or the row universe no longer
    /// fits the padded stride.
    pub fn sync(
        &mut self,
        nrows: usize,
        col_sets: &[RowSet],
        width: usize,
        dirty: &[ColIdx],
    ) -> bool {
        let width = width.max(1);
        let nwords = nrows.div_ceil(64);
        if width != self.width
            || nwords > self.stride
            || nrows < self.nrows
            || col_sets.len() < self.ncols
        {
            *self = TilePanels::build(nrows, col_sets, width);
            return true;
        }
        self.nrows = nrows;
        let old_ncols = self.ncols;
        self.ncols = col_sets.len();
        self.data.resize(self.ncols * self.stride, 0);
        for (c, cols) in col_sets.iter().enumerate().skip(old_ncols) {
            self.encode_col(c, cols);
        }
        for &c in dirty {
            if c < old_ncols {
                self.encode_col(c, &col_sets[c]);
            }
        }
        false
    }

    /// Zeroes and re-encodes one column from its row bitset.
    fn encode_col(&mut self, c: ColIdx, set: &RowSet) {
        let base = c * self.stride;
        let col = &mut self.data[base..base + self.stride];
        col.fill(0);
        let words = set.as_words();
        col[..words.len()].copy_from_slice(words);
    }

    /// Words per tile.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Columns encoded.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// One column's padded word slice.
    #[inline]
    fn col(&self, c: ColIdx) -> &[u64] {
        &self.data[c * self.stride..(c + 1) * self.stride]
    }

    /// The column's row bitset as a plain [`RowSet`]-equivalent word
    /// vector (unpadded) — for consistency checks in tests.
    pub fn col_words(&self, c: ColIdx) -> Vec<u64> {
        self.col(c)[..self.nrows.div_ceil(64)].to_vec()
    }
}

/// A support row-set in tiled form: padded words plus the ascending
/// list of non-zero tile indices. Words outside the live tiles are
/// stale and must never be read.
#[derive(Clone, Debug, Default)]
pub struct TiledSupport {
    width: usize,
    words: Vec<u64>,
    live: Vec<u32>,
}

impl TiledSupport {
    /// `self = column c` of the panel — the root support of a
    /// leftmost-column task.
    pub fn load_col(&mut self, p: &TilePanels, c: ColIdx) {
        self.width = p.width;
        if self.words.len() != p.stride {
            self.words.clear();
            self.words.resize(p.stride, 0);
        }
        self.live.clear();
        let col = p.col(c);
        for t in 0..p.stride / p.width {
            let base = t * p.width;
            let tile = &col[base..base + p.width];
            let mut any = 0u64;
            for &x in tile {
                any |= x;
            }
            if any != 0 {
                self.words[base..base + p.width].copy_from_slice(tile);
                self.live.push(t as u32);
            }
        }
    }

    /// Fused intersect-and-bound: `self = parent ∩ column c`, visiting
    /// only the parent's live tiles, returning the admissible bound
    /// `Σ max(row_full_value[r], 0)` over the result. The word loop is
    /// unrolled in 4-wide groups with an OR reduction so a dead tile
    /// exits before any bit walking.
    pub fn and_ub_from(
        &mut self,
        parent: &TiledSupport,
        p: &TilePanels,
        c: ColIdx,
        row_full_value: &[i64],
    ) -> i64 {
        let w = p.width;
        self.width = w;
        if self.words.len() != p.stride {
            self.words.clear();
            self.words.resize(p.stride, 0);
        }
        self.live.clear();
        let col = p.col(c);
        let mut ub = 0i64;
        for &t in &parent.live {
            let base = t as usize * w;
            let a = &parent.words[base..base + w];
            let b = &col[base..base + w];
            let out = &mut self.words[base..base + w];
            let mut any = 0u64;
            let mut i = 0;
            while i + 4 <= w {
                let w0 = a[i] & b[i];
                let w1 = a[i + 1] & b[i + 1];
                let w2 = a[i + 2] & b[i + 2];
                let w3 = a[i + 3] & b[i + 3];
                out[i] = w0;
                out[i + 1] = w1;
                out[i + 2] = w2;
                out[i + 3] = w3;
                any |= w0 | w1 | w2 | w3;
                i += 4;
            }
            while i < w {
                let x = a[i] & b[i];
                out[i] = x;
                any |= x;
                i += 1;
            }
            if any == 0 {
                continue; // dead tile: no survivors, no bit walk
            }
            self.live.push(t);
            for (j, &word) in out.iter().enumerate() {
                let mut word = word;
                let row_base = (base + j) * 64;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    ub += row_full_value[row_base + bit].max(0);
                }
            }
        }
        ub
    }

    /// Admissible bound of this support alone: `Σ max(row_full_value[r],
    /// 0)` over the member rows — what [`TiledSupport::and_ub_from`]
    /// returns for a derived child, for supports loaded directly from a
    /// column.
    pub fn bound(&self, row_full_value: &[i64]) -> i64 {
        let w = self.width.max(1);
        let mut ub = 0i64;
        for &t in &self.live {
            let base = t as usize * w;
            for (j, &word) in self.words[base..base + w].iter().enumerate() {
                let mut word = word;
                let row_base = (base + j) * 64;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    ub += row_full_value[row_base + bit].max(0);
                }
            }
        }
        ub
    }

    /// Whether the support holds no rows.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of rows (popcount over live tiles).
    pub fn len(&self) -> usize {
        let w = self.width.max(1);
        self.live
            .iter()
            .flat_map(|&t| {
                let base = t as usize * w;
                self.words[base..base + w].iter()
            })
            .map(|x| x.count_ones() as usize)
            .sum()
    }

    /// Iterates the member rows in ascending order (the live list is
    /// ascending, words within a tile ascending, bits within a word
    /// ascending).
    pub fn iter(&self) -> TiledBits<'_> {
        TiledBits {
            s: self,
            live_idx: 0,
            word_off: 0,
            current: 0,
        }
    }

    /// Appends the member rows (ascending) to `out` without clearing.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        out.extend(self.iter());
    }
}

impl<'a> IntoIterator for &'a TiledSupport {
    type Item = usize;
    type IntoIter = TiledBits<'a>;
    fn into_iter(self) -> TiledBits<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`TiledSupport`]'s rows, driven by the
/// live-tile list (stale words are never visited).
pub struct TiledBits<'a> {
    s: &'a TiledSupport,
    /// Index into the live list.
    live_idx: usize,
    /// Word offset inside the current live tile (`0..width` once the
    /// tile is entered; `width` forces advancing to the next tile).
    word_off: usize,
    current: u64,
}

impl Iterator for TiledBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let t = self.s.live[self.live_idx - 1] as usize;
                let word = t * self.s.width + (self.word_off - 1);
                return Some(word * 64 + bit);
            }
            // Advance to the next word of the current tile, or enter
            // the next live tile.
            if self.live_idx == 0 || self.word_off >= self.s.width {
                if self.live_idx >= self.s.live.len() {
                    return None;
                }
                self.live_idx += 1;
                self.word_off = 0;
            }
            let t = self.s.live[self.live_idx - 1] as usize;
            self.current = self.s.words[t * self.s.width + self.word_off];
            self.word_off += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(universe: usize, cols: &[&[usize]]) -> Vec<RowSet> {
        cols.iter()
            .map(|rows| RowSet::from_indices(rows.iter().copied(), universe))
            .collect()
    }

    #[test]
    fn build_mirrors_columns_for_every_width() {
        let cs = sets(200, &[&[0, 63, 64, 130, 199], &[], &[5, 6, 7], &[199]]);
        for width in [1usize, 2, 3, 4, 8] {
            let p = TilePanels::build(200, &cs, width);
            assert_eq!(p.width(), width);
            assert_eq!(p.ncols(), 4);
            for (c, set) in cs.iter().enumerate() {
                assert_eq!(p.col_words(c), set.as_words(), "width={width} col={c}");
            }
        }
    }

    #[test]
    fn load_col_and_iter_match_rowset() {
        let cs = sets(300, &[&[1, 64, 65, 128, 256, 299], &[70, 71]]);
        for width in [1usize, 4] {
            let p = TilePanels::build(300, &cs, width);
            let mut s = TiledSupport::default();
            for (c, set) in cs.iter().enumerate() {
                s.load_col(&p, c);
                assert_eq!(
                    s.iter().collect::<Vec<_>>(),
                    set.iter().collect::<Vec<_>>(),
                    "width={width} col={c}"
                );
                assert_eq!(s.len(), set.len());
                assert!(!s.is_empty());
            }
        }
    }

    #[test]
    fn and_ub_matches_scalar_intersection() {
        let a: Vec<usize> = vec![1, 3, 64, 130, 131, 250];
        let b: Vec<usize> = vec![3, 64, 131, 200, 251];
        let cs = sets(260, &[&a, &b]);
        let rfv: Vec<i64> = (0..260).map(|r| (r as i64 % 7) - 3).collect();
        for width in [1usize, 2, 4, 8] {
            let p = TilePanels::build(260, &cs, width);
            let mut root = TiledSupport::default();
            root.load_col(&p, 0);
            let mut child = TiledSupport::default();
            let ub = child.and_ub_from(&root, &p, 1, &rfv);
            let expect: Vec<usize> = vec![3, 64, 131];
            assert_eq!(child.iter().collect::<Vec<_>>(), expect, "width={width}");
            let expect_ub: i64 = expect.iter().map(|&r| rfv[r].max(0)).sum();
            assert_eq!(ub, expect_ub, "width={width}");
        }
    }

    #[test]
    fn empty_intersection_is_empty_and_zero() {
        let cs = sets(128, &[&[0, 1, 2], &[100, 101]]);
        let p = TilePanels::build(128, &cs, 4);
        let rfv = vec![1i64; 128];
        let mut root = TiledSupport::default();
        root.load_col(&p, 0);
        let mut child = TiledSupport::default();
        let ub = child.and_ub_from(&root, &p, 1, &rfv);
        assert_eq!(ub, 0);
        assert!(child.is_empty());
        assert_eq!(child.iter().count(), 0);
    }

    #[test]
    fn stale_words_are_never_read() {
        // Derive a child, then reuse the same buffer against a column
        // whose live tiles differ: survivors of the old intersection
        // must not leak through.
        let cs = sets(256, &[&[0, 200], &[0], &[200]]);
        let p = TilePanels::build(256, &cs, 2);
        let rfv = vec![1i64; 256];
        let mut root = TiledSupport::default();
        root.load_col(&p, 0);
        let mut child = TiledSupport::default();
        child.and_ub_from(&root, &p, 1, &rfv); // {0}
        assert_eq!(child.iter().collect::<Vec<_>>(), vec![0]);
        child.and_ub_from(&root, &p, 2, &rfv); // {200}; tile of row 0 now stale
        assert_eq!(child.iter().collect::<Vec<_>>(), vec![200]);
    }

    #[test]
    fn sync_reencodes_dirty_and_appends_columns() {
        let mut cs = sets(100, &[&[1, 2], &[50]]);
        let mut p = TilePanels::build(100, &cs, 4);
        // Column 0 loses a row, a new column arrives.
        cs[0] = RowSet::from_indices([2], 100);
        cs.push(RowSet::from_indices([99], 100));
        let rebuilt = p.sync(100, &cs, 4, &[0]);
        assert!(!rebuilt, "in-place sync expected");
        for (c, set) in cs.iter().enumerate() {
            assert_eq!(p.col_words(c), set.as_words(), "col={c}");
        }
    }

    #[test]
    fn sync_rebuilds_on_width_change_or_universe_overflow() {
        let cs = sets(64, &[&[0]]);
        let mut p = TilePanels::build(64, &cs, 1);
        // Same sets, new width: full rebuild.
        assert!(p.sync(64, &cs, 4, &[]));
        assert_eq!(p.width(), 4);
        // Universe grows past the padded stride: full rebuild.
        let grown = sets(64 * 4 * 64 + 1, &[&[0, 64 * 4 * 64]]);
        assert!(p.sync(64 * 4 * 64 + 1, &grown, 4, &[]));
        assert_eq!(p.col_words(0), grown[0].as_words());
    }
}
