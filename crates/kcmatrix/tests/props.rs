//! Property tests for the KC matrix and rectangle search: matrix
//! entries really cover network cubes, the exact search dominates the
//! greedy one, stripes partition the space, and the state machine obeys
//! Table 5 under arbitrary operation sequences.

use pf_kcmatrix::{
    best_rectangle, best_rectangle_pooled, best_rectangles_seeded, conflicts, reference,
    select_nonconflicting, CeilingUpdate, CubeRegistry, CubeState, CubeStates, KcMatrix, LabelGen,
    RowSet, SearchConfig, SearchPool, TilePanels,
};
use pf_sop::kernel::KernelConfig;
use pf_sop::{Cube, Lit, Sop};
use proptest::prelude::*;

fn arb_sop(nvars: u32, max_len: usize, max_cubes: usize) -> impl Strategy<Value = Sop> {
    prop::collection::vec(
        prop::collection::btree_set(0..nvars, 1..=max_len),
        1..=max_cubes,
    )
    .prop_map(|cubes| {
        Sop::from_cubes(
            cubes
                .into_iter()
                .map(|vs| Cube::from_lits(vs.into_iter().map(Lit::pos))),
        )
    })
}

fn build_matrix(funcs: &[Sop]) -> (KcMatrix, Vec<u32>) {
    let reg = CubeRegistry::new();
    let mut m = KcMatrix::new();
    let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    for (i, f) in funcs.iter().enumerate() {
        m.add_node_kernels(
            i as u32,
            f,
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
    }
    let w = reg.weights_snapshot();
    (m, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every matrix entry covers an actual cube of its node's function,
    /// and the entry weight is that cube's literal count.
    #[test]
    fn entries_cover_real_cubes(funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4)) {
        let (m, w) = build_matrix(&funcs);
        for row in m.rows() {
            for &(c, id) in &row.entries {
                let covered = row.cokernel.product(&m.cols()[c].cube).unwrap();
                prop_assert!(funcs[row.node as usize].contains_cube(&covered));
                prop_assert_eq!(w[id as usize], covered.len() as u32);
            }
        }
    }

    /// The returned rectangle's value is consistent with a direct
    /// recomputation, and applying it can never lose literals.
    #[test]
    fn best_rectangle_value_is_exact(funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4)) {
        let (m, w) = build_matrix(&funcs);
        let (best, _) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
        let Some(rect) = best else { return Ok(()) };
        prop_assert!(rect.value > 0);
        // Recompute: Σ distinct covered − row costs − col costs.
        let mut seen = std::collections::HashSet::new();
        let mut total: i64 = -rect.cols.iter()
            .map(|&c| m.cols()[c].cube.len() as i64).sum::<i64>();
        for &r in &rect.rows {
            let row = &m.rows()[r];
            total -= row.cokernel.len() as i64 + 1;
            for &c in &rect.cols {
                let id = row.entry(c).unwrap();
                if seen.insert(id) {
                    total += w[id as usize] as i64;
                }
            }
        }
        prop_assert_eq!(total, rect.value);
    }

    /// The union of striped searches finds the global optimum value.
    #[test]
    fn stripes_cover_the_space(
        funcs in prop::collection::vec(arb_sop(8, 3, 7), 1..4),
        nprocs in 2u32..5,
    ) {
        let (m, w) = build_matrix(&funcs);
        let global = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0
            .map_or(0, |r| r.value);
        let mut best = 0i64;
        for p in 0..nprocs {
            let cfg = SearchConfig { stripe: Some((p, nprocs)), ..SearchConfig::default() };
            if let (Some(r), _) = best_rectangle(&m, &|id| w[id as usize], &cfg) {
                best = best.max(r.value);
            }
        }
        prop_assert_eq!(best, global);
    }

    /// Zeroing cube values can only lower the best rectangle's value.
    #[test]
    fn covering_is_monotone(
        funcs in prop::collection::vec(arb_sop(8, 3, 7), 1..4),
        mask in prop::collection::vec(any::<bool>(), 64),
    ) {
        let (m, w) = build_matrix(&funcs);
        let full = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default())
            .0.map_or(0, |r| r.value);
        let masked = best_rectangle(&m, &|id| {
            if mask.get(id as usize).copied().unwrap_or(false) { 0 } else { w[id as usize] }
        }, &SearchConfig::default()).0.map_or(0, |r| r.value);
        prop_assert!(masked <= full);
    }

    /// The Table 5 state machine: arbitrary claim/release/divide
    /// sequences keep every cube in a legal state and DIVIDED absorbing.
    #[test]
    fn state_machine_is_sound(ops in prop::collection::vec((0u32..8, 0u16..4, 0u8..3), 0..200)) {
        let st = CubeStates::with_len(8);
        let mut divided = [false; 8];
        for (id, proc, op) in ops {
            match op {
                0 => { st.claim(id, proc); }
                1 => { st.release(id, proc); }
                _ => { st.mark_divided(id); divided[id as usize] = true; }
            }
            if divided[id as usize] {
                prop_assert_eq!(st.state(id), CubeState::Divided);
            }
            match st.state(id) {
                CubeState::Free => {
                    prop_assert_eq!(st.value_for(id, 7, 0), 7);
                }
                CubeState::Covered(owner) => {
                    prop_assert_eq!(st.value_for(id, 7, owner), 7);
                    prop_assert_eq!(st.value_for(id, 7, owner + 1), 0);
                }
                CubeState::Divided => {
                    prop_assert_eq!(st.value_for(id, 7, proc), 0);
                }
            }
        }
    }

    /// The bitset engine is a drop-in replacement for the legacy vec
    /// search: identical rectangle, value, and stats on arbitrary
    /// matrices, with and without stripes, for min_cols ∈ {1, 2} — and
    /// the tiled kernel (any `tile_width`) is a drop-in replacement for
    /// the scalar bitset engine against the same oracle, budget
    /// truncation included.
    #[test]
    fn bitset_search_equals_vec_search(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        striped in any::<bool>(),
        proc in 0u32..4,
        nprocs in 1u32..4,
        min_cols in 1usize..3,
        tight_budget in any::<bool>(),
        budget in 1u64..40,
        tile_width in 0usize..6,
    ) {
        let (m, w) = build_matrix(&funcs);
        let cfg = SearchConfig {
            stripe: striped.then_some((proc % nprocs, nprocs)),
            min_cols,
            budget: if tight_budget { budget } else { SearchConfig::default().budget },
            tile_width,
            ..SearchConfig::default()
        };
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let (bit, bit_stats) = best_rectangle(&m, &value_of, &cfg);
        let (vec, vec_stats) = reference::best_rectangle(&m, &value_of, &cfg);
        prop_assert_eq!(bit, vec);
        prop_assert_eq!(bit_stats.visited, vec_stats.visited);
        prop_assert_eq!(bit_stats.budget_exhausted, vec_stats.budget_exhausted);
    }

    /// The tiled kernel is byte-identical to the scalar engine for any
    /// tile width × thread count × topk: same rectangles in the same
    /// order, and (sequentially, where the schedule is deterministic)
    /// the same enumeration statistics.
    #[test]
    fn tiled_search_is_byte_identical_to_scalar(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        tile_width in 1usize..9,
        topk in 1usize..5,
        threads in 0usize..3,
        min_cols in 1usize..3,
    ) {
        let (m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let scalar_cfg = SearchConfig {
            min_cols,
            topk,
            par_threads: threads,
            ..SearchConfig::default()
        };
        let tiled_cfg = SearchConfig { tile_width, ..scalar_cfg.clone() };
        let (scalar, scalar_stats) = best_rectangles_seeded(&m, &value_of, &scalar_cfg, None);
        let (tiled, tiled_stats) = best_rectangles_seeded(&m, &value_of, &tiled_cfg, None);
        prop_assert_eq!(&tiled, &scalar, "width={} topk={} threads={}", tile_width, topk, threads);
        if threads == 0 {
            prop_assert_eq!(tiled_stats.visited, scalar_stats.visited);
            prop_assert_eq!(tiled_stats.pruned, scalar_stats.pruned);
            prop_assert_eq!(tiled_stats.budget_exhausted, scalar_stats.budget_exhausted);
        }
    }

    /// The pooled tiled kernel survives matrix mutation through the
    /// dirty-column panel sync: after tombstoning the winner's rows, a
    /// warm tiled pass told only those rows' columns are dirty matches
    /// a fresh scalar search on the new matrix exactly.
    #[test]
    fn tiled_pool_dirty_sync_matches_scalar(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 2..4),
        tile_width in 1usize..6,
        threads in 1usize..4,
    ) {
        let (mut m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let cfg = SearchConfig {
            par_threads: threads,
            tile_width,
            ..SearchConfig::default()
        };
        let mut pool = SearchPool::new();
        let (first, _) =
            best_rectangle_pooled(&m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Reset);
        prop_assert_eq!(pool.tile_rebuilds(), 1, "first pass builds the panel once");
        let Some(rect) = first else { return Ok(()) };
        let mut dirty: Vec<pf_kcmatrix::ColIdx> = rect
            .rows
            .iter()
            .flat_map(|&r| m.rows()[r].entries.iter().map(|&(c, _)| c))
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        for &r in &rect.rows {
            m.tombstone_row(r);
        }
        let scalar_cfg = SearchConfig { tile_width: 0, ..cfg.clone() };
        let (fresh, _) = best_rectangle(&m, &value_of, &scalar_cfg);
        let (warm, _) = best_rectangle_pooled(
            &m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Dirty(&dirty),
        );
        prop_assert_eq!(&warm, &fresh, "width={} threads={}", tile_width, threads);
        prop_assert_eq!(pool.tile_rebuilds(), 1, "dirty pass syncs in place");
    }

    /// RowSet is exact on the trailing partial word: for universes that
    /// are not multiples of 64, construction, intersection (both the
    /// in-place and three-address forms), iteration, and `len` all agree
    /// with the reference BTreeSet semantics, and no stray bits survive
    /// past the universe.
    #[test]
    fn rowset_trailing_word_is_exact(
        universe in 1usize..200,
        xs in prop::collection::vec(0usize..4096, 0..48),
        ys in prop::collection::vec(0usize..4096, 0..48),
    ) {
        use std::collections::BTreeSet;
        let xs: BTreeSet<usize> = xs.iter().map(|i| i % universe).collect();
        let ys: BTreeSet<usize> = ys.iter().map(|i| i % universe).collect();
        let sa = RowSet::from_indices(xs.iter().copied(), universe);
        let sb = RowSet::from_indices(ys.iter().copied(), universe);
        prop_assert_eq!(sa.iter().collect::<Vec<_>>(), xs.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.len(), xs.len());
        for probe in universe.saturating_sub(3)..universe {
            prop_assert_eq!(sa.contains(probe), xs.contains(&probe));
        }
        let expect: Vec<usize> = xs.intersection(&ys).copied().collect();
        let mut inplace = sa.clone();
        inplace.and_with(&sb);
        prop_assert_eq!(inplace.iter().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(inplace.len(), expect.len());
        let mut out = RowSet::zeroed(universe);
        out.assign_and(&sa, &sb);
        prop_assert_eq!(out.iter().collect::<Vec<_>>(), expect.clone());
        // Words are canonical: rebuilding from the iterator reproduces
        // them bit for bit, i.e. nothing leaked into the slack bits of
        // the final word.
        let rebuilt = RowSet::from_indices(expect.iter().copied(), universe);
        prop_assert_eq!(out.as_words(), rebuilt.as_words());
    }

    /// Tile panels stay a faithful mirror of the matrix across
    /// tombstone/append sequences when synced through the dirty-column
    /// contract: tombstoned rows' columns plus appended rows' columns.
    #[test]
    fn tile_panels_survive_mutation(
        funcs in prop::collection::vec(arb_sop(8, 3, 7), 2..4),
        extra in arb_sop(8, 3, 6),
        width in 1usize..6,
        kills in prop::collection::vec(0usize..4096, 1..6),
    ) {
        let reg = CubeRegistry::new();
        let mut m = KcMatrix::new();
        let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        for (i, f) in funcs.iter().enumerate() {
            m.add_node_kernels(i as u32, f, &KernelConfig::default(), &reg, &mut rl, &mut cl);
        }
        if m.rows().is_empty() {
            return Ok(());
        }
        let mut panel = TilePanels::build(m.rows().len(), &m.col_row_sets(), width);
        // Round 1: tombstone some rows, sync with their columns dirty.
        let mut dirty: Vec<usize> = Vec::new();
        for k in &kills {
            let r = k % m.rows().len();
            if !m.rows()[r].alive {
                continue;
            }
            dirty.extend(m.rows()[r].entries.iter().map(|&(c, _)| c));
            m.tombstone_row(r);
        }
        dirty.sort_unstable();
        dirty.dedup();
        let rebuilt = panel.sync(m.rows().len(), &m.col_row_sets(), width, &dirty);
        prop_assert!(!rebuilt, "tombstones never force a rebuild");
        for (c, set) in m.col_row_sets().iter().enumerate() {
            prop_assert_eq!(panel.col_words(c), set.as_words(), "col {} after tombstones", c);
        }
        // Round 2: append a node, sync with the new rows' columns dirty.
        let before = m.rows().len();
        m.add_node_kernels(
            funcs.len() as u32, &extra, &KernelConfig::default(), &reg, &mut rl, &mut cl,
        );
        let mut dirty: Vec<usize> = m.rows()[before..]
            .iter()
            .flat_map(|row| row.entries.iter().map(|&(c, _)| c))
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        panel.sync(m.rows().len(), &m.col_row_sets(), width, &dirty);
        for (c, set) in m.col_row_sets().iter().enumerate() {
            prop_assert_eq!(panel.col_words(c), set.as_words(), "col {} after append", c);
        }
    }

    /// The parallel engine returns the same `Rectangle` no matter the
    /// thread count, and its value matches the sequential optimum.
    #[test]
    fn parallel_search_is_thread_count_independent(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        min_cols in 1usize..3,
    ) {
        let (m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let base = SearchConfig { min_cols, ..SearchConfig::default() };
        let (seq, _) = best_rectangle(&m, &value_of, &base);
        let (one, _) = best_rectangle(
            &m,
            &value_of,
            &SearchConfig { par_threads: 1, ..base.clone() },
        );
        let (four, _) = best_rectangle(
            &m,
            &value_of,
            &SearchConfig { par_threads: 4, ..base },
        );
        prop_assert_eq!(&one, &four, "1 vs 4 threads must agree exactly");
        prop_assert_eq!(
            one.as_ref().map(|r| r.value),
            seq.map(|r| r.value),
            "parallel value must match the sequential optimum"
        );
    }

    /// The pooled engine is a drop-in replacement for the spawn-per-pass
    /// parallel engine: identical `Rectangle` for every thread count, and
    /// identical enumeration (visited / budget flag) at one thread, where
    /// the pooled pass runs the very same worker loop inline.
    #[test]
    fn pooled_search_equals_spawn_search(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        min_cols in 1usize..3,
    ) {
        let (m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let (classic, _) = best_rectangle(
            &m,
            &value_of,
            &SearchConfig { min_cols, ..SearchConfig::default() },
        );
        for threads in [1usize, 2, 4] {
            let cfg = SearchConfig {
                par_threads: threads,
                min_cols,
                ..SearchConfig::default()
            };
            let (spawn, spawn_stats) = best_rectangle(&m, &value_of, &cfg);
            let mut pool = SearchPool::new();
            let (pooled, pooled_stats) =
                best_rectangle_pooled(&m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Off);
            prop_assert_eq!(&pooled, &spawn, "threads={}", threads);
            prop_assert_eq!(
                pooled_stats.budget_exhausted, spawn_stats.budget_exhausted,
                "threads={}", threads
            );
            if threads == 1 {
                prop_assert_eq!(pooled_stats.visited, spawn_stats.visited);
            }
            prop_assert_eq!(
                pooled.as_ref().map(|r| r.value),
                classic.as_ref().map(|r| r.value),
                "threads={}: pooled value must match the classic optimum", threads
            );
        }
    }

    /// A warm pool is stateless across passes unless ceilings say
    /// otherwise: repeated identical passes through one pool return the
    /// same rectangle, both with ceilings off and with the
    /// `Reset` → `Dirty(&[])` cross-pass protocol (no mutation, nothing
    /// dirty, so ceilings may only prune work — never change the result).
    #[test]
    fn warm_pool_repeats_are_identical(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        threads in 1usize..5,
    ) {
        let (m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let cfg = SearchConfig { par_threads: threads, ..SearchConfig::default() };
        let mut pool = SearchPool::new();
        let (first, _) =
            best_rectangle_pooled(&m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Off);
        // Pass widths are clamped to the available tasks, so the first
        // pass may spawn fewer than `threads - 1` background workers —
        // but identical repeats must never spawn another thread.
        let spawned_cold = pool.spawned_threads();
        prop_assert!(spawned_cold <= threads.saturating_sub(1) as u64);
        for _ in 0..2 {
            let (again, _) =
                best_rectangle_pooled(&m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Off);
            prop_assert_eq!(&again, &first);
        }
        let (reset, _) =
            best_rectangle_pooled(&m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Reset);
        prop_assert_eq!(&reset, &first);
        for _ in 0..2 {
            let (ceiled, _) = best_rectangle_pooled(
                &m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Dirty(&[]),
            );
            prop_assert_eq!(&ceiled, &first);
        }
        prop_assert_eq!(pool.spawned_threads(), spawned_cold, "warm repeats spawned threads");
    }

    /// Ceiling invalidation is sound across matrix mutation: after
    /// tombstoning the best rectangle's rows (the cover loop's mutation
    /// shape), a pooled pass told only those rows' columns are dirty
    /// finds exactly what a fresh spawn search finds on the new matrix.
    #[test]
    fn dirty_column_ceilings_survive_mutation(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 2..4),
        threads in 1usize..4,
    ) {
        let (mut m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let cfg = SearchConfig { par_threads: threads, ..SearchConfig::default() };
        let mut pool = SearchPool::new();
        let (first, _) =
            best_rectangle_pooled(&m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Reset);
        let Some(rect) = first else { return Ok(()) };
        // Tombstone the winning rows; their columns are exactly the
        // dirty set (no rows were appended).
        let mut dirty: Vec<pf_kcmatrix::ColIdx> = rect
            .rows
            .iter()
            .flat_map(|&r| m.rows()[r].entries.iter().map(|&(c, _)| c))
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        for &r in &rect.rows {
            m.tombstone_row(r);
        }
        let (fresh, _) = best_rectangle(&m, &value_of, &cfg);
        let (ceiled, _) = best_rectangle_pooled(
            &m, &value_of, &cfg, None, &mut pool, CeilingUpdate::Dirty(&dirty),
        );
        prop_assert_eq!(&ceiled, &fresh, "threads={}", threads);
    }

    /// The plural search at topk = 1 is the singular search: same
    /// rectangle, byte for byte, for any stripe and thread count.
    #[test]
    fn topk1_plural_search_is_the_singular_search(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        striped in any::<bool>(),
        proc in 0u32..3,
        nprocs in 1u32..3,
        threads in 0usize..3,
    ) {
        let (m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let cfg = SearchConfig {
            stripe: striped.then_some((proc % nprocs, nprocs)),
            par_threads: threads,
            topk: 1,
            ..SearchConfig::default()
        };
        let (single, _) = best_rectangle(&m, &value_of, &cfg);
        let (plural, _) = best_rectangles_seeded(&m, &value_of, &cfg, None);
        prop_assert_eq!(plural.first(), single.as_ref());
        prop_assert!(plural.len() <= 1);
    }

    /// A batch selected from top-K candidates is genuinely conflict-free
    /// (pairwise) and maximal: every rejected candidate conflicts with
    /// at least one selected rectangle.
    #[test]
    fn selected_batch_is_conflict_free_and_maximal(
        funcs in prop::collection::vec(arb_sop(8, 4, 8), 1..4),
        topk in 2usize..12,
    ) {
        let (m, w) = build_matrix(&funcs);
        let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
        let cfg = SearchConfig { topk, ..SearchConfig::default() };
        let (cands, _) = best_rectangles_seeded(&m, &value_of, &cfg, None);
        let selected = select_nonconflicting(&m, &cands, usize::MAX);
        for (i, a) in selected.iter().enumerate() {
            for b in &selected[i + 1..] {
                prop_assert!(!conflicts(&m, a, b), "selected pair conflicts");
                prop_assert!(!conflicts(&m, b, a), "conflict must be symmetric here");
            }
        }
        for c in cands.iter().filter(|c| !selected.contains(c)) {
            prop_assert!(
                selected.iter().any(|s| conflicts(&m, s, c)),
                "rejected candidate conflicts with nothing — selection not maximal"
            );
        }
        // The canonical best candidate is always selected first.
        if let Some(first) = cands.first() {
            prop_assert_eq!(selected.first(), Some(first));
        }
    }

    /// Tombstoning a node's rows leaves the matrix consistent.
    #[test]
    fn remove_rows_keeps_consistency(funcs in prop::collection::vec(arb_sop(8, 3, 7), 2..4)) {
        let (mut m, _) = build_matrix(&funcs);
        m.remove_node_rows(0);
        for col in m.cols() {
            for &r in &col.rows {
                prop_assert!(m.rows()[r].alive);
                prop_assert_ne!(m.rows()[r].node, 0);
            }
        }
        for row in m.rows().iter().filter(|r| r.alive) {
            prop_assert_ne!(row.node, 0);
        }
    }
}
