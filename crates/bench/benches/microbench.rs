//! Criterion micro-benchmarks for the engine's hot paths: kernel
//! enumeration, algebraic division, KC-matrix construction, rectangle
//! search, partitioning, simulation, and one end-to-end extraction per
//! algorithm on a small circuit.
//!
//! These complement the table binaries (which regenerate the paper's
//! tables); use them to catch regressions in the primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_core::{
    extract_kernels, independent_extract, lshaped_extract, ExtractConfig, FaultPlan, FaultRule,
    IndependentConfig, LShapedConfig, RunCtl,
};
use pf_kcmatrix::{best_rectangle, CubeRegistry, KcMatrix, LabelGen, SearchConfig};
use pf_network::sim::simulate;
use pf_partition::{partition_network, PartitionConfig};
use pf_sop::kernel::{kernels, KernelConfig};
use pf_sop::{divide, Sop};
use pf_workloads::{generate, profile_by_name, scale_profile, CircuitProfile};
use std::hint::black_box;

fn bench_circuit(scale: f64) -> pf_network::Network {
    generate(&scale_profile(&profile_by_name("dalu").unwrap(), scale))
}

/// A single busy node function for the algebra benches.
fn busy_sop() -> Sop {
    let nw = generate(&CircuitProfile::small("bench", 42));
    nw.node_ids()
        .map(|n| nw.func(n).clone())
        .max_by_key(Sop::literal_count)
        .expect("generated nodes")
}

fn algebra(c: &mut Criterion) {
    let f = busy_sop();
    c.bench_function("kernels/busy_node", |b| b.iter(|| kernels(black_box(&f))));
    let ks = kernels(&f);
    if let Some(k) = ks.first() {
        c.bench_function("divide/by_kernel", |b| {
            b.iter(|| divide(black_box(&f), black_box(&k.kernel)))
        });
    }
    c.bench_function("sop/canonicalize", |b| {
        b.iter(|| Sop::from_cubes(black_box(f.cubes()).iter().cloned()))
    });
}

fn matrix(c: &mut Criterion) {
    let nw = bench_circuit(0.08);
    c.bench_function("kcmatrix/build", |b| {
        b.iter(|| {
            let reg = CubeRegistry::new();
            let mut m = KcMatrix::new();
            let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
            let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
            for n in nw.node_ids() {
                m.add_node_kernels(
                    n,
                    nw.func(n),
                    &KernelConfig::default(),
                    &reg,
                    &mut rl,
                    &mut cl,
                );
            }
            black_box(m.num_entries())
        })
    });

    let reg = CubeRegistry::new();
    let mut m = KcMatrix::new();
    let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    for n in nw.node_ids() {
        m.add_node_kernels(
            n,
            nw.func(n),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
    }
    let w = reg.weights_snapshot();
    c.bench_function("rectangle/best_full", |b| {
        b.iter(|| best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default()))
    });
    c.bench_function("rectangle/best_striped", |b| {
        b.iter(|| {
            best_rectangle(
                &m,
                &|id| w[id as usize],
                &SearchConfig {
                    stripe: Some((0, 4)),
                    ..SearchConfig::default()
                },
            )
        })
    });
}

fn partition(c: &mut Criterion) {
    let nw = bench_circuit(0.15);
    let mut g = c.benchmark_group("partition");
    for k in [2usize, 4, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| partition_network(&nw, k, &PartitionConfig::default()))
        });
    }
    g.finish();
}

fn simulation(c: &mut Criterion) {
    let nw = bench_circuit(0.15);
    let inputs: Vec<u64> = (0..nw.input_ids().count() as u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    c.bench_function("simulate/64vectors", |b| {
        b.iter(|| simulate(black_box(&nw), black_box(&inputs)))
    });
}

fn algebra_extensions(c: &mut Criterion) {
    let f = busy_sop();
    c.bench_function("factor/quick_factor", |b| {
        b.iter(|| pf_sop::quick_factor(black_box(&f)))
    });
    // A mixed-phase SOP for simplify.
    let mixed = {
        use pf_sop::{Cube, Lit};
        Sop::from_cubes((0..12u32).map(|i| {
            Cube::from_lits([
                Lit::new(pf_sop::Var::new(i % 4), i % 2 == 0),
                Lit::pos(4 + i % 3),
                Lit::pos(8 + i % 2),
            ])
        }))
    };
    c.bench_function("minimize/simplify_sop", |b| {
        b.iter(|| pf_sop::simplify_sop(black_box(&mixed)))
    });

    let nw = bench_circuit(0.08);
    c.bench_function("cx/best_common_cube", |b| {
        b.iter(|| {
            let mut m = pf_kcmatrix::CubeLitMatrix::new();
            for n in nw.node_ids() {
                m.add_node(n, nw.func(n));
            }
            black_box(m.best_common_cube(1 << 20))
        })
    });

    let blif = pf_network::blif::write_blif(&nw, "bench");
    c.bench_function("blif/parse", |b| {
        b.iter(|| pf_network::blif::read_blif(black_box(&blif)).unwrap())
    });
}

fn fault_plane(c: &mut Criterion) {
    // The robustness contract for fault injection: a checkpoint with no
    // plan armed must cost one inlined `Option` test — indistinguishable
    // from the pre-fault-plane drivers. The armed variants price the
    // slow path for rules that miss vs. match the site prefix.
    let mut g = c.benchmark_group("fault_plane");
    let disabled = RunCtl::new();
    g.bench_function("checkpoint_disabled", |b| {
        b.iter(|| black_box(&disabled).fault_point(black_box("seq:cover")))
    });
    let miss = RunCtl::new().with_faults(std::sync::Arc::new(FaultPlan::new(1).with_rule(
        FaultRule::latency_at("some:other:site", std::time::Duration::ZERO),
    )));
    g.bench_function("checkpoint_armed_miss", |b| {
        b.iter(|| black_box(&miss).fault_point(black_box("seq:cover")))
    });
    let hit = RunCtl::new().with_faults(std::sync::Arc::new(FaultPlan::new(1).with_rule(
        FaultRule::latency_at("seq:cover", std::time::Duration::ZERO),
    )));
    g.bench_function("checkpoint_armed_zero_latency", |b| {
        b.iter(|| black_box(&hit).fault_point(black_box("seq:cover")))
    });
    g.finish();
}

fn trace_plane(c: &mut Criterion) {
    // The observability contract, mirroring `fault_plane`: a span
    // start/end pair on a *disarmed* tracer must cost one inlined
    // `Option` test each — cheap enough to leave compiled into every
    // driver. The armed variants price the real recording path.
    let mut g = c.benchmark_group("trace_plane");
    let disarmed = pf_core::Tracer::disarmed();
    let mut lane = disarmed.lane("bench");
    g.bench_function("span_disarmed", |b| {
        b.iter(|| {
            let s = black_box(&lane).start(black_box("cover"));
            lane.end_with(s, || vec![("value", 1)]);
        })
    });
    g.bench_function("event_disarmed", |b| {
        b.iter(|| lane.event(black_box("search"), || vec![("visited", 100)]))
    });
    let armed = pf_core::Tracer::with_capacity(1024);
    let mut armed_lane = armed.lane("bench");
    g.bench_function("span_armed", |b| {
        b.iter(|| {
            let s = black_box(&armed_lane).start(black_box("cover"));
            armed_lane.end_with(s, || vec![("value", 1)]);
        })
    });
    g.finish();
    drop(armed_lane);
    let _ = armed.take(); // keep the armed trace from accumulating
}

fn end_to_end(c: &mut Criterion) {
    let nw = bench_circuit(0.08);
    let mut g = c.benchmark_group("extract");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut copy = nw.clone();
            extract_kernels(&mut copy, &[], &ExtractConfig::default())
        })
    });
    g.bench_function("independent_p2", |b| {
        b.iter(|| {
            let mut copy = nw.clone();
            independent_extract(
                &mut copy,
                &IndependentConfig {
                    procs: 2,
                    ..IndependentConfig::default()
                },
            )
        })
    });
    g.bench_function("lshaped_seq_p2", |b| {
        b.iter(|| {
            let mut copy = nw.clone();
            lshaped_extract(
                &mut copy,
                &LShapedConfig {
                    procs: 2,
                    sequential: true,
                    ..LShapedConfig::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    algebra,
    algebra_extensions,
    matrix,
    partition,
    simulation,
    fault_plane,
    trace_plane,
    end_to_end
);
criterion_main!(benches);
