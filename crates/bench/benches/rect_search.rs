//! Criterion benchmarks for the rectangle-search core: the legacy
//! `Vec<RowIdx>` reference engine vs. the dense `RowSet` bitset engine
//! on the scaled dalu matrix, and the parallel engine at 1/2/4/8
//! threads on the full-scale matrix.
//!
//! These back the numbers in `BENCH_rect.json` (refresh that file with
//! `parafactor bench-json`); run them directly with
//! `cargo bench --bench rect_search`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pf_kcmatrix::{best_rectangle, reference, CubeRegistry, KcMatrix, LabelGen, SearchConfig};
use pf_sop::kernel::KernelConfig;
use pf_workloads::{generate, profile_by_name, scale_profile};
use std::hint::black_box;

/// KC matrix (and cube weights) of the dalu workload at `scale`.
fn dalu_matrix(scale: f64) -> (KcMatrix, Vec<u32>) {
    let nw = generate(&scale_profile(
        &profile_by_name("dalu").expect("dalu profile exists"),
        scale,
    ));
    let reg = CubeRegistry::new();
    let mut m = KcMatrix::new();
    let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    for n in nw.node_ids() {
        m.add_node_kernels(
            n,
            nw.func(n),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
    }
    let w = reg.weights_snapshot();
    (m, w)
}

/// Vec reference engine vs. bitset engine, one full search each.
fn vec_vs_bitset(c: &mut Criterion) {
    let (m, w) = dalu_matrix(0.35);
    let cfg = SearchConfig::default();
    let mut g = c.benchmark_group("rect_search");
    g.sample_size(15);
    g.bench_function("vec", |b| {
        b.iter(|| {
            let (best, _) = reference::best_rectangle(&m, &|id| w[id as usize], &cfg);
            black_box(best)
        })
    });
    g.bench_function("bitset", |b| {
        b.iter(|| {
            let (best, _) = best_rectangle(&m, &|id| w[id as usize], &cfg);
            black_box(best)
        })
    });
    g.finish();
}

/// The parallel engine at increasing thread counts on the full-scale
/// matrix (thread count 0 is the classic sequential bitset path).
fn parallel_threads(c: &mut Criterion) {
    let (m, w) = dalu_matrix(1.0);
    let mut g = c.benchmark_group("par_search");
    g.sample_size(10);
    g.bench_function("seq", |b| {
        b.iter(|| {
            let (best, _) = best_rectangle(&m, &|id| w[id as usize], &SearchConfig::default());
            black_box(best)
        })
    });
    for threads in [1usize, 2, 4, 8] {
        let cfg = SearchConfig {
            par_threads: threads,
            ..SearchConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| {
                let (best, _) = best_rectangle(&m, &|id| w[id as usize], cfg);
                black_box(best)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, vec_vs_bitset, parallel_threads);
criterion_main!(benches);
