//! Table 3 — parallel kernel extraction using circuit partitioning
//! without interaction (Algorithm I, §4).
//!
//! Paper columns: circuit, initial LC, then (LC, S) for 2, 4, 6
//! processors; S is the speedup over the *sequential SIS run*. The paper
//! reports super-linear speedups (up to 16.3 on ex1010) at a 1–3%
//! quality cost that grows with the number of partitions.

use pf_bench::{build_circuit, env_procs, env_scale, geo_mean, sequential_baseline};
use pf_core::{independent_extract, IndependentConfig};
use pf_workloads::paper_profiles;

fn main() {
    let scale = env_scale();
    let procs = env_procs();
    println!("Table 3 — Algorithm I (independent partitions), scale {scale}");
    let mut header = format!("{:>8} {:>9} {:>8}", "circuit", "init LC", "SIS LC");
    for p in &procs {
        header += &format!(" | {:>7} {:>6}", format!("LC(p{p})"), "S");
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let order = ["dalu", "des", "seq", "spla", "ex1010"];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); procs.len()];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); procs.len()];
    for name in order {
        let profile = paper_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("known circuit");
        let nw = build_circuit(&profile, scale);
        let init_lc = nw.literal_count();
        let (_, base) = sequential_baseline(&nw);

        let mut row = format!("{:>8} {:>9} {:>8}", name, init_lc, base.lc_after);
        for (k, &p) in procs.iter().enumerate() {
            let mut run_nw = nw.clone();
            let report = independent_extract(
                &mut run_nw,
                &IndependentConfig {
                    procs: p,
                    ..IndependentConfig::default()
                },
            );
            let s = pf_bench::speedup(base.elapsed, report.elapsed);
            ratios[k].push(report.lc_after as f64 / base.lc_after.max(1) as f64);
            speedups[k].push(s);
            row += &format!(" | {:>7} {:>6.2}", report.lc_after, s);
        }
        println!("{row}");
    }
    let mut avg = format!("{:>8} {:>9} {:>8}", "average", "", "1.000");
    for k in 0..procs.len() {
        avg += &format!(
            " | {:>7.3} {:>6.2}",
            geo_mean(&ratios[k]),
            geo_mean(&speedups[k])
        );
    }
    println!("{avg}  (LC column = quality ratio vs sequential)");
    println!();
    println!("paper (6 procs): average quality 0.740 of initial (≈2% worse than SIS), avg S 8.63");
    println!("expected shape: large / super-linear speedups, quality worsens with p");
}
