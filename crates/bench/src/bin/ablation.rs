//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. rectangle-search budget (exact branch-and-bound → greedy fallback);
//! 2. the greedy lower-bound seed;
//! 3. kernel enumeration depth;
//! 4. Algorithm L's Table 5 consistency protocol (disabling it
//!    reproduces Example 5.2's double-counted savings);
//! 5. Algorithm L's §5.3 kernel-cost-zero division re-check;
//! 6. the extraction objective (area vs timing vs power — the §6
//!    closing remark).

use pf_bench::{build_circuit, env_scale};
use pf_core::{extract_kernels, lshaped_extract, ExtractConfig, LShapedConfig, Objective};
use pf_kcmatrix::SearchConfig;
use pf_network::stats;
use pf_sop::kernel::KernelConfig;
use pf_workloads::profile_by_name;
use std::time::Instant;

fn main() {
    let scale = env_scale();
    let profile = profile_by_name("dalu").expect("known circuit");
    let nw = build_circuit(&profile, scale);
    println!(
        "ablations on the dalu analogue (scale {scale}): {} literals\n",
        nw.literal_count()
    );

    // --- 1. budget sweep --------------------------------------------------
    println!("1. rectangle-search budget (exact → greedy fallback)");
    println!(
        "{:>12} {:>8} {:>8} {:>12} {:>10}",
        "budget", "LC", "extr", "time", "exhausted"
    );
    for budget in [100u64, 10_000, 2_000_000] {
        let mut copy = nw.clone();
        let t = Instant::now();
        let r = extract_kernels(
            &mut copy,
            &[],
            &ExtractConfig {
                search: SearchConfig {
                    budget,
                    ..SearchConfig::default()
                },
                ..ExtractConfig::default()
            },
        );
        println!(
            "{:>12} {:>8} {:>8} {:>12.3?} {:>10}",
            budget,
            r.lc_after,
            r.extractions,
            t.elapsed(),
            r.budget_exhausted
        );
    }

    // --- 2. greedy seed ---------------------------------------------------
    println!("\n2. greedy seeding of the branch and bound");
    for (name, seed) in [("with seed", true), ("without", false)] {
        let mut copy = nw.clone();
        let t = Instant::now();
        let r = extract_kernels(
            &mut copy,
            &[],
            &ExtractConfig {
                search: SearchConfig {
                    greedy_seed: seed,
                    ..SearchConfig::default()
                },
                ..ExtractConfig::default()
            },
        );
        println!(
            "  {:<10} LC {:>6}  time {:>10.3?}  (same optimum, different pruning power)",
            name,
            r.lc_after,
            t.elapsed()
        );
    }

    // --- 3. kernel depth --------------------------------------------------
    println!("\n3. kernel enumeration depth");
    for (name, depth) in [("level-1", 1usize), ("unbounded", usize::MAX)] {
        let mut copy = nw.clone();
        let t = Instant::now();
        let r = extract_kernels(
            &mut copy,
            &[],
            &ExtractConfig {
                kernel: KernelConfig {
                    max_depth: depth,
                    ..KernelConfig::default()
                },
                ..ExtractConfig::default()
            },
        );
        println!(
            "  {:<10} LC {:>6}  rows-per-pass smaller, quality may dip  time {:>10.3?}",
            name,
            r.lc_after,
            t.elapsed()
        );
    }

    // --- 4 & 5. Algorithm L protocol pieces --------------------------------
    println!("\n4/5. Algorithm L (p=4, threaded): §5.3 machinery on/off");
    println!("{:>28} {:>8} {:>8}", "variant", "LC", "shipped");
    for (name, protocol, recheck) in [
        ("full protocol", true, true),
        ("no consistency protocol", false, true),
        ("no division re-check", true, false),
        ("neither", false, false),
    ] {
        let mut copy = nw.clone();
        // The degraded variants may not converge (stale partial
        // rectangles keep re-adding covered cubes — the very pathology
        // §5.3 exists to prevent), so cap their extraction count.
        let r = lshaped_extract(
            &mut copy,
            &LShapedConfig {
                procs: 4,
                consistency_protocol: protocol,
                division_recheck: recheck,
                extract: ExtractConfig {
                    max_extractions: 100,
                    kernel: KernelConfig {
                        max_pairs: 512,
                        ..KernelConfig::default()
                    },
                    search: SearchConfig {
                        budget: 20_000,
                        ..SearchConfig::default()
                    },
                    ..ExtractConfig::default()
                },
                ..LShapedConfig::default()
            },
        );
        println!("{:>28} {:>8} {:>8}", name, r.lc_after, r.shipped_rectangles);
    }
    println!("  (expected: the full protocol gives the best LC; without the §5.3");
    println!("   re-check the run is capped at 100 extractions because it need");
    println!("   not converge at all — the failure mode the paper fixes)");

    // --- 6. objectives ------------------------------------------------------
    println!("\n6. extraction objective (the paper's §6 generalization)");
    println!(
        "{:>8} {:>8} {:>8} {:>10} {:>10}",
        "obj", "LC", "depth", "area-cost", "own-cost"
    );
    let objectives = vec![
        Objective::area(&nw),
        Objective::timing(&nw),
        Objective::power(&nw, 16, 0xAB1E),
    ];
    for obj in objectives {
        let mut copy = nw.clone();
        extract_kernels(
            &mut copy,
            &[],
            &ExtractConfig {
                objective: Some(obj.clone()),
                ..ExtractConfig::default()
            },
        );
        println!(
            "{:>8} {:>8} {:>8} {:>10} {:>10}",
            obj.name,
            copy.literal_count(),
            stats::depth(&copy).unwrap(),
            Objective::area(&nw).network_cost(&copy),
            obj.network_cost(&copy)
        );
    }
    println!("  (each objective minimizes its own cost column; area LC may differ)");
}
