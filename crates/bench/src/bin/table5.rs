//! Table 5 — the states of a cube during extraction (§5.3).
//!
//! This table is definitional, not experimental: it specifies the
//! FREE / COVERED / DIVIDED state machine with the `value` (V) and
//! `trueval` (T) attributes. The binary prints the table exactly as the
//! implementation behaves, then drives a live `CubeStates` instance
//! through every transition as a demonstration (the same transitions are
//! unit- and property-tested in `pf-kcmatrix`).

use pf_kcmatrix::{CubeState, CubeStates};

fn state_name(s: CubeState) -> &'static str {
    match s {
        CubeState::Free => "FREE",
        CubeState::Covered(_) => "COVERED",
        CubeState::Divided => "DIVIDED",
    }
}

fn main() {
    println!("Table 5 — states of a cube during extraction");
    println!("{:>8} {:>3} {:>3}  meaning", "state", "V", "T");
    println!("{}", "-".repeat(72));
    println!(
        "{:>8} {:>3} {:>3}  cube not covered by any best rectangle",
        "FREE", "w", "x"
    );
    println!(
        "{:>8} {:>3} {:>3}  cube covered (speculatively) but not divided; owner sees w",
        "COVERED", "0", "w"
    );
    println!(
        "{:>8} {:>3} {:>3}  covered by some rectangle and divided out",
        "DIVIDED", "0", "0"
    );
    println!();

    // Live demonstration with one cube of weight 5 and processors 0, 1.
    let st = CubeStates::with_len(1);
    let w = 5u32;
    println!("transition trace (cube weight {w}, processors P0 and P1):");
    let show = |st: &CubeStates, step: &str| {
        println!(
            "  {:<44} state={:<10} V(P0)={} V(P1)={}",
            step,
            state_name(st.state(0)),
            st.value_for(0, w, 0),
            st.value_for(0, w, 1)
        );
    };
    show(&st, "initial");
    assert!(st.claim(0, 0));
    show(&st, "P0 puts the cube in its best rectangle");
    assert!(!st.claim(0, 1));
    show(&st, "P1 tries to claim it — rejected, sees V=0");
    assert!(st.release(0, 0));
    show(&st, "P0 finds a better rectangle — releases");
    assert!(st.claim(0, 1));
    show(&st, "P1 claims it now");
    st.mark_divided(0);
    show(&st, "P1 extracts its rectangle — divided");
    assert!(!st.claim(0, 0));
    show(&st, "P0 can never claim a divided cube");
    println!();
    println!("paper: Table 5 lists exactly these three states and attributes");
}
