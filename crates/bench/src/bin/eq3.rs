//! Equation 3 — the analytic speedup model for Algorithm L.
//!
//! `S(p) = p² / (1 + γ(p−1)/(2αp))²` with α the sparsity of the full KC
//! matrix and γ the sparsity of the L-shaped matrices. This binary
//! measures α and γ from the actual matrices built for each circuit,
//! prints the predicted speedups next to the measured ones, and reports
//! the rank correlation (the model predicts *shape*, not absolute
//! numbers — the paper omits its proof and calibration too).

use pf_bench::{build_circuit, env_procs, env_scale, sequential_baseline, speedup};
use pf_core::{lshaped_extract, LShapedConfig};
use pf_core::{predicted_speedup, SparsityFactors};
use pf_kcmatrix::{CubeRegistry, KcMatrix, LabelGen};
use pf_sop::kernel::KernelConfig;
use pf_workloads::paper_profiles;

/// Sparsity of the full KC matrix of a network.
fn full_matrix_sparsity(nw: &pf_network::Network) -> f64 {
    let reg = CubeRegistry::new();
    let mut m = KcMatrix::new();
    let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    for n in nw.node_ids() {
        m.add_node_kernels(
            n,
            nw.func(n),
            &KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
    }
    SparsityFactors::measure(&m)
}

fn main() {
    let scale = env_scale();
    let procs = env_procs();
    println!("Equation 3 — predicted vs measured speedup of Algorithm L (scale {scale})");
    let mut header = format!("{:>8} {:>8} {:>8}", "circuit", "alpha", "gamma");
    for p in &procs {
        header += &format!(" | {:>8} {:>8}", format!("pred(p{p})"), "meas");
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    for name in ["dalu", "des", "seq", "spla", "ex1010"] {
        let profile = paper_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("known circuit");
        let nw = build_circuit(&profile, scale);
        let alpha = full_matrix_sparsity(&nw).max(1e-6);
        let (_, base) = sequential_baseline(&nw);

        let mut row = String::new();
        let mut gamma_est = alpha; // refined per p below; print the p-max estimate
        for &p in &procs {
            let mut run_nw = nw.clone();
            let report = lshaped_extract(
                &mut run_nw,
                &LShapedConfig {
                    procs: p,
                    sequential: false,
                    ..LShapedConfig::default()
                },
            );
            // γ estimate: the L-matrix keeps ~1/p of the rows plus the
            // shipped legs; approximate from the ship ratio.
            let ship_factor = 1.0
                + report.shipped_rectangles as f64 / (report.extractions.max(1) as f64 * p as f64);
            let gamma = (alpha * ship_factor / p as f64).min(alpha);
            gamma_est = gamma;
            let pred = predicted_speedup(p, &SparsityFactors { alpha, gamma });
            let meas = speedup(base.elapsed, report.elapsed);
            row += &format!(" | {:>8.2} {:>8.2}", pred, meas);
        }
        println!("{:>8} {:>8.4} {:>8.4}{row}", name, alpha, gamma_est);
    }
    println!();
    println!("expected shape: predictions and measurements increase together with p;");
    println!("γ → 0 recovers the super-linear p² regime, γ → α the sub-linear one");
}
