//! Table 1 — runtimes of several circuits and the time spent in the
//! kernel extraction routine of a typical synthesis script.
//!
//! Paper columns: circuit, size (LC), factorizations invoked, total
//! factorization time, total synthesis time. The paper's headline: on
//! average 61.45% of synthesis time is factorization — which is why the
//! rest of the paper parallelizes it.

use pf_bench::{build_circuit, env_scale};
use pf_core::script::{run_script, ScriptConfig};
use pf_workloads::table1_profiles;

fn main() {
    let scale = env_scale();
    println!("Table 1 — factorization share of synthesis time (scale {scale})");
    let header = format!(
        "{:>8} {:>9} {:>8} {:>12} {:>12} {:>8}",
        "circuit", "size(LC)", "invoked", "fac time(s)", "syn time(s)", "fac %"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let mut total_fac = 0.0;
    let mut total_syn = 0.0;
    for profile in table1_profiles() {
        let mut nw = build_circuit(&profile, scale);
        let lc = nw.literal_count();
        let report = run_script(&mut nw, &ScriptConfig::default());
        let fac = report.factor_time.as_secs_f64();
        let syn = report.total_time.as_secs_f64();
        total_fac += fac;
        total_syn += syn;
        println!(
            "{:>8} {:>9} {:>8} {:>12.3} {:>12.3} {:>7.1}%",
            profile.name,
            lc,
            report.factor_invocations,
            fac,
            syn,
            100.0 * report.factor_fraction()
        );
    }
    println!(
        "{:>8} {:>9} {:>8} {:>12.3} {:>12.3} {:>7.1}%",
        "total",
        "",
        "",
        total_fac,
        total_syn,
        100.0 * total_fac / total_syn.max(1e-9)
    );
    println!();
    println!("paper: factorization takes 61.45% of total synthesis time on average");
}
