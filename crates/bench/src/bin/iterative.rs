//! Extension bench: iterative repartitioning (ProperPART, the paper's
//! reference [3]) layered on Algorithm I.
//!
//! Compares, per circuit: sequential quality, one-shot Algorithm I, and
//! 3-round iterative repartitioning with resubstitution — reproducing
//! [3]'s finding that repartitioning recovers most of the partition
//! quality loss while staying embarrassingly parallel.

use pf_bench::{build_circuit, env_scale, sequential_baseline};
use pf_core::{independent_extract, iterative_extract, IndependentConfig, IterativeConfig};
use pf_workloads::paper_profiles;

fn main() {
    let scale = env_scale();
    let procs = 4usize;
    println!("iterative repartitioning (ProperPART [3]) vs one-shot Algorithm I");
    println!("p = {procs}, 3 rounds, scale {scale}\n");
    println!(
        "{:>8} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "circuit", "init LC", "SIS LC", "I LC", "iter LC", "recovered"
    );
    for name in ["dalu", "des", "seq", "spla", "ex1010"] {
        let profile = paper_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("known circuit");
        let nw = build_circuit(&profile, scale);
        let init = nw.literal_count();
        let (_, base) = sequential_baseline(&nw);

        let mut one = nw.clone();
        let rep_one = independent_extract(
            &mut one,
            &IndependentConfig {
                procs,
                ..IndependentConfig::default()
            },
        );
        let mut it = nw.clone();
        let rep_it = iterative_extract(
            &mut it,
            &IterativeConfig {
                rounds: 3,
                inner: IndependentConfig {
                    procs,
                    ..IndependentConfig::default()
                },
            },
        );
        // Fraction of the one-shot quality gap closed by iterating.
        let gap = rep_one.lc_after as f64 - base.lc_after as f64;
        let closed = rep_one.lc_after as f64 - rep_it.lc_after as f64;
        let recovered = if gap > 0.0 {
            100.0 * closed / gap
        } else {
            100.0
        };
        println!(
            "{:>8} {:>9} {:>8} {:>9} {:>10} {:>9.0}%",
            name, init, base.lc_after, rep_one.lc_after, rep_it.lc_after, recovered
        );
    }
    println!();
    println!("[3]'s claim: iterative repartitioning 'significantly improves' quality");
    println!("over single-shot partitioning without interactions.");
}
