//! Table 4 — kernel extraction using SIS and L-shaped partitioning on a
//! single processor (§5.1).
//!
//! Paper columns: circuit, initial LC, SIS LC, then LC for 2-, 4- and
//! 6-way L-shaped partitioning, all run sequentially. The point of the
//! table: the L-shaped decomposition by itself costs almost no quality
//! (average ratios 0.690 vs 0.691/0.692/0.691), which justifies using it
//! as the parallel decomposition.

use pf_bench::{build_circuit, env_procs, env_scale, geo_mean, sequential_baseline};
use pf_core::{lshaped_extract, LShapedConfig};
use pf_workloads::paper_profiles;

fn main() {
    let scale = env_scale();
    let ways = env_procs();
    println!("Table 4 — L-shaped partitioning, sequential (scale {scale})");
    let mut header = format!("{:>8} {:>9} {:>8}", "circuit", "init LC", "SIS LC");
    for w in &ways {
        header += &format!(" {:>9}", format!("{w}-way LC"));
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let order = ["misex3", "dalu", "des", "seq", "spla"];
    let mut sis_ratios = Vec::new();
    let mut way_ratios: Vec<Vec<f64>> = vec![Vec::new(); ways.len()];
    for name in order {
        let profile = paper_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("known circuit");
        let nw = build_circuit(&profile, scale);
        let init_lc = nw.literal_count();
        let (_, base) = sequential_baseline(&nw);
        sis_ratios.push(base.lc_after as f64 / init_lc as f64);

        let mut row = format!("{:>8} {:>9} {:>8}", name, init_lc, base.lc_after);
        for (k, &w) in ways.iter().enumerate() {
            let mut run_nw = nw.clone();
            let report = lshaped_extract(
                &mut run_nw,
                &LShapedConfig {
                    procs: w,
                    sequential: true,
                    ..LShapedConfig::default()
                },
            );
            way_ratios[k].push(report.lc_after as f64 / init_lc as f64);
            row += &format!(" {:>9}", report.lc_after);
        }
        println!("{row}");
    }
    let mut avg = format!(
        "{:>8} {:>9} {:>8.3}",
        "average",
        "1.000",
        geo_mean(&sis_ratios)
    );
    for ratios in &way_ratios {
        avg += &format!(" {:>9.3}", geo_mean(ratios));
    }
    println!("{avg}  (ratios of initial LC)");
    println!();
    println!("paper: average 0.690 (SIS) vs 0.691 / 0.692 / 0.691 (2/4/6-way)");
    println!("expected shape: k-way L-shaped quality within a whisker of SIS");
}
