//! Calibration utility: generates every paper profile at the given scale
//! (argument 1, default `PARAFACTOR_SCALE`), runs the sequential
//! baseline and prints size / quality / time — useful to choose a scale
//! before running the table binaries.

use pf_bench::env_scale;
use pf_core::extract_kernels;
use pf_workloads::{generate, paper_profiles, scale_profile};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(env_scale);
    println!("calibration at scale {scale}");
    println!(
        "{:>8} {:>8} {:>8} {:>7} {:>6} {:>12} {:>12}",
        "circuit", "LC", "LC(kx)", "ratio", "extr", "gen time", "kx time"
    );
    for p in paper_profiles() {
        let sp = scale_profile(&p, scale);
        let t = Instant::now();
        let nw = generate(&sp);
        let gen_t = t.elapsed();
        let mut opt = nw.clone();
        let t = Instant::now();
        let r = extract_kernels(&mut opt, &[], &Default::default());
        println!(
            "{:>8} {:>8} {:>8} {:>7.3} {:>6} {:>12.3?} {:>12.3?}",
            p.name,
            r.lc_before,
            r.lc_after,
            r.quality_ratio(),
            r.extractions,
            gen_t,
            t.elapsed()
        );
    }
}
