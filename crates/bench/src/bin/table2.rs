//! Table 2 — parallel kernel extraction using circuit replication
//! (Algorithm R, §3).
//!
//! Paper columns: circuit, initial LC, then (LC, S) for 2, 4 and 6
//! processors, where S is the speedup over the single-processor run of
//! the same algorithm. spla and ex1010 did not terminate in the paper
//! (10 000 s limit / out of memory); here a configurable deadline plays
//! that role and prints `-`.

use pf_bench::{build_circuit, env_deadline, env_procs, env_scale, fmt_lc, fmt_speedup};
use pf_core::{replicated_extract, ReplicatedConfig};
use pf_workloads::paper_profiles;

fn main() {
    let scale = env_scale();
    let procs = env_procs();
    let deadline = env_deadline();
    println!(
        "Table 2 — Algorithm R (replicated circuit), scale {scale}, deadline {}s",
        deadline.as_secs()
    );
    let mut header = format!("{:>8} {:>9}", "circuit", "init LC");
    for p in &procs {
        header += &format!(" | {:>7} {:>6}", format!("LC(p{p})"), "S");
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    // The paper's Table 2 rows: dalu, des, seq finish; spla and ex1010
    // hit the limit.
    let order = ["dalu", "des", "seq", "spla", "ex1010"];
    for name in order {
        let profile = paper_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("known circuit");
        let nw = build_circuit(&profile, scale);
        let init_lc = nw.literal_count();

        // Single-processor run of the same algorithm = the S baseline.
        let mut base_nw = nw.clone();
        let base = replicated_extract(
            &mut base_nw,
            &ReplicatedConfig {
                procs: 1,
                deadline: Some(deadline),
                ..ReplicatedConfig::default()
            },
        );

        let mut row = format!("{:>8} {:>9}", name, init_lc);
        for &p in &procs {
            if base.timed_out {
                row += &format!(" | {:>7} {:>6}", "-", "-");
                continue;
            }
            let mut run_nw = nw.clone();
            let report = replicated_extract(
                &mut run_nw,
                &ReplicatedConfig {
                    procs: p,
                    deadline: Some(deadline),
                    ..ReplicatedConfig::default()
                },
            );
            row += &format!(
                " | {:>7} {:>6}",
                fmt_lc(&report),
                fmt_speedup(base.elapsed, &report)
            );
        }
        println!("{row}");
    }
    println!();
    println!("paper (6 procs): dalu 2139/1.97  des 6092/3.56  seq 2633/2.54  spla -  ex1010 -");
    println!("expected shape: quality identical to sequential; speedup well below linear");
}
