//! Table 6 — the parallel algorithm with L-shaped partitioning on a
//! shared-memory multiprocessor (Algorithm L, §5.4).
//!
//! Paper columns: circuit, initial LC, then (LC, S) for 2, 4 and 6
//! processors; S is the speedup over the sequential SIS kernel
//! extraction (`gkx -bo1` there, our sequential baseline here).
//! Headline: ex1010 runs 11.48× faster on 6 processors with < 0.2%
//! quality degradation.

use pf_bench::{build_circuit, env_procs, env_scale, geo_mean, sequential_baseline};
use pf_core::{lshaped_extract, LShapedConfig};
use pf_workloads::paper_profiles;

fn main() {
    let scale = env_scale();
    let procs = env_procs();
    println!("Table 6 — Algorithm L (L-shaped, threaded), scale {scale}");
    let mut header = format!("{:>8} {:>9} {:>8}", "circuit", "init LC", "SIS LC");
    for p in &procs {
        header += &format!(" | {:>7} {:>6}", format!("LC(p{p})"), "S");
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));

    let order = ["dalu", "des", "seq", "spla", "ex1010"];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); procs.len()];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); procs.len()];
    for name in order {
        let profile = paper_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("known circuit");
        let nw = build_circuit(&profile, scale);
        let init_lc = nw.literal_count();
        let (_, base) = sequential_baseline(&nw);

        let mut row = format!("{:>8} {:>9} {:>8}", name, init_lc, base.lc_after);
        for (k, &p) in procs.iter().enumerate() {
            let mut run_nw = nw.clone();
            let report = lshaped_extract(
                &mut run_nw,
                &LShapedConfig {
                    procs: p,
                    sequential: false,
                    ..LShapedConfig::default()
                },
            );
            let s = pf_bench::speedup(base.elapsed, report.elapsed);
            ratios[k].push(report.lc_after as f64 / base.lc_after.max(1) as f64);
            speedups[k].push(s);
            row += &format!(" | {:>7} {:>6.2}", report.lc_after, s);
        }
        println!("{row}");
    }
    let mut avg = format!("{:>8} {:>9} {:>8}", "average", "", "1.000");
    for k in 0..procs.len() {
        avg += &format!(
            " | {:>7.3} {:>6.2}",
            geo_mean(&ratios[k]),
            geo_mean(&speedups[k])
        );
    }
    println!("{avg}  (LC column = quality ratio vs sequential)");
    println!();
    println!(
        "paper (6 procs): ex1010 11865/11.48, average quality ratio ~1.005 vs SIS, avg S 6.47"
    );
    println!("expected shape: speedups between Algorithms R and I; quality close to SIS");
}
