#![warn(missing_docs)]

//! # pf-bench — the experiment harness
//!
//! One binary per table of the paper (`table1` … `table6`) plus the
//! Equation 3 model check (`eq3`) and a `calibrate` utility. Each binary
//! regenerates its table's rows: same circuits (synthetic analogues,
//! see `pf-workloads`), same processor counts, same columns (literal
//! count and speedup over the sequential run).
//!
//! Environment knobs, honored by every binary:
//!
//! * `PARAFACTOR_SCALE` — circuit scale factor in (0, 1], default 0.35.
//!   1.0 reproduces the paper's literal counts exactly but makes the
//!   spla/ex1010 rows take minutes.
//! * `PARAFACTOR_PROCS` — comma-separated processor counts, default
//!   `2,4,6` (the paper's).
//! * `PARAFACTOR_DEADLINE_SECS` — per-run deadline for Algorithm R,
//!   default 60; runs that exceed it print `-` like the paper's Table 2.

use pf_core::{extract_kernels, ExtractConfig, ExtractReport};
use pf_network::Network;
use pf_workloads::{generate, scale_profile, CircuitProfile};
use std::time::Duration;

/// Scale factor from `PARAFACTOR_SCALE` (default 0.35).
pub fn env_scale() -> f64 {
    std::env::var("PARAFACTOR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|f| *f > 0.0 && *f <= 1.0)
        .unwrap_or(0.35)
}

/// Processor counts from `PARAFACTOR_PROCS` (default `2,4,6`).
pub fn env_procs() -> Vec<usize> {
    std::env::var("PARAFACTOR_PROCS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .filter(|&p| p >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 6])
}

/// Deadline from `PARAFACTOR_DEADLINE_SECS` (default 60 s).
pub fn env_deadline() -> Duration {
    Duration::from_secs(
        std::env::var("PARAFACTOR_DEADLINE_SECS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(60),
    )
}

/// Generates the scaled network of a paper profile.
pub fn build_circuit(profile: &CircuitProfile, scale: f64) -> Network {
    generate(&scale_profile(profile, scale))
}

/// Runs the sequential baseline (SIS-equivalent `gkx`) on a copy and
/// returns the optimized network plus report.
pub fn sequential_baseline(nw: &Network) -> (Network, ExtractReport) {
    let mut copy = nw.clone();
    let report = extract_kernels(&mut copy, &[], &ExtractConfig::default());
    (copy, report)
}

/// Formats a speedup column: `-` when the run timed out.
pub fn fmt_speedup(baseline: Duration, report: &ExtractReport) -> String {
    if report.timed_out {
        "-".to_string()
    } else {
        format!("{:.2}", speedup(baseline, report.elapsed))
    }
}

/// Speedup of `t` over `baseline` (guards division by ~zero).
pub fn speedup(baseline: Duration, t: Duration) -> f64 {
    let b = baseline.as_secs_f64();
    let x = t.as_secs_f64().max(1e-9);
    b / x
}

/// Formats an LC column: `-` when timed out (matching Table 2).
pub fn fmt_lc(report: &ExtractReport) -> String {
    if report.timed_out {
        "-".to_string()
    } else {
        report.lc_after.to_string()
    }
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(header: &str) -> String {
    "-".repeat(header.len())
}

/// Geometric-mean helper used for the tables' "average" rows.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        assert!((speedup(Duration::from_secs(10), Duration::from_secs(2)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn env_defaults() {
        // Does not set the env vars — exercises the default paths.
        assert!(env_scale() > 0.0);
        assert_eq!(env_procs().len(), 3);
        assert!(env_deadline().as_secs() >= 1);
    }
}
