//! Property tests for the network substrate: transforms preserve
//! function, sweep/eliminate shrink or hold literal count, IO round-trips.

use pf_network::io::{read_network, write_network};
use pf_network::sim::{equivalent_random, EquivConfig};
use pf_network::transform::{eliminate_node, eliminate_value, extract_node, sweep};
use pf_network::Network;
use pf_sop::{divide, Cube, Lit, Sop};
use proptest::prelude::*;

/// Random layered network over `n_inputs` PIs and up to `n_nodes` nodes.
fn arb_network(n_inputs: usize, n_nodes: usize) -> impl Strategy<Value = Network> {
    let cube = prop::collection::btree_set(0u32..64, 1..=3usize);
    let node = prop::collection::vec(cube, 1..=5usize);
    prop::collection::vec(node, 1..=n_nodes).prop_map(move |specs| {
        let mut nw = Network::new();
        let inputs: Vec<u32> = (0..n_inputs)
            .map(|i| nw.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut nodes: Vec<u32> = Vec::new();
        for (k, spec) in specs.into_iter().enumerate() {
            let cubes: Vec<Cube> = spec
                .into_iter()
                .map(|srcs| {
                    Cube::from_lits(srcs.into_iter().map(|s| {
                        let pool = inputs.len() + nodes.len();
                        let idx = (s as usize) % pool;
                        if idx < inputs.len() {
                            Lit::pos(inputs[idx])
                        } else {
                            Lit::pos(nodes[idx - inputs.len()])
                        }
                    }))
                })
                .collect();
            let id = nw
                .add_node(format!("n{k}"), Sop::from_cubes(cubes))
                .unwrap();
            nodes.push(id);
        }
        let fo = nw.fanout_map();
        for &n in &nodes {
            if fo[n as usize].is_empty() {
                nw.mark_output(n).unwrap();
            }
        }
        nw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Extracting any divisor computed by algebraic division preserves
    /// the network function.
    #[test]
    fn extraction_of_any_kernel_is_safe(nw in arb_network(5, 6)) {
        let node = nw.node_ids().max_by_key(|&n| nw.func(n).literal_count()).unwrap();
        let ks = pf_sop::kernels(nw.func(node));
        prop_assume!(!ks.is_empty());
        let mut modified = nw.clone();
        let targets: Vec<u32> = modified.node_ids().collect();
        extract_node(&mut modified, "X_prop", ks[0].kernel.clone(), &targets).unwrap();
        prop_assert!(modified.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &modified, &EquivConfig::default()).unwrap());
    }

    /// eliminate_value predicts the literal-count change of elimination
    /// exactly (when elimination succeeds and absorbs nothing).
    #[test]
    fn eliminate_value_bounds_the_lc_change(nw in arb_network(5, 6)) {
        for node in nw.node_ids().collect::<Vec<_>>() {
            if nw.outputs().contains(&node) {
                continue;
            }
            let Some(v) = eliminate_value(&nw, node) else { continue };
            let mut modified = nw.clone();
            let lc_before = modified.literal_count() as isize;
            if !eliminate_node(&mut modified, node).unwrap() {
                continue;
            }
            // After elimination the victim is dead; zero it like sweep would.
            modified.set_func(node, Sop::zero()).unwrap();
            let lc_after = modified.literal_count() as isize;
            // v = n·l − n − l is the no-absorption prediction; algebraic
            // composition can only absorb cubes, so Δ ≤ v.
            prop_assert!(lc_after - lc_before <= v,
                "node {node}: Δ={} v={v}", lc_after - lc_before);
            prop_assert!(equivalent_random(&nw, &modified, &EquivConfig::default()).unwrap());
        }
    }

    /// sweep never increases literal count and preserves function.
    #[test]
    fn sweep_is_safe(nw in arb_network(5, 8)) {
        let mut modified = nw.clone();
        let before = modified.literal_count();
        sweep(&mut modified).unwrap();
        prop_assert!(modified.literal_count() <= before);
        prop_assert!(equivalent_random(&nw, &modified, &EquivConfig::default()).unwrap());
    }

    /// Text IO round-trips both structure and function.
    #[test]
    fn io_roundtrip(nw in arb_network(5, 6)) {
        let text = write_network(&nw);
        let back = read_network(&text).unwrap();
        prop_assert_eq!(back.literal_count(), nw.literal_count());
        prop_assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
    }

    /// BLIF IO round-trips structure and function for arbitrary
    /// (mixed-phase-free) networks.
    #[test]
    fn blif_roundtrip(nw in arb_network(5, 6)) {
        use pf_network::blif::{read_blif, write_blif};
        let text = write_blif(&nw, "prop");
        let back = read_blif(&text).unwrap();
        prop_assert_eq!(back.literal_count(), nw.literal_count());
        prop_assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
        // Idempotent: writing the round-tripped network gives the same text.
        prop_assert_eq!(write_blif(&back, "prop"), text);
    }

    /// Resubstitution never breaks the function and never grows LC.
    #[test]
    fn resub_is_safe(nw in arb_network(5, 7)) {
        use pf_network::resub::resubstitute;
        let mut modified = nw.clone();
        let before = modified.literal_count();
        let rep = resubstitute(&mut modified).unwrap();
        prop_assert!(modified.literal_count() <= before);
        prop_assert_eq!(
            before as isize - modified.literal_count() as isize,
            rep.saved
        );
        prop_assert!(modified.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &modified, &EquivConfig::default()).unwrap());
    }

    /// The indexed worklist engine is byte-identical to the all-pairs
    /// reference: same substitution count, same literals saved, and the
    /// exact same resulting network (textually).
    #[test]
    fn resub_indexed_matches_reference(nw in arb_network(5, 8)) {
        use pf_network::resub::{reference, resubstitute};
        let mut indexed = nw.clone();
        let mut oracle = nw;
        let ri = resubstitute(&mut indexed).unwrap();
        let rr = reference::resubstitute(&mut oracle).unwrap();
        prop_assert_eq!(ri.substitutions, rr.substitutions);
        prop_assert_eq!(ri.saved, rr.saved);
        prop_assert!(ri.pairs_divided >= ri.substitutions);
        prop_assert!(ri.pairs_considered >= ri.pairs_divided);
        prop_assert_eq!(write_network(&indexed), write_network(&oracle));
    }

    /// Division + recomposition via extract/eliminate is the identity on
    /// node functions.
    #[test]
    fn divide_recompose_identity(nw in arb_network(5, 5)) {
        for node in nw.node_ids().collect::<Vec<_>>() {
            let f = nw.func(node);
            for other in nw.node_ids() {
                if other == node { continue; }
                let g = nw.func(other);
                if g.is_zero() || g.is_one() { continue; }
                let d = divide(f, g);
                prop_assert_eq!(d.quotient.product(g).sum(&d.remainder), f.clone());
            }
        }
    }

    /// Topological order always puts fanins before the node.
    #[test]
    fn topo_order_sound(nw in arb_network(5, 8)) {
        let order = nw.topo_order().unwrap();
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for n in nw.node_ids() {
            for fi in nw.fanins(n) {
                prop_assert!(pos[&fi] < pos[&n]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The BLIF parser never panics on arbitrary input — it returns a
    /// network or a structured error.
    #[test]
    fn blif_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = pf_network::blif::read_blif(&text);
    }

    /// Same for the native text reader.
    #[test]
    fn text_parser_never_panics(text in "[ -~\n]{0,400}") {
        let _ = pf_network::io::read_network(&text);
    }
}
