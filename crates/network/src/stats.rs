//! Network statistics: structural depth, factored literal counts, and
//! the summary block SIS prints after synthesis (`print_stats`).

use crate::network::{Network, NetworkError, SignalKind};
use pf_sop::quick_factor;

/// Summary statistics of a network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Internal nodes with non-zero functions.
    pub live_nodes: usize,
    /// SOP literal count (the paper's LC).
    pub lits_sop: usize,
    /// Factored literal count (SIS's lits(fac), via quick_factor).
    pub lits_fac: usize,
    /// Longest input-to-output path, in node levels.
    pub depth: usize,
    /// Total cubes across node functions.
    pub cubes: usize,
}

/// Structural level of every signal: inputs are level 0, a node is one
/// more than its deepest fanin.
pub fn levels(nw: &Network) -> Result<Vec<usize>, NetworkError> {
    let order = nw.topo_order()?;
    let mut level = vec![0usize; nw.num_signals()];
    for s in order {
        if nw.kind(s) != SignalKind::Node {
            continue;
        }
        let max_in = nw
            .fanins(s)
            .iter()
            .map(|&f| level[f as usize])
            .max()
            .unwrap_or(0);
        level[s as usize] = max_in + 1;
    }
    Ok(level)
}

/// The network's depth: the maximum level over the primary outputs (or
/// over all nodes when no outputs are marked).
pub fn depth(nw: &Network) -> Result<usize, NetworkError> {
    let level = levels(nw)?;
    let over_outputs = nw.outputs().iter().map(|&o| level[o as usize]).max();
    Ok(over_outputs
        .or_else(|| nw.node_ids().map(|n| level[n as usize]).max())
        .unwrap_or(0))
}

/// Factored literal count of the whole network (Σ per-node
/// `quick_factor` literal counts).
pub fn factored_literal_count(nw: &Network) -> usize {
    nw.node_ids()
        .map(|n| quick_factor(nw.func(n)).literal_count())
        .sum()
}

/// Gathers the full statistics block.
pub fn stats(nw: &Network) -> Result<NetworkStats, NetworkError> {
    Ok(NetworkStats {
        inputs: nw.input_ids().count(),
        outputs: nw.outputs().len(),
        live_nodes: nw.node_ids().filter(|&n| !nw.func(n).is_zero()).count(),
        lits_sop: nw.literal_count(),
        lits_fac: factored_literal_count(nw),
        depth: depth(nw)?,
        cubes: nw.node_ids().map(|n| nw.func(n).num_cubes()).sum(),
    })
}

/// Per-signal slack-style depth weights used by the timing-driven value
/// model: a signal's weight is `1 + its level`, so cubes of deep nodes
/// are worth more to shorten.
pub fn depth_weights(nw: &Network) -> Result<Vec<u32>, NetworkError> {
    Ok(levels(nw)?.into_iter().map(|l| 1 + l as u32).collect())
}

/// Per-signal switching-activity estimates for the power-driven value
/// model: the fraction of 64·`rounds` random vectors on which the signal
/// toggles from its previous vector, scaled to 1..=256.
pub fn activity_weights(nw: &Network, rounds: usize, seed: u64) -> Result<Vec<u32>, NetworkError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_in = nw.input_ids().count();
    let mut toggles = vec![0u32; nw.num_signals()];
    let mut total_bits = 0u32;
    for _ in 0..rounds.max(1) {
        let words: Vec<u64> = (0..n_in).map(|_| rng.gen()).collect();
        let values = crate::sim::simulate(nw, &words)?;
        for (s, v) in values.iter().enumerate() {
            // Adjacent-bit toggles within the packed word.
            toggles[s] += (v ^ (v >> 1)).count_ones();
        }
        total_bits += 63;
    }
    Ok(toggles
        .into_iter()
        .map(|t| 1 + (t * 255) / total_bits.max(1))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::example_1_1;
    use pf_sop::{Cube, Lit, Sop};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    #[test]
    fn levels_count_node_hops() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let n0 = nw.add_node("n0", sop_of(&[&[a]])).unwrap();
        let n1 = nw.add_node("n1", sop_of(&[&[n0]])).unwrap();
        let n2 = nw.add_node("n2", sop_of(&[&[n1, a]])).unwrap();
        nw.mark_output(n2).unwrap();
        let l = levels(&nw).unwrap();
        assert_eq!(l[a as usize], 0);
        assert_eq!(l[n0 as usize], 1);
        assert_eq!(l[n1 as usize], 2);
        assert_eq!(l[n2 as usize], 3);
        assert_eq!(depth(&nw).unwrap(), 3);
    }

    #[test]
    fn example_network_stats() {
        let (nw, _) = example_1_1();
        let s = stats(&nw).unwrap();
        assert_eq!(s.inputs, 7);
        assert_eq!(s.outputs, 3);
        assert_eq!(s.live_nodes, 3);
        assert_eq!(s.lits_sop, 33);
        assert!(s.lits_fac <= s.lits_sop);
        assert_eq!(s.depth, 1); // flat two-level network
        assert_eq!(s.cubes, 13);
    }

    #[test]
    fn factored_count_shrinks_after_factoring_structure() {
        // F factored is much smaller than its SOP.
        let (nw, ids) = example_1_1();
        let fac = pf_sop::quick_factor(nw.func(ids.f));
        assert!(fac.literal_count() < nw.func(ids.f).literal_count());
    }

    #[test]
    fn depth_weights_grow_with_level() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let n0 = nw.add_node("n0", sop_of(&[&[a]])).unwrap();
        let n1 = nw.add_node("n1", sop_of(&[&[n0]])).unwrap();
        nw.mark_output(n1).unwrap();
        let w = depth_weights(&nw).unwrap();
        assert!(w[n1 as usize] > w[n0 as usize]);
        assert!(w[n0 as usize] > w[a as usize]);
    }

    #[test]
    fn activity_weights_are_positive_and_bounded() {
        let (nw, _) = example_1_1();
        let w = activity_weights(&nw, 8, 42).unwrap();
        assert_eq!(w.len(), nw.num_signals());
        for x in w {
            assert!((1..=256).contains(&x));
        }
    }

    #[test]
    fn activity_deterministic_for_seed() {
        let (nw, _) = example_1_1();
        assert_eq!(
            activity_weights(&nw, 4, 7).unwrap(),
            activity_weights(&nw, 4, 7).unwrap()
        );
    }
}
