//! The paper's worked example network (Example 1.1, Equation 1).
//!
//! `N = {F, G, H}` over primary inputs `a..g`:
//!
//! ```text
//! F = af + bf + ag + cg + ade + bde + cde
//! G = af + bf + ace + bce
//! H = ade + cde
//! ```
//!
//! Literal count 33; extracting the kernel `X = a + b` from `F` and `G`
//! reduces it to 25 (Example 1.1), and the independent two-way partition
//! `{F} / {G, H}` reaches only 26 (Example 4.1). These numbers are golden
//! values for tests across the workspace.

use crate::network::{Network, SignalId};
use pf_sop::{Cube, Lit, Sop};

/// Handles to the signals of the example network.
#[derive(Clone, Copy, Debug)]
pub struct Example11 {
    /// Primary input `a`.
    pub a: SignalId,
    /// Primary input `b`.
    pub b: SignalId,
    /// Primary input `c`.
    pub c: SignalId,
    /// Primary input `d`.
    pub d: SignalId,
    /// Primary input `e`.
    pub e: SignalId,
    /// Primary input `f` (named `f_in` to avoid clashing with node F).
    pub f_in: SignalId,
    /// Primary input `g` (named `g_in` to avoid clashing with node G).
    pub g_in: SignalId,
    /// Node `F`.
    pub f: SignalId,
    /// Node `G`.
    pub g: SignalId,
    /// Node `H`.
    pub h: SignalId,
}

fn cube(vars: &[SignalId]) -> Cube {
    Cube::from_lits(vars.iter().map(|&v| Lit::pos(v)))
}

/// Builds the network of Equation 1. All three nodes are primary outputs.
pub fn example_1_1() -> (Network, Example11) {
    let mut nw = Network::new();
    let a = nw.add_input("a").unwrap();
    let b = nw.add_input("b").unwrap();
    let c = nw.add_input("c").unwrap();
    let d = nw.add_input("d").unwrap();
    let e = nw.add_input("e").unwrap();
    let f_in = nw.add_input("f").unwrap();
    let g_in = nw.add_input("g").unwrap();

    let f_expr = Sop::from_cubes([
        cube(&[a, f_in]),
        cube(&[b, f_in]),
        cube(&[a, g_in]),
        cube(&[c, g_in]),
        cube(&[a, d, e]),
        cube(&[b, d, e]),
        cube(&[c, d, e]),
    ]);
    let g_expr = Sop::from_cubes([
        cube(&[a, f_in]),
        cube(&[b, f_in]),
        cube(&[a, c, e]),
        cube(&[b, c, e]),
    ]);
    let h_expr = Sop::from_cubes([cube(&[a, d, e]), cube(&[c, d, e])]);

    let f = nw.add_node("F", f_expr).unwrap();
    let g = nw.add_node("G", g_expr).unwrap();
    let h = nw.add_node("H", h_expr).unwrap();
    for o in [f, g, h] {
        nw.mark_output(o).unwrap();
    }
    debug_assert_eq!(nw.literal_count(), 33);
    (
        nw,
        Example11 {
            a,
            b,
            c,
            d,
            e,
            f_in,
            g_in,
            f,
            g,
            h,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{equivalent_random, EquivConfig};
    use crate::transform::extract_node;

    #[test]
    fn initial_literal_count_is_33() {
        let (nw, ids) = example_1_1();
        assert_eq!(nw.literal_count(), 33);
        assert_eq!(nw.func(ids.f).literal_count(), 17);
        assert_eq!(nw.func(ids.g).literal_count(), 10);
        assert_eq!(nw.func(ids.h).literal_count(), 6);
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn extracting_a_plus_b_gives_25_literals() {
        // Example 1.1: factoring X = a + b out of F and G saves 8 literals.
        let (mut nw, ids) = example_1_1();
        let original = nw.clone();
        let x_func = Sop::from_cubes([cube(&[ids.a]), cube(&[ids.b])]);
        extract_node(&mut nw, "X", x_func, &[ids.f, ids.g]).unwrap();
        assert_eq!(nw.literal_count(), 25);
        // F = fX + deX + ag + cg + cde (12), G = fX + ceX (5), H (6), X (2)
        assert_eq!(nw.func(ids.f).literal_count(), 12);
        assert_eq!(nw.func(ids.g).literal_count(), 5);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn example_4_1_independent_partitions_reach_26() {
        // Partition {F} and {G, H}; extract X=a+b in F, Z=a+b in G and
        // Y=a+c in H — the duplicated kernel costs 26 vs SIS's 22.
        // (Equation 2 of the paper; "SIS 22" needs the further extraction
        // of Y = de + f which the greedy single-kernel walk reaches via
        // the full matrix — checked in pf-core integration tests.)
        let (mut nw, ids) = example_1_1();
        let original = nw.clone();
        let x = Sop::from_cubes([cube(&[ids.a]), cube(&[ids.b])]);
        extract_node(&mut nw, "X", x.clone(), &[ids.f]).unwrap();
        extract_node(&mut nw, "Z", x, &[ids.g]).unwrap();
        let y = Sop::from_cubes([cube(&[ids.a]), cube(&[ids.c])]);
        extract_node(&mut nw, "Y", y, &[ids.h]).unwrap();
        assert_eq!(nw.literal_count(), 26);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }
}
