//! BLIF (Berkeley Logic Interchange Format) reader and writer — the
//! format SIS itself speaks, so real benchmark circuits can be moved in
//! and out of this tool.
//!
//! Supported subset: combinational `.model` / `.inputs` / `.outputs` /
//! `.names` / `.end` with `\` line continuations and `#` comments.
//! `.names` covers use the single-output on-set form (input plane over
//! `{0,1,-}`, output `1`), which is what synthesized MCNC circuits use.
//! Latches, multiple models and off-set covers are rejected with a
//! descriptive error.

use crate::network::{Network, NetworkError, SignalId};
use pf_sop::fx::FxHashMap;
use pf_sop::{Cube, Lit, Sop, Var};
use std::fmt::Write as _;

/// Errors from the BLIF reader.
#[derive(Debug)]
pub enum BlifError {
    /// Malformed or unsupported construct.
    Syntax {
        /// 1-based line number of the offending construct.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The finished network failed validation.
    Network(NetworkError),
}

impl std::fmt::Display for BlifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlifError::Syntax { line, msg } => write!(f, "blif line {line}: {msg}"),
            BlifError::Network(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for BlifError {}

impl From<NetworkError> for BlifError {
    fn from(e: NetworkError) -> Self {
        BlifError::Network(e)
    }
}

/// Logical lines of a BLIF file: comments stripped, `\` continuations
/// joined, blank lines dropped. Returns `(first physical line, text)`.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (no, raw) in text.lines().enumerate() {
        let mut line = raw.split('#').next().unwrap_or("").trim_end().to_string();
        let continued = line.ends_with('\\');
        if continued {
            line.pop();
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(line.trim());
                if continued {
                    pending = Some((start, acc));
                } else if !acc.trim().is_empty() {
                    out.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((no + 1, line.trim().to_string()));
                } else if !line.trim().is_empty() {
                    out.push((no + 1, line.trim().to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        if !acc.trim().is_empty() {
            out.push((start, acc));
        }
    }
    out
}

/// Parses a combinational BLIF model into a [`Network`].
pub fn read_blif(text: &str) -> Result<Network, BlifError> {
    struct Names {
        line: usize,
        signals: Vec<String>, // inputs then the output last
        rows: Vec<String>,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut tables: Vec<Names> = Vec::new();
    let mut current: Option<Names> = None;
    let mut seen_model = false;

    for (line, text) in logical_lines(text) {
        let mut toks = text.split_whitespace();
        let head = toks.next().unwrap_or("");
        let is_directive = head.starts_with('.');
        if is_directive {
            if let Some(t) = current.take() {
                tables.push(t);
            }
        }
        match head {
            ".model" => {
                if seen_model {
                    return Err(BlifError::Syntax {
                        line,
                        msg: "multiple .model blocks are not supported".into(),
                    });
                }
                seen_model = true;
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                let signals: Vec<String> = toks.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(BlifError::Syntax {
                        line,
                        msg: ".names needs at least an output".into(),
                    });
                }
                current = Some(Names {
                    line,
                    signals,
                    rows: Vec::new(),
                });
            }
            ".end" => {}
            ".latch" | ".gate" | ".mlatch" | ".subckt" => {
                return Err(BlifError::Syntax {
                    line,
                    msg: format!("{head} is not supported (combinational subset only)"),
                });
            }
            _ if is_directive => {
                return Err(BlifError::Syntax {
                    line,
                    msg: format!("unknown directive {head}"),
                });
            }
            _ => match current.as_mut() {
                Some(t) => t.rows.push(text.clone()),
                None => {
                    return Err(BlifError::Syntax {
                        line,
                        msg: "cover row outside a .names block".into(),
                    });
                }
            },
        }
    }
    if let Some(t) = current.take() {
        tables.push(t);
    }

    // Declare signals: inputs first, then one node per .names output.
    let mut nw = Network::new();
    for name in &inputs {
        nw.add_input(name.clone())?;
    }
    for t in &tables {
        let out_name = t.signals.last().expect("nonempty");
        nw.add_node(out_name.clone(), Sop::zero())?;
    }
    let lookup: FxHashMap<String, SignalId> = nw
        .signal_ids()
        .map(|s| (nw.name(s).to_string(), s))
        .collect();

    // Parse covers.
    for t in &tables {
        let out_name = t.signals.last().unwrap();
        let fanins = &t.signals[..t.signals.len() - 1];
        let node = lookup[out_name];
        let mut cubes: Vec<Cube> = Vec::new();
        let mut is_const_one = false;
        for row in &t.rows {
            let mut parts = row.split_whitespace();
            let (plane, out_bit) = if fanins.is_empty() {
                ("", parts.next().unwrap_or(""))
            } else {
                (parts.next().unwrap_or(""), parts.next().unwrap_or(""))
            };
            if out_bit != "1" {
                return Err(BlifError::Syntax {
                    line: t.line,
                    msg: format!("off-set cover rows (output {out_bit:?}) are not supported"),
                });
            }
            if fanins.is_empty() {
                is_const_one = true;
                continue;
            }
            if plane.len() != fanins.len() {
                return Err(BlifError::Syntax {
                    line: t.line,
                    msg: format!(
                        "cover row {row:?} has {} plane columns, .names lists {} inputs",
                        plane.len(),
                        fanins.len()
                    ),
                });
            }
            let mut lits = Vec::new();
            for (ch, name) in plane.chars().zip(fanins.iter()) {
                let id = *lookup.get(name).ok_or_else(|| BlifError::Syntax {
                    line: t.line,
                    msg: format!("unknown signal {name:?}"),
                })?;
                match ch {
                    '1' => lits.push(Lit::new(Var::new(id), false)),
                    '0' => lits.push(Lit::new(Var::new(id), true)),
                    '-' => {}
                    _ => {
                        return Err(BlifError::Syntax {
                            line: t.line,
                            msg: format!("bad plane character {ch:?}"),
                        });
                    }
                }
            }
            cubes.push(Cube::from_lits(lits));
        }
        let func = if is_const_one {
            Sop::one()
        } else {
            Sop::from_cubes(cubes)
        };
        nw.set_func(node, func)?;
    }
    for name in &outputs {
        let id = *lookup.get(name).ok_or_else(|| BlifError::Syntax {
            line: 0,
            msg: format!("unknown output {name:?}"),
        })?;
        nw.mark_output(id)?;
    }
    nw.validate()?;
    Ok(nw)
}

/// Writes a network as a combinational BLIF model.
pub fn write_blif(nw: &Network, model_name: &str) -> String {
    let mut out = String::new();
    writeln!(out, ".model {model_name}").unwrap();
    let inputs: Vec<&str> = nw.input_ids().map(|i| nw.name(i)).collect();
    if !inputs.is_empty() {
        writeln!(out, ".inputs {}", inputs.join(" ")).unwrap();
    }
    if !nw.outputs().is_empty() {
        let names: Vec<&str> = nw.outputs().iter().map(|&o| nw.name(o)).collect();
        writeln!(out, ".outputs {}", names.join(" ")).unwrap();
    }
    for n in nw.node_ids() {
        let f = nw.func(n);
        let fanins = nw.fanins(n);
        if f.is_zero() {
            // Constant 0: a .names with no rows.
            writeln!(out, ".names {}", nw.name(n)).unwrap();
            continue;
        }
        if f.is_one() {
            writeln!(out, ".names {}", nw.name(n)).unwrap();
            writeln!(out, "1").unwrap();
            continue;
        }
        let fanin_names: Vec<&str> = fanins.iter().map(|&s| nw.name(s)).collect();
        writeln!(out, ".names {} {}", fanin_names.join(" "), nw.name(n)).unwrap();
        for cube in f.iter() {
            let mut plane = String::with_capacity(fanins.len());
            for &fi in &fanins {
                let pos = cube.contains(Lit::new(Var::new(fi), false));
                let neg = cube.contains(Lit::new(Var::new(fi), true));
                plane.push(if pos {
                    '1'
                } else if neg {
                    '0'
                } else {
                    '-'
                });
            }
            writeln!(out, "{plane} 1").unwrap();
        }
    }
    writeln!(out, ".end").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::example_1_1;
    use crate::sim::{equivalent_random, EquivConfig};

    #[test]
    fn roundtrip_example_network() {
        let (nw, _) = example_1_1();
        let text = write_blif(&nw, "example11");
        let back = read_blif(&text).unwrap();
        assert_eq!(back.literal_count(), nw.literal_count());
        assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn parses_basic_model() {
        let text = "
.model tiny
.inputs a b c
.outputs f
.names a b c f
11- 1
--1 1
.end
";
        let nw = read_blif(text).unwrap();
        let f = nw.find("f").unwrap();
        assert_eq!(nw.func(f).num_cubes(), 2);
        assert_eq!(nw.func(f).literal_count(), 3); // ab + c
    }

    #[test]
    fn zero_plane_means_complemented_literal() {
        let text = "
.model t
.inputs a b
.outputs f
.names a b f
01 1
.end
";
        let nw = read_blif(text).unwrap();
        let f = nw.find("f").unwrap();
        let cube = &nw.func(f).cubes()[0];
        let a = nw.find("a").unwrap();
        let b = nw.find("b").unwrap();
        assert!(cube.contains(Lit::new(Var::new(a), true)));
        assert!(cube.contains(Lit::new(Var::new(b), false)));
    }

    #[test]
    fn constants_roundtrip() {
        let text = "
.model c
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let nw = read_blif(text).unwrap();
        assert!(nw.func(nw.find("one").unwrap()).is_one());
        assert!(nw.func(nw.find("zero").unwrap()).is_zero());
        let back = read_blif(&write_blif(&nw, "c")).unwrap();
        assert!(back.func(back.find("one").unwrap()).is_one());
    }

    #[test]
    fn line_continuations_and_comments() {
        let text = "
# a circuit
.model t
.inputs a \\
        b
.outputs f
.names a b f  # the AND
11 1
.end
";
        let nw = read_blif(text).unwrap();
        assert_eq!(nw.input_ids().count(), 2);
        assert_eq!(nw.literal_count(), 2);
    }

    #[test]
    fn latch_rejected() {
        let text = ".model t\n.inputs a\n.latch a q\n.end";
        let err = read_blif(text).unwrap_err();
        assert!(matches!(err, BlifError::Syntax { .. }), "{err}");
    }

    #[test]
    fn offset_cover_rejected() {
        let text = ".model t\n.inputs a\n.outputs f\n.names a f\n1 0\n.end";
        let err = read_blif(text).unwrap_err();
        assert!(err.to_string().contains("off-set"));
    }

    #[test]
    fn plane_width_mismatch_rejected() {
        let text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end";
        assert!(read_blif(text).is_err());
    }

    #[test]
    fn multilevel_blif_roundtrip() {
        let text = "
.model ml
.inputs a b c
.outputs f
.names a b g
11 1
.names g c f
1- 1
-1 1
.end
";
        let nw = read_blif(text).unwrap();
        let back = read_blif(&write_blif(&nw, "ml")).unwrap();
        assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn factored_then_blif_equivalence() {
        // Optimize, write BLIF, read back, still equivalent to original.
        let (nw, _) = example_1_1();
        let mut opt = nw.clone();
        pf_sop::quick_factor(opt.func(opt.find("F").unwrap())); // smoke
        crate::transform::sweep(&mut opt).unwrap();
        let back = read_blif(&write_blif(&opt, "opt")).unwrap();
        assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
    }
}
