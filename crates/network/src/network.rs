//! The multi-level Boolean network.

use pf_sop::fx::FxHashMap;
use pf_sop::{Sop, Var};
use std::fmt;

/// Index of a signal (primary input or internal node). Shares the index
/// space of [`pf_sop::Var`]: variable `i` is the output of signal `i`.
pub type SignalId = u32;

/// What a signal is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalKind {
    /// A primary input; has no function.
    PrimaryInput,
    /// An internal node with an SOP function.
    Node,
}

/// Errors reported by [`Network`] construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node function references a signal id that does not exist.
    DanglingReference {
        /// The node whose function holds the reference.
        node: SignalId,
        /// The unknown signal id.
        referenced: u32,
    },
    /// The node dependency graph has a cycle through this signal.
    Cycle(SignalId),
    /// Duplicate signal name.
    DuplicateName(String),
    /// An operation addressed a primary input where a node was required.
    NotANode(SignalId),
    /// Signal id out of range.
    NoSuchSignal(SignalId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DanglingReference { node, referenced } => {
                write!(f, "node {node} references unknown signal {referenced}")
            }
            NetworkError::Cycle(s) => write!(f, "combinational cycle through signal {s}"),
            NetworkError::DuplicateName(n) => write!(f, "duplicate signal name {n:?}"),
            NetworkError::NotANode(s) => write!(f, "signal {s} is not an internal node"),
            NetworkError::NoSuchSignal(s) => write!(f, "no signal {s}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A multi-level combinational logic network.
///
/// Nodes hold sum-of-products functions over the variables of other
/// signals. The network designates a subset of signals as primary
/// outputs; those (and everything in their transitive fanin) are the
/// observable behaviour that optimizations must preserve.
///
/// ```
/// use pf_network::Network;
/// use pf_sop::{Cube, Lit, Sop};
///
/// let mut nw = Network::new();
/// let a = nw.add_input("a").unwrap();
/// let b = nw.add_input("b").unwrap();
/// let f = nw.add_node("f", Sop::from_cubes([
///     Cube::from_lits([Lit::pos(a)]),
///     Cube::from_lits([Lit::pos(b)]),
/// ])).unwrap();
/// nw.mark_output(f).unwrap();
/// assert_eq!(nw.literal_count(), 2);
/// assert_eq!(nw.fanins(f), vec![a, b]);
/// assert!(nw.validate().is_ok());
/// ```
#[derive(Clone, Default)]
pub struct Network {
    names: Vec<String>,
    kinds: Vec<SignalKind>,
    funcs: Vec<Sop>, // empty Sop for PIs (unused)
    outputs: Vec<SignalId>,
    by_name: FxHashMap<String, SignalId>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a primary input. Names must be unique network-wide.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<SignalId, NetworkError> {
        self.add_signal(name.into(), SignalKind::PrimaryInput, Sop::zero())
    }

    /// Adds an internal node with function `func`.
    ///
    /// References inside `func` are *not* checked here (forward
    /// references are allowed during construction); call
    /// [`Network::validate`] once the network is complete.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        func: Sop,
    ) -> Result<SignalId, NetworkError> {
        self.add_signal(name.into(), SignalKind::Node, func)
    }

    fn add_signal(
        &mut self,
        name: String,
        kind: SignalKind,
        func: Sop,
    ) -> Result<SignalId, NetworkError> {
        if self.by_name.contains_key(&name) {
            return Err(NetworkError::DuplicateName(name));
        }
        let id = self.names.len() as SignalId;
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.kinds.push(kind);
        self.funcs.push(func);
        Ok(id)
    }

    /// Marks a signal as a primary output.
    pub fn mark_output(&mut self, id: SignalId) -> Result<(), NetworkError> {
        self.check_id(id)?;
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        Ok(())
    }

    /// Number of signals (inputs + nodes).
    pub fn num_signals(&self) -> usize {
        self.names.len()
    }

    /// Ids of all signals.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        0..self.names.len() as SignalId
    }

    /// Ids of internal nodes only.
    pub fn node_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.signal_ids()
            .filter(|&s| self.kinds[s as usize] == SignalKind::Node)
    }

    /// Ids of primary inputs.
    pub fn input_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.signal_ids()
            .filter(|&s| self.kinds[s as usize] == SignalKind::PrimaryInput)
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Signal kind.
    pub fn kind(&self, id: SignalId) -> SignalKind {
        self.kinds[id as usize]
    }

    /// Signal name.
    pub fn name(&self, id: SignalId) -> &str {
        &self.names[id as usize]
    }

    /// Looks a signal up by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// The variable carrying this signal's value.
    pub fn var(&self, id: SignalId) -> Var {
        Var::new(id)
    }

    /// The function of a node.
    ///
    /// # Panics
    /// Panics when `id` is a primary input.
    pub fn func(&self, id: SignalId) -> &Sop {
        assert_eq!(
            self.kinds[id as usize],
            SignalKind::Node,
            "signal {id} is a primary input"
        );
        &self.funcs[id as usize]
    }

    /// Replaces the function of a node.
    pub fn set_func(&mut self, id: SignalId, func: Sop) -> Result<(), NetworkError> {
        self.check_id(id)?;
        if self.kinds[id as usize] != SignalKind::Node {
            return Err(NetworkError::NotANode(id));
        }
        self.funcs[id as usize] = func;
        Ok(())
    }

    /// The distinct signals referenced by a node's function (its fanins).
    pub fn fanins(&self, id: SignalId) -> Vec<SignalId> {
        if self.kinds[id as usize] != SignalKind::Node {
            return Vec::new();
        }
        let mut ids: Vec<SignalId> = self.funcs[id as usize]
            .support_lits()
            .iter()
            .map(|l| l.var().index())
            .collect();
        ids.dedup(); // support_lits is sorted by lit → vars sorted with dups adjacent
        ids
    }

    /// Fanout map: for every signal, the list of nodes whose function
    /// references it. O(total literals).
    pub fn fanout_map(&self) -> Vec<Vec<SignalId>> {
        let mut out = vec![Vec::new(); self.num_signals()];
        for n in self.node_ids() {
            for fi in self.fanins(n) {
                out[fi as usize].push(n);
            }
        }
        out
    }

    /// Total literal count over all internal nodes — the paper's **LC**
    /// area metric.
    pub fn literal_count(&self) -> usize {
        self.node_ids()
            .map(|n| self.funcs[n as usize].literal_count())
            .sum()
    }

    /// Topological order of all signals (inputs first, then nodes in
    /// dependency order). Fails on combinational cycles.
    pub fn topo_order(&self) -> Result<Vec<SignalId>, NetworkError> {
        let n = self.num_signals();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut order = Vec::with_capacity(n);
        // Fanin lists computed once up front; the DFS below revisits them.
        let fanins: Vec<Vec<SignalId>> = self.signal_ids().map(|s| self.fanins(s)).collect();
        // Iterative DFS to avoid stack overflow on deep networks.
        for root in self.signal_ids() {
            if state[root as usize] != 0 {
                continue;
            }
            let mut stack: Vec<(SignalId, usize)> = vec![(root, 0)];
            state[root as usize] = 1;
            while let Some(&mut (s, ref mut next)) = stack.last_mut() {
                let fis = &fanins[s as usize];
                if *next < fis.len() {
                    let child = fis[*next];
                    *next += 1;
                    if child as usize >= n {
                        return Err(NetworkError::DanglingReference {
                            node: s,
                            referenced: child,
                        });
                    }
                    match state[child as usize] {
                        0 => {
                            state[child as usize] = 1;
                            stack.push((child, 0));
                        }
                        1 => return Err(NetworkError::Cycle(child)),
                        _ => {}
                    }
                } else {
                    state[s as usize] = 2;
                    order.push(s);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Structural validation: all references resolve, no cycles.
    pub fn validate(&self) -> Result<(), NetworkError> {
        for node in self.node_ids() {
            for lit in self.funcs[node as usize].support_lits() {
                if lit.var().index() as usize >= self.num_signals() {
                    return Err(NetworkError::DanglingReference {
                        node,
                        referenced: lit.var().index(),
                    });
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    fn check_id(&self, id: SignalId) -> Result<(), NetworkError> {
        if (id as usize) < self.num_signals() {
            Ok(())
        } else {
            Err(NetworkError::NoSuchSignal(id))
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Network[{} inputs, {} nodes, LC={}]",
            self.input_ids().count(),
            self.node_ids().count(),
            self.literal_count()
        )?;
        for n in self.node_ids() {
            writeln!(f, "  {} = {:?}", self.name(n), self.funcs[n as usize])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::{Cube, Lit};

    fn sop_of(vars: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            vars.iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    #[test]
    fn build_and_query() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, b]])).unwrap();
        nw.mark_output(f).unwrap();
        assert_eq!(nw.num_signals(), 3);
        assert_eq!(nw.kind(a), SignalKind::PrimaryInput);
        assert_eq!(nw.kind(f), SignalKind::Node);
        assert_eq!(nw.fanins(f), vec![a, b]);
        assert_eq!(nw.literal_count(), 2);
        assert_eq!(nw.find("f"), Some(f));
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nw = Network::new();
        nw.add_input("x").unwrap();
        assert!(matches!(
            nw.add_input("x"),
            Err(NetworkError::DuplicateName(_))
        ));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[g, a]])).unwrap();
        let order = nw.topo_order().unwrap();
        let pos = |s: SignalId| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(a) < pos(g));
        assert!(pos(g) < pos(f));
    }

    #[test]
    fn cycle_detected() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        // f references g before g exists; then g references f — a cycle.
        let f = nw.add_node("f", sop_of(&[&[a, 2]])).unwrap();
        let _g = nw.add_node("g", sop_of(&[&[f]])).unwrap();
        assert!(matches!(nw.validate(), Err(NetworkError::Cycle(_))));
    }

    #[test]
    fn dangling_reference_detected() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        nw.add_node("f", sop_of(&[&[a, 99]])).unwrap();
        assert!(matches!(
            nw.validate(),
            Err(NetworkError::DanglingReference { .. })
        ));
    }

    #[test]
    fn fanout_map_inverse_of_fanins() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[g, a]])).unwrap();
        let fo = nw.fanout_map();
        assert_eq!(fo[a as usize], vec![g, f]);
        assert_eq!(fo[g as usize], vec![f]);
        assert!(fo[f as usize].is_empty());
    }

    #[test]
    fn set_func_only_on_nodes() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        assert!(matches!(
            nw.set_func(a, Sop::one()),
            Err(NetworkError::NotANode(_))
        ));
    }

    #[test]
    fn negative_phase_fanins_counted_once() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let f = nw
            .add_node(
                "f",
                Sop::from_cubes([
                    Cube::from_lits([Lit::pos(a)]),
                    Cube::from_lits([Lit::neg(a)]),
                ]),
            )
            .unwrap();
        assert_eq!(nw.fanins(f), vec![a]);
        assert_eq!(nw.literal_count(), 2);
    }
}
