//! Random-vector simulation and functional-equivalence checking.
//!
//! Equivalence under algebraic transforms is the workspace's test oracle:
//! every optimizer (sequential or parallel) must leave the primary
//! outputs' functions unchanged. Formal equivalence of multi-level
//! networks is co-NP-hard, so we follow standard practice and compare
//! 64 vectors at a time with bit-parallel simulation over many random
//! draws; the planted workloads make escapes vanishingly unlikely.

use crate::network::{Network, NetworkError, SignalId, SignalKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`equivalent_random`].
#[derive(Clone, Copy, Debug)]
pub struct EquivConfig {
    /// Number of 64-bit-parallel simulation rounds (total vectors =
    /// `rounds * 64`).
    pub rounds: usize,
    /// RNG seed, so failures are reproducible.
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            rounds: 64,
            seed: 0x5eed_cafe,
        }
    }
}

/// Evaluates the network on one assignment of 64 packed input vectors:
/// `inputs[i]` holds 64 Boolean values for primary input `i` (indexed by
/// position among [`Network::input_ids`]). Returns the packed values of
/// every signal.
pub fn simulate(nw: &Network, inputs: &[u64]) -> Result<Vec<u64>, NetworkError> {
    let order = nw.topo_order()?;
    let mut values = vec![0u64; nw.num_signals()];
    let input_ids: Vec<SignalId> = nw.input_ids().collect();
    assert_eq!(
        inputs.len(),
        input_ids.len(),
        "one packed word per primary input"
    );
    for (slot, &id) in input_ids.iter().enumerate() {
        values[id as usize] = inputs[slot];
    }
    for s in order {
        if nw.kind(s) != SignalKind::Node {
            continue;
        }
        let f = nw.func(s);
        let mut acc = 0u64;
        for cube in f.iter() {
            let mut term = !0u64;
            for lit in cube.iter() {
                let v = values[lit.var().index() as usize];
                term &= if lit.is_negated() { !v } else { v };
            }
            acc |= term;
        }
        values[s as usize] = acc;
    }
    Ok(values)
}

/// Evaluates only the primary outputs on one packed assignment.
pub fn simulate_outputs(nw: &Network, inputs: &[u64]) -> Result<Vec<u64>, NetworkError> {
    let values = simulate(nw, inputs)?;
    Ok(nw.outputs().iter().map(|&o| values[o as usize]).collect())
}

/// Checks that two networks compute the same primary-output functions on
/// `cfg.rounds * 64` random input vectors. Inputs and outputs are matched
/// **by name**, so the networks may differ arbitrarily in internal
/// structure (extra extracted nodes, different node order).
///
/// Returns `Ok(true)` when no distinguishing vector was found.
pub fn equivalent_random(
    a: &Network,
    b: &Network,
    cfg: &EquivConfig,
) -> Result<bool, NetworkError> {
    let a_inputs: Vec<&str> = a.input_ids().map(|i| a.name(i)).collect();
    let b_inputs: Vec<&str> = b.input_ids().map(|i| b.name(i)).collect();
    let mut a_sorted = a_inputs.clone();
    a_sorted.sort_unstable();
    let mut b_sorted = b_inputs.clone();
    b_sorted.sort_unstable();
    if a_sorted != b_sorted {
        return Ok(false);
    }
    let a_out: Vec<&str> = a.outputs().iter().map(|&o| a.name(o)).collect();
    let b_out: Vec<&str> = b.outputs().iter().map(|&o| b.name(o)).collect();
    let mut ao = a_out.clone();
    ao.sort_unstable();
    let mut bo = b_out.clone();
    bo.sort_unstable();
    if ao != bo {
        return Ok(false);
    }

    // Map b's input slots to a's input-name order.
    let slot_of = |names: &[&str], want: &str| names.iter().position(|n| *n == want).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_in = a_inputs.len();
    for _ in 0..cfg.rounds {
        let words: Vec<u64> = (0..n_in).map(|_| rng.gen()).collect();
        // a gets words in its own order; b gets the same word per name.
        let b_words: Vec<u64> = b_inputs
            .iter()
            .map(|name| words[slot_of(&a_inputs, name)])
            .collect();
        let va = simulate_outputs(a, &words)?;
        let vb = simulate_outputs(b, &b_words)?;
        for (i, name) in a_out.iter().enumerate() {
            let j = slot_of(&b_out, name);
            if va[i] != vb[j] {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{eliminate_node, extract_node};
    use pf_sop::{Cube, Lit, Sop};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    fn xor_like() -> Network {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw
            .add_node(
                "f",
                Sop::from_cubes([
                    Cube::from_lits([Lit::pos(a), Lit::neg(b)]),
                    Cube::from_lits([Lit::neg(a), Lit::pos(b)]),
                ]),
            )
            .unwrap();
        nw.mark_output(f).unwrap();
        nw
    }

    #[test]
    fn simulate_xor_truth_table() {
        let nw = xor_like();
        // bit k of input word i = value of input i in vector k.
        // vectors: (a,b) = (0,0),(0,1),(1,0),(1,1) in bits 0..4.
        let a_word = 0b1100u64;
        let b_word = 0b1010u64;
        let out = simulate_outputs(&nw, &[a_word, b_word]).unwrap();
        assert_eq!(out[0] & 0xF, 0b0110); // XOR truth table
    }

    #[test]
    fn extraction_preserves_equivalence() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let d = nw.add_input("d").unwrap();
        let f = nw
            .add_node("f", sop_of(&[&[a, c], &[a, d], &[b, c], &[b, d]]))
            .unwrap();
        nw.mark_output(f).unwrap();
        let original = nw.clone();
        extract_node(&mut nw, "X", sop_of(&[&[a], &[b]]), &[f]).unwrap();
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn elimination_preserves_equivalence() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[g, a]])).unwrap();
        nw.mark_output(f).unwrap();
        let original = nw.clone();
        assert!(eliminate_node(&mut nw, g).unwrap());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn different_functions_detected() {
        let nw1 = xor_like();
        let mut nw2 = Network::new();
        let a = nw2.add_input("a").unwrap();
        let b = nw2.add_input("b").unwrap();
        let f = nw2.add_node("f", sop_of(&[&[a, b]])).unwrap(); // AND, not XOR
        nw2.mark_output(f).unwrap();
        assert!(!equivalent_random(&nw1, &nw2, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn mismatched_interfaces_not_equivalent() {
        let nw1 = xor_like();
        let mut nw2 = Network::new();
        nw2.add_input("a").unwrap();
        let c = nw2.add_input("c").unwrap(); // different input name
        let f = nw2.add_node("f", sop_of(&[&[c]])).unwrap();
        nw2.mark_output(f).unwrap();
        assert!(!equivalent_random(&nw1, &nw2, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn input_order_does_not_matter() {
        // Same function, inputs declared in a different order.
        let mut nw1 = Network::new();
        let a1 = nw1.add_input("a").unwrap();
        let b1 = nw1.add_input("b").unwrap();
        let f1 = nw1.add_node("f", sop_of(&[&[a1], &[b1]])).unwrap();
        nw1.mark_output(f1).unwrap();

        let mut nw2 = Network::new();
        let b2 = nw2.add_input("b").unwrap();
        let a2 = nw2.add_input("a").unwrap();
        let f2 = nw2.add_node("f", sop_of(&[&[b2], &[a2]])).unwrap();
        nw2.mark_output(f2).unwrap();

        assert!(equivalent_random(&nw1, &nw2, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn constant_nodes_simulate() {
        let mut nw = Network::new();
        nw.add_input("a").unwrap();
        let one = nw.add_node("one", Sop::one()).unwrap();
        let zero = nw.add_node("zero", Sop::zero()).unwrap();
        nw.mark_output(one).unwrap();
        nw.mark_output(zero).unwrap();
        let out = simulate_outputs(&nw, &[0x1234]).unwrap();
        assert_eq!(out[0], !0u64);
        assert_eq!(out[1], 0u64);
    }
}
