//! Algebraic resubstitution — SIS's `resub -a`.
//!
//! After extraction, distinct nodes often still contain each other's
//! functions as algebraic divisors (Algorithm I's duplicated kernels are
//! the prime example: `X = a + b` exists twice under different names).
//! Resubstitution walks node pairs and rewrites `f` as `q·x_g + r`
//! whenever dividing `f` by `g`'s function has a non-zero quotient and
//! actually saves literals.

use crate::network::{Network, NetworkError, SignalId, SignalKind};
use crate::transform::divide_node_by;
use pf_sop::fx::FxHashSet;
use pf_sop::Lit;

/// Report of one resubstitution pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResubReport {
    /// Successful divisions performed.
    pub substitutions: usize,
    /// Literals saved.
    pub saved: isize,
}

/// One full algebraic resubstitution pass over all node pairs, repeated
/// until a whole pass makes no change. Divisions that would not reduce
/// the literal count are rolled back.
///
/// Candidate filtering: `g` can only divide `f` if `g`'s (positive)
/// support is a subset of `f`'s and `g` has at most as many cubes, so
/// most pairs are rejected without running the division.
pub fn resubstitute(nw: &mut Network) -> Result<ResubReport, NetworkError> {
    let mut report = ResubReport::default();
    loop {
        let mut changed = false;
        let nodes: Vec<SignalId> = nw.node_ids().filter(|&n| !nw.func(n).is_zero()).collect();
        for &g in &nodes {
            if nw.kind(g) != SignalKind::Node || nw.func(g).num_cubes() == 0 {
                continue;
            }
            let g_support: FxHashSet<Lit> = nw.func(g).support_lits().into_iter().collect();
            let g_cubes = nw.func(g).num_cubes();
            for &f in &nodes {
                if f == g || nw.func(f).is_zero() {
                    continue;
                }
                // Don't create cycles: g must not (transitively) depend
                // on f. Cheap pre-check: direct dependence.
                if nw
                    .func(g)
                    .support_lits()
                    .iter()
                    .any(|l| l.var().index() == f)
                {
                    continue;
                }
                // Support filter.
                let f_support: FxHashSet<Lit> = nw.func(f).support_lits().into_iter().collect();
                if g_cubes > nw.func(f).num_cubes()
                    || !g_support.iter().all(|l| f_support.contains(l))
                {
                    continue;
                }
                let before = nw.func(f).literal_count();
                let snapshot = nw.func(f).clone();
                if divide_node_by(nw, f, g)? {
                    // Validate: no literal growth and no cycle.
                    let after = nw.func(f).literal_count();
                    if after >= before || nw.topo_order().is_err() {
                        nw.set_func(f, snapshot)?;
                    } else {
                        report.substitutions += 1;
                        report.saved += before as isize - after as isize;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return Ok(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{equivalent_random, EquivConfig};
    use pf_sop::{Cube, Sop};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    #[test]
    fn substitutes_duplicated_kernel() {
        // The Algorithm-I situation: X = a+b and Z = a+b both exist;
        // f uses the *expanded* form and should be rewritten over X.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let d = nw.add_input("d").unwrap();
        let x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw
            .add_node("f", sop_of(&[&[a, c], &[b, c], &[a, d], &[b, d]]))
            .unwrap();
        let g = nw.add_node("g", sop_of(&[&[x, c]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let original = nw.clone();

        let report = resubstitute(&mut nw).unwrap();
        assert!(report.substitutions >= 1);
        assert!(report.saved > 0);
        // f = Xc + Xd (4 lits), or even g + Xd (3) once the pass also
        // resubstitutes g = Xc into it.
        assert!(nw.func(f).literal_count() <= 4);
        assert!(nw.fanins(f).contains(&x) || nw.fanins(f).contains(&g));
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn no_substitution_when_nothing_shared() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[b]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let report = resubstitute(&mut nw).unwrap();
        assert_eq!(report.substitutions, 0);
    }

    #[test]
    fn never_creates_cycles() {
        // f = ac+bc, g = a+b, but g also *uses* f? Construct the risky
        // shape: h depends on f; f could divide h's function and h's
        // variable appears nowhere in f — fine; but f dividing g where
        // g feeds f must be refused.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[g, a], &[g, b]])).unwrap();
        nw.mark_output(f).unwrap();
        let original = nw.clone();
        resubstitute(&mut nw).unwrap();
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn rolls_back_unprofitable_division() {
        // Dividing would rewrite but not save: f = ab (g = a+b doesn't
        // divide it); pick f = ab + c and g = ab + c — equal functions,
        // f/g = 1 → f = 1·x_g, saving 2… that's profitable. Instead: a
        // case where quotient exists but no saving: f = ab, g = ab:
        // f = x_g (1 lit < 2) — profitable too. Unprofitable: g = a:
        // f = a → f = x_g rewrites 1 lit to 1 lit → rolled back.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let report = resubstitute(&mut nw).unwrap();
        assert_eq!(report.substitutions, 0);
        assert_eq!(nw.fanins(f), vec![a]);
    }

    #[test]
    fn resub_after_independent_extraction_recovers_duplicates() {
        // End-to-end: simulate the duplicated-kernel network of
        // Example 4.1's outcome and let resub merge the duplicates.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let e = nw.add_input("e").unwrap();
        let x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        let z = nw.add_node("Z", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[x, e]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[z, e]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let original = nw.clone();
        let before = nw.literal_count();
        // Z := X (Z's function divides by X's to the single cube x).
        let report = resubstitute(&mut nw).unwrap();
        let _ = report;
        // After resub + sweep, one of the duplicates is a pass-through.
        crate::transform::sweep(&mut nw).unwrap();
        assert!(nw.literal_count() <= before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }
}
