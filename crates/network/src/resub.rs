//! Algebraic resubstitution — SIS's `resub -a`.
//!
//! After extraction, distinct nodes often still contain each other's
//! functions as algebraic divisors (Algorithm I's duplicated kernels are
//! the prime example: `X = a + b` exists twice under different names).
//! Resubstitution walks divisor/target pairs and rewrites `f` as
//! `q·x_g + r` whenever dividing `f` by `g`'s function has a non-zero
//! quotient and actually saves literals.
//!
//! Two engines share that contract:
//!
//! * [`resubstitute`] (and its scoped form [`resubstitute_scoped`]) — the
//!   production engine. A *divisor index* (per-literal occurrence lists
//!   plus a 64-bit support-hash signature per node) rejects most pairs
//!   without touching the SOPs, a *dirty worklist* replaces the
//!   repeat-whole-pass fixpoint so only nodes whose functions changed are
//!   re-examined, and a cached *transitive reachability guard* refuses
//!   cycle-creating substitutions before running the division.
//! * [`reference::resubstitute`] — the original all-pairs whole-pass
//!   fixpoint, kept verbatim as the differential oracle. The indexed
//!   engine attempts the same profitable pairs in the same order, so the
//!   resulting networks are byte-identical (property-tested in
//!   `tests/props.rs`).

use crate::network::{Network, NetworkError, SignalId, SignalKind};
use crate::transform::divide_node_by;
use pf_sop::fx::{FxHashMap, FxHashSet};
use pf_sop::Lit;

/// Report of one resubstitution pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResubReport {
    /// Successful divisions performed.
    pub substitutions: usize,
    /// Literals saved.
    pub saved: isize,
    /// Divisor/target pairs that reached the candidate filters (i.e.
    /// survived the dirty-worklist gate). The reference engine examines
    /// every pair every pass; the indexed engine reports how few it had
    /// to look at.
    pub pairs_considered: usize,
    /// Pairs that passed every filter and ran the actual division.
    pub pairs_divided: usize,
    /// Worklist rounds until the fixpoint (reference: whole passes).
    pub worklist_rounds: usize,
}

/// Restricts what a resubstitution run may do. The default scope is the
/// full pass: every node acts as a divisor and every pair is attempted
/// in round one.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResubScope<'a> {
    /// When set, only these nodes act as divisors `g` (targets `f` stay
    /// unrestricted). Used by sharded boundary recovery, where each
    /// recovery lease owns a slice of the duplicate-candidate divisors.
    pub divisors: Option<&'a [SignalId]>,
    /// When set, round one attempts only pairs touching a seed node
    /// instead of all pairs; dirty propagation then proceeds as usual.
    /// Used to re-run the fixpoint incrementally after merging sharded
    /// recovery results, seeded by the nodes the shards rewrote.
    pub seeds: Option<&'a [SignalId]>,
}

/// One full algebraic resubstitution fixpoint, indexed and incremental.
/// Divisions that would not reduce the literal count are rolled back.
///
/// Byte-identical to [`reference::resubstitute`]: see the module docs.
pub fn resubstitute(nw: &mut Network) -> Result<ResubReport, NetworkError> {
    resubstitute_scoped(nw, &ResubScope::default())
}

/// [`resubstitute`] with a [`ResubScope`] restricting divisors and/or
/// seeding the first worklist round.
pub fn resubstitute_scoped(
    nw: &mut Network,
    scope: &ResubScope<'_>,
) -> Result<ResubReport, NetworkError> {
    let mut report = ResubReport::default();
    // The candidate node set is invariant across rounds: a successful
    // division rewrites f to q·x_g + r with a non-zero quotient, so no
    // function ever becomes zero and no node is created.
    let nodes: Vec<SignalId> = nw.node_ids().filter(|&n| !nw.func(n).is_zero()).collect();
    if nodes.is_empty() {
        return Ok(report);
    }
    let mut index = DivisorIndex::build(nw, &nodes);
    let divisor_filter: Option<FxHashSet<SignalId>> =
        scope.divisors.map(|d| d.iter().copied().collect());

    let n_signals = nw.num_signals();
    // Dirty bits drive the worklist: a pair (g, f) is attempted in a
    // round iff g or f changed in the previous round (dirty_prev), has
    // already changed in this round (dirty_cur), or the pair was refused
    // by the reachability guard (cycle_blocked — reachability depends on
    // the whole graph, so those refusals are re-checked every round).
    // Every skipped pair provably fails: its outcome is a pure function
    // of (func(g), func(f)) and both are unchanged since the pair's last
    // failing attempt. Hence the attempted-and-succeeded sequence — and
    // the resulting network — match the reference engine exactly.
    let mut dirty_prev = vec![false; n_signals];
    let mut dirty_cur = vec![false; n_signals];
    match scope.seeds {
        Some(seeds) => {
            for &s in seeds {
                if let Some(slot) = dirty_prev.get_mut(s as usize) {
                    *slot = true;
                }
            }
        }
        None => dirty_prev.fill(true),
    }
    let mut cycle_blocked: FxHashSet<(SignalId, SignalId)> = FxHashSet::default();
    // Transitive-fanin sets, cached per divisor within a worklist round
    // and invalidated whenever a substitution changes the graph.
    let mut tfi_cache: FxHashMap<SignalId, FxHashSet<SignalId>> = FxHashMap::default();

    loop {
        report.worklist_rounds += 1;
        let mut changed = false;
        for &g in &nodes {
            if let Some(filter) = &divisor_filter {
                if !filter.contains(&g) {
                    continue;
                }
            }
            if nw.kind(g) != SignalKind::Node || index.cubes[g as usize] == 0 {
                continue;
            }
            let g_support = index.support[g as usize].clone();
            if g_support.is_empty() {
                // Constant-one divisor: divide_node_by always refuses.
                continue;
            }
            let g_sig = index.sig[g as usize];
            let g_cubes = index.cubes[g as usize];
            // Enumerate candidates from the rarest literal's occurrence
            // list: any f divisible by g contains every literal of g, so
            // the list is a superset of the viable targets and — being
            // id-sorted — visits them in the reference engine's order.
            let rare = g_support
                .iter()
                .min_by_key(|l| index.occ_len(**l))
                .copied()
                .expect("non-empty support");
            let candidates = index.occ(rare).to_vec();
            for f in candidates {
                if f == g {
                    continue;
                }
                let fi = f as usize;
                if !(dirty_prev[g as usize]
                    || dirty_prev[fi]
                    || dirty_cur[g as usize]
                    || dirty_cur[fi]
                    || cycle_blocked.contains(&(g, f)))
                {
                    continue;
                }
                report.pairs_considered += 1;
                // Signature, cube-count and exact support-subset filters.
                if g_sig & !index.sig[fi] != 0
                    || g_cubes > index.cubes[fi]
                    || !is_sorted_subset(&g_support, &index.support[fi])
                {
                    continue;
                }
                // Don't create cycles: the division adds the edge f → g,
                // which closes a cycle iff g transitively depends on f.
                // The reference engine discovers this after the fact via
                // a whole-network topo sort and rolls back; pre-checking
                // f ∈ TFI(g) refuses exactly the same pairs.
                if reaches(nw, &mut tfi_cache, g, f) {
                    cycle_blocked.insert((g, f));
                    continue;
                }
                cycle_blocked.remove(&(g, f));
                let before = nw.func(f).literal_count();
                let snapshot = nw.func(f).clone();
                report.pairs_divided += 1;
                if divide_node_by(nw, f, g)? {
                    let after = nw.func(f).literal_count();
                    if after >= before {
                        nw.set_func(f, snapshot)?;
                    } else {
                        report.substitutions += 1;
                        report.saved += before as isize - after as isize;
                        index.note_rewrite(nw, f);
                        dirty_cur[fi] = true;
                        changed = true;
                        // The graph changed: cached reachability is stale.
                        tfi_cache.clear();
                    }
                }
            }
        }
        if !changed {
            return Ok(report);
        }
        std::mem::swap(&mut dirty_prev, &mut dirty_cur);
        dirty_cur.fill(false);
    }
}

/// `true` iff `f` is in the transitive fanin of `g` (so substituting g
/// into f would create a cycle). The TFI set is memoised per divisor.
fn reaches(
    nw: &Network,
    cache: &mut FxHashMap<SignalId, FxHashSet<SignalId>>,
    g: SignalId,
    f: SignalId,
) -> bool {
    if let Some(tfi) = cache.get(&g) {
        return tfi.contains(&f);
    }
    let mut tfi = FxHashSet::default();
    let mut stack = nw.fanins(g);
    while let Some(n) = stack.pop() {
        if tfi.insert(n) && nw.kind(n) == SignalKind::Node {
            stack.extend(nw.fanins(n));
        }
    }
    let hit = tfi.contains(&f);
    cache.insert(g, tfi);
    hit
}

/// Subset test over two sorted literal lists.
fn is_sorted_subset(small: &[Lit], big: &[Lit]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut it = big.iter();
    'outer: for l in small {
        for b in it.by_ref() {
            match b.cmp(l) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// The divisor index: per-literal occurrence lists (id-sorted) plus a
/// 64-bit support-hash signature, cube count and sorted support per node.
/// `sig(g) & !sig(f) != 0` disproves support ⊆ in one AND.
struct DivisorIndex {
    /// lit code → id-sorted list of indexed nodes containing that lit.
    occ: Vec<Vec<SignalId>>,
    sig: Vec<u64>,
    cubes: Vec<usize>,
    support: Vec<Vec<Lit>>,
}

impl DivisorIndex {
    fn build(nw: &Network, nodes: &[SignalId]) -> Self {
        let n = nw.num_signals();
        let mut ix = DivisorIndex {
            occ: vec![Vec::new(); 2 * n],
            sig: vec![0; n],
            cubes: vec![0; n],
            support: vec![Vec::new(); n],
        };
        // `nodes` is id-ascending, so pushes keep occ lists sorted.
        for &id in nodes {
            let support = nw.func(id).support_lits();
            for &l in &support {
                ix.occ[l.code() as usize].push(id);
            }
            ix.sig[id as usize] = sig_of(&support);
            ix.cubes[id as usize] = nw.func(id).num_cubes();
            ix.support[id as usize] = support;
        }
        ix
    }

    fn occ(&self, lit: Lit) -> &[SignalId] {
        &self.occ[lit.code() as usize]
    }

    fn occ_len(&self, lit: Lit) -> usize {
        self.occ[lit.code() as usize].len()
    }

    /// Re-indexes `f` after its function was rewritten: diffs the old
    /// and new sorted supports and patches only the changed entries.
    fn note_rewrite(&mut self, nw: &Network, f: SignalId) {
        let new_support = nw.func(f).support_lits();
        let old_support = std::mem::take(&mut self.support[f as usize]);
        let mut old_it = old_support.iter().peekable();
        let mut new_it = new_support.iter().peekable();
        loop {
            match (old_it.peek(), new_it.peek()) {
                (Some(&&o), Some(&&n)) if o == n => {
                    old_it.next();
                    new_it.next();
                }
                (Some(&&o), Some(&&n)) if o < n => {
                    self.occ_remove(o, f);
                    old_it.next();
                }
                (Some(_), Some(&&n)) => {
                    self.occ_insert(n, f);
                    new_it.next();
                }
                (Some(&&o), None) => {
                    self.occ_remove(o, f);
                    old_it.next();
                }
                (None, Some(&&n)) => {
                    self.occ_insert(n, f);
                    new_it.next();
                }
                (None, None) => break,
            }
        }
        self.sig[f as usize] = sig_of(&new_support);
        self.cubes[f as usize] = nw.func(f).num_cubes();
        self.support[f as usize] = new_support;
    }

    fn occ_remove(&mut self, lit: Lit, id: SignalId) {
        let list = &mut self.occ[lit.code() as usize];
        if let Ok(pos) = list.binary_search(&id) {
            list.remove(pos);
        }
    }

    fn occ_insert(&mut self, lit: Lit, id: SignalId) {
        let list = &mut self.occ[lit.code() as usize];
        if let Err(pos) = list.binary_search(&id) {
            list.insert(pos, id);
        }
    }
}

/// 64-bit support signature: one hashed bit per support literal.
fn sig_of(support: &[Lit]) -> u64 {
    support
        .iter()
        .fold(0u64, |acc, l| acc | (1u64 << (mix(l.code() as u64) & 63)))
}

/// SplitMix64 finaliser — spreads consecutive lit codes across bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The original all-pairs engine, kept as the differential oracle for
/// the indexed one. Not used in production paths.
pub mod reference {
    use super::ResubReport;
    use crate::network::{Network, NetworkError, SignalId, SignalKind};
    use crate::transform::divide_node_by;
    use pf_sop::fx::FxHashSet;
    use pf_sop::Lit;

    /// One full algebraic resubstitution pass over all node pairs,
    /// repeated until a whole pass makes no change. Divisions that would
    /// not reduce the literal count are rolled back.
    ///
    /// Candidate filtering: `g` can only divide `f` if `g`'s support is
    /// a subset of `f`'s and `g` has at most as many cubes, so most
    /// pairs are rejected without running the division.
    pub fn resubstitute(nw: &mut Network) -> Result<ResubReport, NetworkError> {
        let mut report = ResubReport::default();
        loop {
            let mut changed = false;
            let nodes: Vec<SignalId> = nw.node_ids().filter(|&n| !nw.func(n).is_zero()).collect();
            for &g in &nodes {
                if nw.kind(g) != SignalKind::Node || nw.func(g).num_cubes() == 0 {
                    continue;
                }
                let g_support: FxHashSet<Lit> = nw.func(g).support_lits().into_iter().collect();
                let g_cubes = nw.func(g).num_cubes();
                for &f in &nodes {
                    if f == g || nw.func(f).is_zero() {
                        continue;
                    }
                    // Don't create cycles: g must not (transitively)
                    // depend on f. Cheap pre-check: direct dependence.
                    if nw
                        .func(g)
                        .support_lits()
                        .iter()
                        .any(|l| l.var().index() == f)
                    {
                        continue;
                    }
                    // Support filter.
                    let f_support: FxHashSet<Lit> = nw.func(f).support_lits().into_iter().collect();
                    if g_cubes > nw.func(f).num_cubes()
                        || !g_support.iter().all(|l| f_support.contains(l))
                    {
                        continue;
                    }
                    let before = nw.func(f).literal_count();
                    let snapshot = nw.func(f).clone();
                    if divide_node_by(nw, f, g)? {
                        // Validate: no literal growth and no cycle.
                        let after = nw.func(f).literal_count();
                        if after >= before || nw.topo_order().is_err() {
                            nw.set_func(f, snapshot)?;
                        } else {
                            report.substitutions += 1;
                            report.saved += before as isize - after as isize;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{equivalent_random, EquivConfig};
    use pf_sop::{Cube, Sop};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    #[test]
    fn substitutes_duplicated_kernel() {
        // The Algorithm-I situation: X = a+b and Z = a+b both exist;
        // f uses the *expanded* form and should be rewritten over X.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let d = nw.add_input("d").unwrap();
        let x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw
            .add_node("f", sop_of(&[&[a, c], &[b, c], &[a, d], &[b, d]]))
            .unwrap();
        let g = nw.add_node("g", sop_of(&[&[x, c]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let original = nw.clone();

        let report = resubstitute(&mut nw).unwrap();
        assert!(report.substitutions >= 1);
        assert!(report.saved > 0);
        assert!(report.pairs_divided >= report.substitutions);
        assert!(report.pairs_considered >= report.pairs_divided);
        assert!(report.worklist_rounds >= 1);
        // f = Xc + Xd (4 lits), or even g + Xd (3) once the pass also
        // resubstitutes g = Xc into it.
        assert!(nw.func(f).literal_count() <= 4);
        assert!(nw.fanins(f).contains(&x) || nw.fanins(f).contains(&g));
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn no_substitution_when_nothing_shared() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[b]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let report = resubstitute(&mut nw).unwrap();
        assert_eq!(report.substitutions, 0);
    }

    #[test]
    fn never_creates_cycles() {
        // f = ac+bc, g = a+b, but g also *uses* f? Construct the risky
        // shape: h depends on f; f could divide h's function and h's
        // variable appears nowhere in f — fine; but f dividing g where
        // g feeds f must be refused.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[g, a], &[g, b]])).unwrap();
        nw.mark_output(f).unwrap();
        let original = nw.clone();
        resubstitute(&mut nw).unwrap();
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn rolls_back_unprofitable_division() {
        // Dividing would rewrite but not save: f = ab (g = a+b doesn't
        // divide it); pick f = ab + c and g = ab + c — equal functions,
        // f/g = 1 → f = 1·x_g, saving 2… that's profitable. Instead: a
        // case where quotient exists but no saving: f = ab, g = ab:
        // f = x_g (1 lit < 2) — profitable too. Unprofitable: g = a:
        // f = a → f = x_g rewrites 1 lit to 1 lit → rolled back.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let report = resubstitute(&mut nw).unwrap();
        assert_eq!(report.substitutions, 0);
        assert_eq!(nw.fanins(f), vec![a]);
    }

    #[test]
    fn resub_after_independent_extraction_recovers_duplicates() {
        // End-to-end: simulate the duplicated-kernel network of
        // Example 4.1's outcome and let resub merge the duplicates.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let e = nw.add_input("e").unwrap();
        let x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        let z = nw.add_node("Z", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[x, e]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[z, e]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let original = nw.clone();
        let before = nw.literal_count();
        // Z := X (Z's function divides by X's to the single cube x).
        let report = resubstitute(&mut nw).unwrap();
        let _ = report;
        // After resub + sweep, one of the duplicates is a pass-through.
        crate::transform::sweep(&mut nw).unwrap();
        assert!(nw.literal_count() <= before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn matches_reference_on_duplicated_kernels() {
        let build = || {
            let mut nw = Network::new();
            let a = nw.add_input("a").unwrap();
            let b = nw.add_input("b").unwrap();
            let c = nw.add_input("c").unwrap();
            let d = nw.add_input("d").unwrap();
            let _x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
            let f = nw
                .add_node("f", sop_of(&[&[a, c], &[b, c], &[a, d], &[b, d]]))
                .unwrap();
            let g = nw.add_node("g", sop_of(&[&[a, d], &[b, d]])).unwrap();
            nw.mark_output(f).unwrap();
            nw.mark_output(g).unwrap();
            nw
        };
        let mut indexed = build();
        let mut oracle = build();
        let ri = resubstitute(&mut indexed).unwrap();
        let rr = reference::resubstitute(&mut oracle).unwrap();
        assert_eq!(ri.substitutions, rr.substitutions);
        assert_eq!(ri.saved, rr.saved);
        for id in indexed.node_ids().collect::<Vec<_>>() {
            assert_eq!(indexed.func(id), oracle.func(id), "node {id}");
        }
    }

    #[test]
    fn scoped_divisors_restrict_the_pass() {
        // Both X and Z could divide f; restricting divisors to Z means
        // only Z's substitution may happen.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, c], &[b, c]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(x).unwrap();
        let scope = ResubScope {
            divisors: Some(&[f]),
            seeds: None,
        };
        let report = resubstitute_scoped(&mut nw, &scope).unwrap();
        // f is the only allowed divisor and divides nothing.
        assert_eq!(report.substitutions, 0);
        let scope = ResubScope {
            divisors: Some(&[x]),
            seeds: None,
        };
        let report = resubstitute_scoped(&mut nw, &scope).unwrap();
        assert_eq!(report.substitutions, 1);
        assert!(nw.fanins(f).contains(&x));
    }

    #[test]
    fn empty_seed_set_attempts_nothing() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let _x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, c], &[b, c]])).unwrap();
        nw.mark_output(f).unwrap();
        let before = nw.clone();
        let scope = ResubScope {
            divisors: None,
            seeds: Some(&[]),
        };
        let report = resubstitute_scoped(&mut nw, &scope).unwrap();
        assert_eq!(report.substitutions, 0);
        assert_eq!(report.pairs_considered, 0);
        for id in before.node_ids().collect::<Vec<_>>() {
            assert_eq!(nw.func(id), before.func(id));
        }
    }
}
