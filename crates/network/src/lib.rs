#![warn(missing_docs)]

//! # pf-network — the Boolean network substrate
//!
//! A multi-level logic network in the MIS/SIS sense: a DAG of nodes, each
//! computing a sum-of-products over primary inputs and other nodes'
//! outputs. This is the object the paper's factorization algorithms
//! transform; its **literal count** (LC) is the paper's area metric.
//!
//! Signals and variables share one index space: the [`pf_sop::Var`] with
//! index `i` *is* the output of signal `i`, so node functions are plain
//! [`pf_sop::Sop`] values and algebraic extraction is just "make a node,
//! divide the affected functions by its variable".
//!
//! Provided here:
//! * [`Network`] — construction, fanin/fanout queries, topological order,
//!   literal count, structural validation;
//! * transforms ([`transform`]) — kernel/cube extraction plumbing
//!   (`extract_node`, `divide_node_by`), `eliminate`, `sweep`;
//! * simulation ([`sim`]) — random-vector evaluation and functional
//!   equivalence checking used as the test oracle for every optimizer;
//! * a small text format ([`io`]) to read and write networks;
//! * the paper's worked Example 1.1 network ([`example::example_1_1`]),
//!   used as a golden fixture throughout the workspace.

pub mod blif;
pub mod example;
pub mod io;
pub mod network;
pub mod resub;
pub mod sim;
pub mod stats;
pub mod transform;

pub use network::{Network, NetworkError, SignalId, SignalKind};
pub use sim::{equivalent_random, simulate, EquivConfig};
