//! Network transformations used by the factorization algorithms and the
//! mini synthesis script: extraction, division, elimination and sweep.

use crate::network::{Network, NetworkError, SignalId, SignalKind};
use pf_sop::{divide, Sop};

/// Creates a new node `name` with function `func` and divides each node
/// in `targets` by it: `f := (f / func)·x + remainder`, where `x` is the
/// new node's variable. Division is only applied where the quotient is
/// non-zero, so unaffected targets are left untouched.
///
/// Returns the new node's id. This is the network-level half of "extract
/// a kernel": the caller (pf-core) decides *what* to extract; this
/// routine performs the surgery.
pub fn extract_node(
    nw: &mut Network,
    name: impl Into<String>,
    func: Sop,
    targets: &[SignalId],
) -> Result<SignalId, NetworkError> {
    let new_id = nw.add_node(name, func.clone())?;
    let x = Sop::from_cube(pf_sop::Cube::single(nw.var(new_id).lit()));
    for &t in targets {
        if t == new_id {
            continue;
        }
        let f = nw.func(t).clone();
        let div = divide(&f, &func);
        if div.quotient.is_zero() {
            continue;
        }
        let replaced = div.quotient.product(&x).sum(&div.remainder);
        nw.set_func(t, replaced)?;
    }
    Ok(new_id)
}

/// Divides node `target` by existing node `divisor` (resubstitution):
/// rewrites `f_target` as `q·x_divisor + r` when the quotient is
/// non-zero. Returns whether a rewrite happened.
pub fn divide_node_by(
    nw: &mut Network,
    target: SignalId,
    divisor: SignalId,
) -> Result<bool, NetworkError> {
    if target == divisor || nw.kind(divisor) != SignalKind::Node {
        return Ok(false);
    }
    let g = nw.func(divisor).clone();
    if g.is_zero() || g.is_one() {
        return Ok(false);
    }
    let f = nw.func(target).clone();
    let div = divide(&f, &g);
    if div.quotient.is_zero() {
        return Ok(false);
    }
    let x = Sop::from_cube(pf_sop::Cube::single(nw.var(divisor).lit()));
    nw.set_func(target, div.quotient.product(&x).sum(&div.remainder))?;
    Ok(true)
}

/// Collapses node `victim` into all of its fanouts: every occurrence of
/// the victim's positive literal is replaced by the victim's function
/// (algebraic composition), after which the victim's function is set to
/// zero if nothing references it and it is not a primary output.
///
/// Nodes referenced in the *negative* phase cannot be eliminated in the
/// algebraic model (that would require the complement of an SOP);
/// returns `false` without changes in that case.
pub fn eliminate_node(nw: &mut Network, victim: SignalId) -> Result<bool, NetworkError> {
    if nw.kind(victim) != SignalKind::Node {
        return Err(NetworkError::NotANode(victim));
    }
    let fanouts: Vec<SignalId> = nw.fanout_map()[victim as usize].clone();
    eliminate_into(nw, victim, &fanouts)
}

/// The composition core of [`eliminate_node`], taking the victim's
/// fanout list from the caller. The list may contain stale entries —
/// nodes that no longer reference the victim compose with a zero
/// quotient, a no-op — but must not be missing any real fanout, or the
/// victim's literal would dangle after its function is cleared.
fn eliminate_into(
    nw: &mut Network,
    victim: SignalId,
    fanouts: &[SignalId],
) -> Result<bool, NetworkError> {
    let vpos = nw.var(victim).lit();
    let vneg = vpos.complement();
    // Refuse if any fanout uses the complemented literal.
    for &fo in fanouts {
        if nw.func(fo).lit_occurrences(vneg) > 0 {
            return Ok(false);
        }
    }
    let g = nw.func(victim).clone();
    for &fo in fanouts {
        let f = nw.func(fo).clone();
        let div = pf_sop::divide_by_cube(&f, &pf_sop::Cube::single(vpos));
        let composed = div.quotient.product(&g).sum(&div.remainder);
        nw.set_func(fo, composed)?;
    }
    Ok(true)
}

/// The literal-count *increase* caused by eliminating `node` into its
/// fanouts — the node's "value" in SIS's `eliminate` sense. Negative
/// values mean elimination shrinks the network. Returns `None` for nodes
/// that cannot be eliminated (primary inputs, complemented uses).
///
/// Exact under the no-absorption assumption: a fanout cube `c`
/// containing the node's literal becomes `(c/x)·g`, i.e. `m` cubes
/// totaling `(|c|−1)·m + l` literals where `g` has `m` cubes and `l`
/// literals; the victim's body (`l`) disappears. Algebraic absorption
/// can only shrink further, so the true change is `≤` this value.
pub fn eliminate_value(nw: &Network, node: SignalId) -> Option<isize> {
    if nw.kind(node) != SignalKind::Node {
        return None;
    }
    let vpos = nw.var(node).lit();
    let vneg = vpos.complement();
    let g = nw.func(node);
    let m = g.num_cubes() as isize;
    let l = g.literal_count() as isize;
    let mut delta = -l;
    for fo in nw.node_ids() {
        if fo == node {
            continue;
        }
        if nw.func(fo).lit_occurrences(vneg) > 0 {
            return None;
        }
        for c in nw.func(fo).iter() {
            if c.contains(vpos) {
                let clen = c.len() as isize;
                delta += (clen - 1) * m + l - clen;
            }
        }
    }
    Some(delta)
}

/// Two-level Boolean simplification of every node function (SIS's
/// don't-care-free `simplify`): distance-1 merge/reduce to a fixpoint.
/// Returns the literals saved.
pub fn simplify_all(nw: &mut Network) -> Result<usize, NetworkError> {
    let before = nw.literal_count();
    for n in nw.node_ids().collect::<Vec<_>>() {
        let f = nw.func(n);
        let g = pf_sop::simplify_sop(f);
        if &g != f {
            nw.set_func(n, g)?;
        }
    }
    Ok(before - nw.literal_count())
}

/// Removes dead logic: nodes that are not primary outputs and have no
/// fanouts get their functions cleared and are reported. Constant and
/// single-literal pass-through nodes are eliminated into their fanouts.
/// Repeats to a fixpoint. Returns the number of nodes swept.
pub fn sweep(nw: &mut Network) -> Result<usize, NetworkError> {
    let mut swept = 0usize;
    // Output membership as a bitmask: the per-node `Vec::contains` scan
    // it replaces made sweep O(nodes × outputs) per round, which
    // dominated distributed recovery on merged networks full of dead
    // duplicate chains. Outputs never change during a sweep.
    let mut is_output = vec![false; nw.num_signals()];
    for &o in nw.outputs() {
        is_output[o as usize] = true;
    }
    loop {
        // Dead logic first, as a cascade over fanout counts: clearing a
        // node may orphan its fanins, so a chain of dead duplicates
        // collapses in one O(edges) pass instead of one whole-network
        // round per link (the shape recovery resub leaves behind).
        let mut fo_count: Vec<usize> = nw.fanout_map().iter().map(Vec::len).collect();
        let mut queue: Vec<SignalId> = nw
            .node_ids()
            .filter(|&n| {
                !is_output[n as usize] && fo_count[n as usize] == 0 && !nw.func(n).is_zero()
            })
            .collect();
        while let Some(node) = queue.pop() {
            let fanins = nw.fanins(node);
            nw.set_func(node, Sop::zero())?;
            swept += 1;
            for fi in fanins {
                fo_count[fi as usize] -= 1;
                if fo_count[fi as usize] == 0
                    && !is_output[fi as usize]
                    && nw.kind(fi) == SignalKind::Node
                    && !nw.func(fi).is_zero()
                {
                    queue.push(fi);
                }
            }
        }
        // Then pass-through wires, against a fanout map maintained
        // in place: eliminating a wire re-points its fanouts at the
        // wire's fanins, which is reflected by *adding* those edges
        // (`eliminate_into` tolerates stale extras — zero quotient,
        // no-op — but a missing edge would dangle the literal). This
        // keeps a round at one O(edges) map build where calling
        // `eliminate_node` per wire paid one build per elimination.
        let mut changed = false;
        let mut fo_map = nw.fanout_map();
        for node in nw.node_ids().collect::<Vec<_>>() {
            if is_output[node as usize] || nw.func(node).is_zero() {
                continue;
            }
            let is_wire = nw.func(node).num_cubes() == 1
                && nw.func(node).literal_count() <= 1
                && !fo_map[node as usize].is_empty();
            if !is_wire {
                continue;
            }
            let fanins = nw.fanins(node);
            let fanouts = std::mem::take(&mut fo_map[node as usize]);
            if !eliminate_into(nw, node, &fanouts)? {
                fo_map[node as usize] = fanouts;
                continue;
            }
            nw.set_func(node, Sop::zero())?;
            swept += 1;
            changed = true;
            for &fi in &fanins {
                for &fo in &fanouts {
                    if !fo_map[fi as usize].contains(&fo) {
                        fo_map[fi as usize].push(fo);
                    }
                }
            }
        }
        if !changed {
            return Ok(swept);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::{Cube, Lit};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    /// Network: f = ac + ad + bc + bd + e over inputs a..e.
    fn simple() -> (Network, SignalId) {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let d = nw.add_input("d").unwrap();
        let e = nw.add_input("e").unwrap();
        let f = nw
            .add_node("f", sop_of(&[&[a, c], &[a, d], &[b, c], &[b, d], &[e]]))
            .unwrap();
        nw.mark_output(f).unwrap();
        (nw, f)
    }

    #[test]
    fn extract_rewrites_targets() {
        let (mut nw, f) = simple();
        let a = nw.find("a").unwrap();
        let b = nw.find("b").unwrap();
        // extract X = a + b; f should become Xc + Xd + e.
        let before = nw.literal_count();
        let x = extract_node(&mut nw, "X", sop_of(&[&[a], &[b]]), &[f]).unwrap();
        assert_eq!(nw.func(f).literal_count(), 5); // xc + xd + e
        assert_eq!(nw.func(x).literal_count(), 2);
        assert_eq!(nw.literal_count(), 7);
        assert!(nw.literal_count() < before + 2); // net win vs 9+2
        assert!(nw.validate().is_ok());
        assert!(nw.fanins(f).contains(&x));
    }

    #[test]
    fn extract_skips_unaffected_targets() {
        let (mut nw, f) = simple();
        let a = nw.find("a").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a]])).unwrap();
        let before_g = nw.func(g).clone();
        let b = nw.find("b").unwrap();
        extract_node(&mut nw, "X", sop_of(&[&[a], &[b]]), &[f, g]).unwrap();
        assert_eq!(nw.func(g), &before_g);
    }

    #[test]
    fn divide_by_existing_node() {
        let (mut nw, f) = simple();
        let a = nw.find("a").unwrap();
        let b = nw.find("b").unwrap();
        let x = nw.add_node("X", sop_of(&[&[a], &[b]])).unwrap();
        assert!(divide_node_by(&mut nw, f, x).unwrap());
        assert_eq!(nw.func(f).literal_count(), 5);
        // Dividing again is a no-op: quotient of xc+xd+e by a+b is 0.
        assert!(!divide_node_by(&mut nw, f, x).unwrap());
    }

    #[test]
    fn eliminate_undoes_extract() {
        let (mut nw, f) = simple();
        let original = nw.func(f).clone();
        let a = nw.find("a").unwrap();
        let b = nw.find("b").unwrap();
        let x = extract_node(&mut nw, "X", sop_of(&[&[a], &[b]]), &[f]).unwrap();
        assert!(eliminate_node(&mut nw, x).unwrap());
        assert_eq!(nw.func(f), &original);
    }

    #[test]
    fn eliminate_refuses_negative_phase_use() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        let f = nw
            .add_node(
                "f",
                Sop::from_cube(Cube::from_lits([Lit::neg(g), Lit::pos(a)])),
            )
            .unwrap();
        nw.mark_output(f).unwrap();
        assert!(!eliminate_node(&mut nw, g).unwrap());
    }

    #[test]
    fn eliminate_value_formula() {
        let (mut nw, f) = simple();
        let a = nw.find("a").unwrap();
        let b = nw.find("b").unwrap();
        let x = extract_node(&mut nw, "X", sop_of(&[&[a], &[b]]), &[f]).unwrap();
        // f = Xc + Xd + e, X = a + b (m=2, l=2). Eliminating X turns Xc
        // into ac + bc (2·1 + 2 = 4 lits, +2 per cube) and removes the
        // 2-literal body: Δ = −2 + 2 + 2 = 2 — exactly the 9 − 7 growth.
        assert_eq!(eliminate_value(&nw, x), Some(2));
        assert_eq!(eliminate_value(&nw, a), None); // primary input
    }

    #[test]
    fn sweep_removes_dead_and_wires() {
        let (mut nw, _f) = simple();
        let a = nw.find("a").unwrap();
        // dead node (no fanout, not an output)
        nw.add_node("dead", sop_of(&[&[a]])).unwrap();
        let swept = sweep(&mut nw).unwrap();
        assert_eq!(swept, 1);
        let dead = nw.find("dead").unwrap();
        assert!(nw.func(dead).is_zero());
    }

    #[test]
    fn sweep_eliminates_pass_through_wires() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let w = nw.add_node("w", sop_of(&[&[a]])).unwrap();
        let f = nw.add_node("f", sop_of(&[&[w, b]])).unwrap();
        nw.mark_output(f).unwrap();
        let swept = sweep(&mut nw).unwrap();
        assert_eq!(swept, 1);
        assert_eq!(nw.func(f), &sop_of(&[&[a, b]]));
    }
}
