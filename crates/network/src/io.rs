//! A small line-oriented text format for networks.
//!
//! Syntax (one directive per line, `#` comments):
//!
//! ```text
//! inputs a b c d
//! node F = a f | b f | a g
//! node G = ~a b | c
//! outputs F G
//! ```
//!
//! Cubes are whitespace-separated literal lists joined by `|`; `~x` is
//! the complemented literal. `node X = 0` and `node X = 1` denote the
//! constants. Node lines may reference later nodes; the reader validates
//! the finished network. The format plays the role BLIF plays for SIS:
//! moving circuits in and out of the tool.

use crate::network::{Network, NetworkError, SignalId};
use pf_sop::fx::FxHashMap;
use pf_sop::{Cube, Lit, Sop};
use std::fmt::Write as _;

/// Errors from the text reader.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The parsed network failed validation.
    Network(NetworkError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::Network(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<NetworkError> for ParseError {
    fn from(e: NetworkError) -> Self {
        ParseError::Network(e)
    }
}

/// Parses a network from the text format.
///
/// Because node bodies may reference nodes defined later, parsing runs in
/// two passes: first all signals are declared, then functions are parsed
/// against the complete symbol table.
pub fn read_network(text: &str) -> Result<Network, ParseError> {
    let mut nw = Network::new();
    let mut node_bodies: Vec<(SignalId, usize, String)> = Vec::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let (kw, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match kw {
            "inputs" => {
                for name in rest.split_whitespace() {
                    nw.add_input(name)?;
                }
            }
            "node" => {
                let (name, body) = rest.split_once('=').ok_or_else(|| ParseError::Syntax {
                    line: lineno,
                    msg: "expected `node NAME = body`".into(),
                })?;
                let id = nw.add_node(name.trim(), Sop::zero())?;
                node_bodies.push((id, lineno, body.trim().to_string()));
            }
            "outputs" => {
                for name in rest.split_whitespace() {
                    output_names.push((lineno, name.to_string()));
                }
            }
            other => {
                return Err(ParseError::Syntax {
                    line: lineno,
                    msg: format!("unknown directive {other:?}"),
                });
            }
        }
    }

    // Second pass: parse bodies now that every name is known.
    let lookup: FxHashMap<String, SignalId> = nw
        .signal_ids()
        .map(|s| (nw.name(s).to_string(), s))
        .collect();
    for (id, lineno, body) in node_bodies {
        let func =
            parse_sop(&body, &lookup).map_err(|msg| ParseError::Syntax { line: lineno, msg })?;
        nw.set_func(id, func)?;
    }
    for (lineno, name) in output_names {
        let id = *lookup.get(&name).ok_or_else(|| ParseError::Syntax {
            line: lineno,
            msg: format!("unknown output {name:?}"),
        })?;
        nw.mark_output(id)?;
    }
    nw.validate()?;
    Ok(nw)
}

fn parse_sop(body: &str, lookup: &FxHashMap<String, SignalId>) -> Result<Sop, String> {
    match body {
        "0" => return Ok(Sop::zero()),
        "1" => return Ok(Sop::one()),
        _ => {}
    }
    let mut cubes = Vec::new();
    for cube_txt in body.split('|') {
        let mut lits = Vec::new();
        for tok in cube_txt.split_whitespace() {
            let (neg, name) = match tok.strip_prefix('~') {
                Some(n) => (true, n),
                None => (false, tok),
            };
            let id = *lookup
                .get(name)
                .ok_or_else(|| format!("unknown signal {name:?}"))?;
            lits.push(Lit::new(pf_sop::Var::new(id), neg));
        }
        if lits.is_empty() {
            return Err("empty cube (use `1` for the constant)".into());
        }
        cubes.push(Cube::from_lits(lits));
    }
    Ok(Sop::from_cubes(cubes))
}

/// Writes a network in the text format accepted by [`read_network`].
pub fn write_network(nw: &Network) -> String {
    let mut out = String::new();
    let inputs: Vec<&str> = nw.input_ids().map(|i| nw.name(i)).collect();
    if !inputs.is_empty() {
        writeln!(out, "inputs {}", inputs.join(" ")).unwrap();
    }
    for n in nw.node_ids() {
        let f = nw.func(n);
        let body = if f.is_zero() {
            "0".to_string()
        } else if f.is_one() {
            "1".to_string()
        } else {
            f.iter()
                .map(|cube| {
                    cube.iter()
                        .map(|l| {
                            let name = nw.name(l.var().index());
                            if l.is_negated() {
                                format!("~{name}")
                            } else {
                                name.to_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect::<Vec<_>>()
                .join(" | ")
        };
        writeln!(out, "node {} = {}", nw.name(n), body).unwrap();
    }
    if !nw.outputs().is_empty() {
        let names: Vec<&str> = nw.outputs().iter().map(|&o| nw.name(o)).collect();
        writeln!(out, "outputs {}", names.join(" ")).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::example_1_1;
    use crate::sim::{equivalent_random, EquivConfig};

    #[test]
    fn roundtrip_example_network() {
        let (nw, _) = example_1_1();
        let text = write_network(&nw);
        let back = read_network(&text).unwrap();
        assert_eq!(back.literal_count(), nw.literal_count());
        assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn parses_negated_literals_and_constants() {
        let text = "
            inputs a b
            node f = ~a b | a ~b
            node t = 1
            node z = 0
            outputs f t z
        ";
        let nw = read_network(text).unwrap();
        let f = nw.find("f").unwrap();
        assert_eq!(nw.func(f).literal_count(), 4);
        let t = nw.find("t").unwrap();
        assert!(nw.func(t).is_one());
        let z = nw.find("z").unwrap();
        assert!(nw.func(z).is_zero());
    }

    #[test]
    fn forward_references_allowed() {
        let text = "
            inputs a
            node f = g a
            node g = a
            outputs f
        ";
        let nw = read_network(text).unwrap();
        assert!(nw.validate().is_ok());
        let f = nw.find("f").unwrap();
        let g = nw.find("g").unwrap();
        assert!(nw.fanins(f).contains(&g));
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let err = read_network("inputs a\nnode f = a q\noutputs f").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn cycle_is_rejected() {
        let err = read_network("inputs a\nnode f = g a\nnode g = f\noutputs f").unwrap_err();
        assert!(matches!(err, ParseError::Network(NetworkError::Cycle(_))));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
            # a comment
            inputs a b   # trailing comment

            node f = a b
            outputs f
        ";
        let nw = read_network(text).unwrap();
        assert_eq!(nw.literal_count(), 2);
    }

    #[test]
    fn unknown_directive_reported_with_line() {
        let err = read_network("inputs a\nfrobnicate x").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn mixed_phase_io_roundtrip() {
        let text = "inputs a b c\nnode f = ~a ~b | c\noutputs f";
        let nw = read_network(text).unwrap();
        let back = read_network(&write_network(&nw)).unwrap();
        assert!(equivalent_random(&nw, &back, &EquivConfig::default()).unwrap());
    }
}
