//! Property-based tests for the cube/SOP algebra.
//!
//! These check the algebraic identities the factorization engine relies
//! on, over randomly generated expressions: division recomposition,
//! kernel definitions, and canonical-form stability.

use pf_sop::{divide, divide_by_cube, kernels, kernels_with_trivial, quick_factor, Cube, Lit, Sop};
use proptest::prelude::*;

/// Strategy: a random cube over `nvars` positive-phase variables with up
/// to `max_len` literals. Positive phase keeps products conflict-free so
/// closure properties can be tested without fiddling with `Option`.
fn arb_cube(nvars: u32, max_len: usize) -> impl Strategy<Value = Cube> {
    prop::collection::btree_set(0..nvars, 0..=max_len)
        .prop_map(|vars| Cube::from_lits(vars.into_iter().map(Lit::pos)))
}

/// Strategy: a random SOP with up to `max_cubes` cubes.
fn arb_sop(nvars: u32, max_len: usize, max_cubes: usize) -> impl Strategy<Value = Sop> {
    prop::collection::vec(arb_cube(nvars, max_len), 0..=max_cubes).prop_map(Sop::from_cubes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// f = (f/d)·d + r for division by a cube.
    #[test]
    fn cube_division_recomposes(f in arb_sop(8, 4, 8), d in arb_cube(8, 3)) {
        let div = divide_by_cube(&f, &d);
        let recomposed = div.quotient.product_cube(&d).sum(&div.remainder);
        prop_assert_eq!(recomposed, f);
    }

    /// f = (f/d)·d + r for division by an expression, as long as the
    /// product q·d introduces no conflicting cubes (guaranteed here by
    /// positive phases).
    #[test]
    fn sop_division_recomposes(f in arb_sop(8, 4, 8), d in arb_sop(8, 3, 3)) {
        let div = divide(&f, &d);
        let recomposed = div.quotient.product(&d).sum(&div.remainder);
        prop_assert_eq!(recomposed, f);
    }

    /// The quotient by an expression never exceeds the quotient by any
    /// single cube of it.
    #[test]
    fn quotient_shrinks_with_divisor(f in arb_sop(8, 4, 8), d in arb_sop(8, 3, 3)) {
        prop_assume!(!d.is_zero());
        let full = divide(&f, &d).quotient;
        let first = divide_by_cube(&f, &d.cubes()[0]).quotient;
        prop_assert!(full.num_cubes() <= first.num_cubes());
    }

    /// Every reported kernel satisfies the definition: cube-free and
    /// equal to f divided by its co-kernel.
    #[test]
    fn kernels_satisfy_definition(f in arb_sop(10, 4, 10)) {
        for p in kernels_with_trivial(&f) {
            prop_assert!(p.kernel.is_cube_free(), "{:?} not cube-free", p.kernel);
            let q = divide_by_cube(&f, &p.cokernel).quotient;
            prop_assert_eq!(&q, &p.kernel, "co-kernel {:?}", p.cokernel);
        }
    }

    /// Kernel output contains no duplicate (co-kernel, kernel) pairs.
    #[test]
    fn kernels_are_duplicate_free(f in arb_sop(10, 4, 10)) {
        let ks = kernels(&f);
        let mut sorted = ks.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ks.len());
    }

    /// Co-kernels all contain the largest common cube of f.
    #[test]
    fn cokernels_contain_lcc(f in arb_sop(10, 4, 10)) {
        prop_assume!(f.num_cubes() >= 2);
        let lcc = f.largest_common_cube();
        for p in kernels(&f) {
            prop_assert!(p.cokernel.divisible_by(&lcc));
        }
    }

    /// Canonical form is a fixpoint: rebuilding from the cubes yields the
    /// same expression.
    #[test]
    fn canonical_form_is_fixpoint(f in arb_sop(8, 4, 10)) {
        let rebuilt = Sop::from_cubes(f.cubes().iter().cloned());
        prop_assert_eq!(rebuilt, f);
    }

    /// Sum is commutative, associative and idempotent.
    #[test]
    fn sum_laws(a in arb_sop(8, 3, 6), b in arb_sop(8, 3, 6), c in arb_sop(8, 3, 6)) {
        prop_assert_eq!(a.sum(&b), b.sum(&a));
        prop_assert_eq!(a.sum(&b).sum(&c), a.sum(&b.sum(&c)));
        prop_assert_eq!(a.sum(&a), a.clone());
    }

    /// Product is commutative and distributes over sum (under the
    /// canonical form, which may merge/absorb cubes on both sides
    /// equally).
    #[test]
    fn product_laws(a in arb_sop(6, 2, 4), b in arb_sop(6, 2, 4), c in arb_sop(6, 2, 4)) {
        prop_assert_eq!(a.product(&b), b.product(&a));
        prop_assert_eq!(a.product(&b.sum(&c)), a.product(&b).sum(&a.product(&c)));
    }

    /// The cube-free part is cube-free (or trivially small) and
    /// reconstructs f when multiplied by the largest common cube.
    #[test]
    fn cube_free_part_reconstructs(f in arb_sop(8, 4, 8)) {
        prop_assume!(!f.is_zero());
        let lcc = f.largest_common_cube();
        let cf = f.cube_free_part();
        prop_assert_eq!(cf.product_cube(&lcc), f.clone());
        if cf.num_cubes() >= 2 {
            prop_assert!(cf.largest_common_cube().is_one());
        }
    }

    /// simplify_sop preserves the Boolean function (checked by full
    /// truth table over ≤ 8 variables) and never grows the cover.
    #[test]
    fn simplify_is_boolean_equivalent(
        cubes in prop::collection::vec(
            prop::collection::btree_map(0u32..8, any::<bool>(), 1..=4),
            1..=8,
        )
    ) {
        let f = Sop::from_cubes(cubes.into_iter().map(|m| {
            Cube::from_lits(m.into_iter().map(|(v, neg)| {
                if neg { Lit::neg(v) } else { Lit::pos(v) }
            }))
        }));
        let g = pf_sop::simplify_sop(&f);
        prop_assert!(g.literal_count() <= f.literal_count());
        for m in 0..(1u64 << 8) {
            prop_assert_eq!(pf_sop::eval_sop(&f, m), pf_sop::eval_sop(&g, m));
        }
        // Fixpoint: simplifying again changes nothing.
        prop_assert_eq!(pf_sop::simplify_sop(&g), g);
    }

    /// quick_factor is algebraically exact and never grows the literal
    /// count.
    #[test]
    fn quick_factor_exact_and_no_larger(f in arb_sop(8, 4, 8)) {
        let fac = quick_factor(&f);
        prop_assert_eq!(fac.to_sop(), f.clone());
        prop_assert!(fac.literal_count() <= f.literal_count());
    }

    /// Extracting any kernel via division never increases literal count
    /// of the factored form: LC(q)·?… we check the weaker invariant used
    /// by the gain model: covered literals ≥ quotient + divisor cost when
    /// the rectangle value is positive. Here: LC(f) ≥ LC(r) always.
    #[test]
    fn remainder_never_larger(f in arb_sop(8, 4, 8), d in arb_sop(8, 3, 3)) {
        let div = divide(&f, &d);
        prop_assert!(div.remainder.literal_count() <= f.literal_count());
        prop_assert!(div.remainder.num_cubes() <= f.num_cubes());
    }
}
