//! Cubes — product terms over literals.
//!
//! A cube is a set of literals kept as a sorted, duplicate-free vector.
//! The sorted representation makes subset tests, intersections and
//! quotients single merge passes, and gives cubes a canonical form so the
//! same product always hashes and compares identically — the KC-matrix
//! column labeling in `pf-kcmatrix` depends on this.

use crate::lit::Lit;
use std::fmt;

/// A product term: a sorted set of literals.
///
/// The empty cube represents the constant **1** (the identity of the
/// algebraic product). A cube never contains both phases of a variable;
/// [`Cube::product`] returns `None` when a product would.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// The constant-1 cube (no literals).
    #[inline]
    pub fn one() -> Self {
        Cube { lits: Vec::new() }
    }

    /// Builds a cube from literals; sorts and deduplicates.
    ///
    /// # Panics
    /// Panics if both phases of a variable are present — such a product is
    /// identically 0 and the algebraic layer never forms it.
    pub fn from_lits(lits: impl IntoIterator<Item = Lit>) -> Self {
        let mut v: Vec<Lit> = lits.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for w in v.windows(2) {
            assert!(
                w[0].var() != w[1].var(),
                "cube contains both phases of {:?}",
                w[0].var()
            );
        }
        Cube { lits: v }
    }

    /// Builds a cube from a pre-sorted, duplicate-free literal vector.
    ///
    /// Used on hot paths where the invariant is already established;
    /// checked in debug builds only.
    #[inline]
    pub fn from_sorted_unchecked(lits: Vec<Lit>) -> Self {
        debug_assert!(lits.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        debug_assert!(lits.windows(2).all(|w| w[0].var() != w[1].var()));
        Cube { lits }
    }

    /// A single-literal cube.
    #[inline]
    pub fn single(lit: Lit) -> Self {
        Cube { lits: vec![lit] }
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the constant-1 cube.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` iff the cube has no literals (alias of [`Cube::is_one`],
    /// provided for collection-style call sites).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The literals, in ascending order.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Whether `lit` occurs in this cube (binary search).
    #[inline]
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.binary_search(&lit).is_ok()
    }

    /// Whether `other` divides this cube evenly, i.e. every literal of
    /// `other` occurs here (`other ⊆ self`).
    pub fn divisible_by(&self, other: &Cube) -> bool {
        if other.lits.len() > self.lits.len() {
            return false;
        }
        // Merge walk over two sorted lists.
        let mut it = self.lits.iter();
        'outer: for &l in &other.lits {
            for &m in it.by_ref() {
                if m == l {
                    continue 'outer;
                }
                if m > l {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// The quotient `self / other`, i.e. the literals of `self` not in
    /// `other`. Returns `None` when `other` does not divide `self`.
    pub fn quotient(&self, other: &Cube) -> Option<Cube> {
        if !self.divisible_by(other) {
            return None;
        }
        let mut out = Vec::with_capacity(self.lits.len() - other.lits.len());
        let mut j = 0;
        for &l in &self.lits {
            if j < other.lits.len() && other.lits[j] == l {
                j += 1;
            } else {
                out.push(l);
            }
        }
        Some(Cube { lits: out })
    }

    /// The largest cube dividing both `self` and `other` (set
    /// intersection of literals).
    pub fn intersection(&self, other: &Cube) -> Cube {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.lits.len() && j < other.lits.len() {
            match self.lits[i].cmp(&other.lits[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.lits[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Cube { lits: out }
    }

    /// The algebraic product `self · other` (literal union).
    ///
    /// Returns `None` when the product would contain both phases of a
    /// variable, i.e. is identically 0.
    pub fn product(&self, other: &Cube) -> Option<Cube> {
        let mut out = Vec::with_capacity(self.lits.len() + other.lits.len());
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            match self.lits[i].cmp(&other.lits[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.lits[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.lits[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.lits[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.lits[i..]);
        out.extend_from_slice(&other.lits[j..]);
        for w in out.windows(2) {
            if w[0].var() == w[1].var() {
                return None;
            }
        }
        Some(Cube { lits: out })
    }

    /// Whether the two cubes share at least one literal.
    pub fn intersects(&self, other: &Cube) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            match self.lits[i].cmp(&other.lits[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> impl Iterator<Item = Lit> + '_ {
        self.lits.iter().copied()
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        for (k, l) in self.lits.iter().enumerate() {
            if k > 0 {
                write!(f, "·")?;
            }
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Lit> for Cube {
    fn from_iter<T: IntoIterator<Item = Lit>>(iter: T) -> Self {
        Cube::from_lits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    #[test]
    fn one_cube() {
        let one = Cube::one();
        assert!(one.is_one());
        assert_eq!(one.len(), 0);
        assert!(c(&[1, 2]).divisible_by(&one));
        assert_eq!(c(&[1, 2]).quotient(&one), Some(c(&[1, 2])));
    }

    #[test]
    fn from_lits_sorts_and_dedups() {
        let cube = Cube::from_lits([Lit::pos(3), Lit::pos(1), Lit::pos(3)]);
        assert_eq!(cube.lits(), &[Lit::pos(1), Lit::pos(3)]);
    }

    #[test]
    #[should_panic(expected = "both phases")]
    fn conflicting_phases_panic() {
        let _ = Cube::from_lits([Lit::pos(1), Lit::neg(1)]);
    }

    #[test]
    fn divisibility() {
        assert!(c(&[1, 2, 3]).divisible_by(&c(&[1, 3])));
        assert!(!c(&[1, 2, 3]).divisible_by(&c(&[1, 4])));
        assert!(!c(&[1]).divisible_by(&c(&[1, 2])));
        assert!(c(&[5]).divisible_by(&c(&[5])));
    }

    #[test]
    fn quotient_removes_divisor_lits() {
        assert_eq!(c(&[1, 2, 3]).quotient(&c(&[2])), Some(c(&[1, 3])));
        assert_eq!(c(&[1, 2, 3]).quotient(&c(&[1, 2, 3])), Some(Cube::one()));
        assert_eq!(c(&[1, 2]).quotient(&c(&[3])), None);
    }

    #[test]
    fn quotient_respects_phase() {
        let cube = Cube::from_lits([Lit::neg(1), Lit::pos(2)]);
        assert_eq!(cube.quotient(&Cube::single(Lit::pos(1))), None);
        assert_eq!(
            cube.quotient(&Cube::single(Lit::neg(1))),
            Some(Cube::single(Lit::pos(2)))
        );
    }

    #[test]
    fn intersection_is_largest_common_divisor() {
        let a = c(&[1, 2, 4]);
        let b = c(&[2, 3, 4]);
        let i = a.intersection(&b);
        assert_eq!(i, c(&[2, 4]));
        assert!(a.divisible_by(&i) && b.divisible_by(&i));
    }

    #[test]
    fn product_merges_and_detects_conflict() {
        assert_eq!(c(&[1]).product(&c(&[2])), Some(c(&[1, 2])));
        assert_eq!(c(&[1, 2]).product(&c(&[2, 3])), Some(c(&[1, 2, 3])));
        let x = Cube::single(Lit::pos(1));
        let nx = Cube::single(Lit::neg(1));
        assert_eq!(x.product(&nx), None);
    }

    #[test]
    fn product_then_quotient_roundtrip() {
        let a = c(&[1, 5]);
        let b = c(&[2, 7]);
        let p = a.product(&b).unwrap();
        assert_eq!(p.quotient(&a), Some(b.clone()));
        assert_eq!(p.quotient(&b), Some(a));
    }

    #[test]
    fn intersects_basic() {
        assert!(c(&[1, 2]).intersects(&c(&[2, 3])));
        assert!(!c(&[1, 2]).intersects(&c(&[3, 4])));
        assert!(!Cube::one().intersects(&c(&[1])));
    }

    #[test]
    fn ordering_is_lexicographic_on_sorted_lits() {
        assert!(c(&[1]) < c(&[1, 2]));
        assert!(c(&[1, 2]) < c(&[2]));
    }
}
