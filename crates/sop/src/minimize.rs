//! Light two-level minimization — the don't-care-free core of SIS's
//! `simplify`.
//!
//! Unlike everything else in this crate these rules are *Boolean*, not
//! algebraic: they exploit `x + x̄ = 1`. Three rewrites run to a
//! fixpoint:
//!
//! 1. **merge** — `x·R + x̄·R = R`;
//! 2. **reduce** — `x·R + x̄·S = R + x̄·S` when `S ⊆ R` (the consensus
//!    `R` absorbs `x·R`);
//! 3. **containment** — `R + R·S = R` (already enforced by the
//!    canonical form).
//!
//! The function computed is unchanged; only its SOP gets smaller. The
//! synthesis script runs this between extraction passes, mirroring
//! SIS's `simplify` placement.

use crate::cube::Cube;
use crate::expr::Sop;
use crate::lit::Lit;

/// One simplification step on a cube pair, if any rule applies:
/// given `c1` and `c2` returns the replacement for `(c1, c2)`.
fn pair_rule(c1: &Cube, c2: &Cube) -> Option<(Option<Cube>, Option<Cube>)> {
    // Find the distance-1 variable: exactly one variable present in both
    // with opposite phases.
    let mut opposite: Option<Lit> = None;
    for l in c1.iter() {
        if c2.contains(l.complement()) {
            if opposite.is_some() {
                return None; // distance ≥ 2: no single-variable rule
            }
            opposite = Some(l);
        }
    }
    let x = opposite?;
    let r = c1.quotient(&Cube::single(x)).expect("x ∈ c1");
    let s = c2.quotient(&Cube::single(x.complement())).expect("x̄ ∈ c2");
    if r == s {
        // merge: x·R + x̄·R = R
        return Some((Some(r), None));
    }
    if s.divisible_by(&r) {
        // S ⊇ R: x̄·S is inside R except for x̄ … careful: rule needs
        // S ⊆ R to drop x from c1. Here S ⊇ R means R ⊆ S: then
        // x·R + x̄·S = x·R + x̄·S, consensus = R∪S = S ⇒ c2 loses x̄.
        return Some((Some(c1.clone()), Some(s)));
    }
    if r.divisible_by(&s) {
        // S ⊆ R ⇒ c1 loses x.
        return Some((Some(r), Some(c2.clone())));
    }
    None
}

/// Two-level simplification to a fixpoint. Returns the (functionally
/// equal) minimized expression.
pub fn simplify_sop(f: &Sop) -> Sop {
    let mut cur = f.clone();
    loop {
        let cubes = cur.cubes();
        let mut changed = false;
        let mut next: Vec<Cube> = Vec::with_capacity(cubes.len());
        let mut consumed = vec![false; cubes.len()];
        'outer: for i in 0..cubes.len() {
            if consumed[i] {
                continue;
            }
            for j in (i + 1)..cubes.len() {
                if consumed[j] {
                    continue;
                }
                if let Some((r1, r2)) = pair_rule(&cubes[i], &cubes[j]) {
                    let replaced = r1.as_ref() != Some(&cubes[i]) || r2.as_ref() != Some(&cubes[j]);
                    if !replaced {
                        continue;
                    }
                    consumed[i] = true;
                    consumed[j] = true;
                    if let Some(c) = r1 {
                        next.push(c);
                    }
                    if let Some(c) = r2 {
                        next.push(c);
                    }
                    changed = true;
                    continue 'outer;
                }
            }
            next.push(cubes[i].clone());
        }
        let candidate = Sop::from_cubes(next);
        if !changed && candidate == cur {
            return cur;
        }
        cur = candidate;
        if !changed {
            return cur;
        }
    }
}

/// Evaluates an SOP on a total assignment given as a bitmask over
/// variable indices (bit `i` = value of variable `i`). Test helper made
/// public for the workspace's oracle checks.
pub fn eval_sop(f: &Sop, assignment: u64) -> bool {
    f.iter().any(|cube| {
        cube.iter().all(|l| {
            let v = assignment >> l.var().index() & 1 == 1;
            v != l.is_negated()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equal(a: &Sop, b: &Sop, nvars: u32) {
        for m in 0..(1u64 << nvars) {
            assert_eq!(
                eval_sop(a, m),
                eval_sop(b, m),
                "differ at {m:b}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn merge_rule() {
        // ab + a̅b = b
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::pos(0), Lit::pos(1)]),
            Cube::from_lits([Lit::neg(0), Lit::pos(1)]),
        ]);
        let g = simplify_sop(&f);
        assert_eq!(g, Sop::from_cube(Cube::single(Lit::pos(1))));
        check_equal(&f, &g, 2);
    }

    #[test]
    fn reduce_rule() {
        // xab + x̄a = ab + x̄a   (S = a ⊆ R = ab ⇒ drop x)
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::pos(0), Lit::pos(1), Lit::pos(2)]),
            Cube::from_lits([Lit::neg(0), Lit::pos(1)]),
        ]);
        let g = simplify_sop(&f);
        assert!(g.literal_count() < f.literal_count());
        check_equal(&f, &g, 3);
    }

    #[test]
    fn chain_of_merges_collapses_parity_free_cover() {
        // ab + a̅b + ab̅ + a̅b̅ = 1
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::pos(0), Lit::pos(1)]),
            Cube::from_lits([Lit::neg(0), Lit::pos(1)]),
            Cube::from_lits([Lit::pos(0), Lit::neg(1)]),
            Cube::from_lits([Lit::neg(0), Lit::neg(1)]),
        ]);
        let g = simplify_sop(&f);
        assert!(g.is_one(), "{g}");
        check_equal(&f, &g, 2);
    }

    #[test]
    fn xor_is_already_minimal() {
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::pos(0), Lit::neg(1)]),
            Cube::from_lits([Lit::neg(0), Lit::pos(1)]),
        ]);
        assert_eq!(simplify_sop(&f), f);
    }

    #[test]
    fn algebraic_expressions_untouched() {
        // Positive-phase-only SOPs have no distance-1 pairs.
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::pos(0), Lit::pos(1)]),
            Cube::from_lits([Lit::pos(2), Lit::pos(3)]),
        ]);
        assert_eq!(simplify_sop(&f), f);
    }

    #[test]
    fn constants_are_fixpoints() {
        assert_eq!(simplify_sop(&Sop::zero()), Sop::zero());
        assert_eq!(simplify_sop(&Sop::one()), Sop::one());
    }

    #[test]
    fn eval_sop_basics() {
        // f = a·b̄ over vars {0, 1}
        let f = Sop::from_cube(Cube::from_lits([Lit::pos(0), Lit::neg(1)]));
        assert!(eval_sop(&f, 0b01));
        assert!(!eval_sop(&f, 0b11));
        assert!(!eval_sop(&f, 0b00));
        assert!(eval_sop(&Sop::one(), 0));
        assert!(!eval_sop(&Sop::zero(), 0));
    }
}
