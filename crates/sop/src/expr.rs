//! Sum-of-products expressions.
//!
//! An expression is a canonical (sorted, duplicate-free) set of cubes.
//! The algebraic model treats an expression as a *set*: `f + f = f`, and
//! no cube of an expression may contain another (single-cube containment
//! is removed on construction, matching the "minimal with respect to
//! single-cube containment" precondition of the MIS kernel theory).

use crate::cube::Cube;
use crate::lit::Lit;
use std::fmt;

/// A sum of products in canonical form.
///
/// Invariants: cubes are sorted, duplicate-free, and no cube divides
/// another (single-cube containment is minimal). The empty expression is
/// the constant **0**; the expression containing only [`Cube::one`] is the
/// constant **1**.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// The constant-0 expression (no cubes).
    #[inline]
    pub fn zero() -> Self {
        Sop { cubes: Vec::new() }
    }

    /// The constant-1 expression (the single empty cube).
    #[inline]
    pub fn one() -> Self {
        Sop {
            cubes: vec![Cube::one()],
        }
    }

    /// Builds an expression from cubes, canonicalizing: sorts, removes
    /// duplicates and removes cubes contained in (divisible by) others.
    pub fn from_cubes(cubes: impl IntoIterator<Item = Cube>) -> Self {
        let mut v: Vec<Cube> = cubes.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        // Remove single-cube containment: cube c is redundant if some
        // other cube d divides it (d ⊆ c ⇒ c + d = d).
        let snapshot = v.clone();
        v.retain(|c| !snapshot.iter().any(|d| d != c && c.divisible_by(d)));
        Sop { cubes: v }
    }

    /// Builds from already-canonical cubes; checked in debug builds.
    #[inline]
    pub fn from_sorted_unchecked(cubes: Vec<Cube>) -> Self {
        debug_assert!(cubes.windows(2).all(|w| w[0] < w[1]));
        Sop { cubes }
    }

    /// A single-cube expression.
    pub fn from_cube(cube: Cube) -> Self {
        Sop { cubes: vec![cube] }
    }

    /// Number of cubes.
    #[inline]
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Whether this is the constant 0.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Whether this is the constant 1.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.cubes.len() == 1 && self.cubes[0].is_one()
    }

    /// Whether the expression consists of a single cube.
    #[inline]
    pub fn is_cube(&self) -> bool {
        self.cubes.len() == 1
    }

    /// The cubes, in canonical order.
    #[inline]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Total number of literals — the paper's **LC** area estimate for a
    /// single expression.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::len).sum()
    }

    /// Whether `cube` is one of the cubes (binary search).
    pub fn contains_cube(&self, cube: &Cube) -> bool {
        self.cubes.binary_search(cube).is_ok()
    }

    /// The largest cube dividing every cube of the expression (the
    /// literal intersection of all cubes). For the constant 0 this is the
    /// 1-cube.
    pub fn largest_common_cube(&self) -> Cube {
        let mut it = self.cubes.iter();
        let Some(first) = it.next() else {
            return Cube::one();
        };
        let mut acc = first.clone();
        for c in it {
            if acc.is_one() {
                break;
            }
            acc = acc.intersection(c);
        }
        acc
    }

    /// Whether the expression is *cube-free*: no single non-trivial cube
    /// divides it evenly. A cube-free expression necessarily has at least
    /// two cubes (the constant 1 is cube-free by convention in some texts;
    /// we follow MIS and call single-cube expressions not cube-free).
    pub fn is_cube_free(&self) -> bool {
        self.cubes.len() >= 2 && self.largest_common_cube().is_one()
    }

    /// `self / c` followed by multiplication back: the cube-free part of
    /// the expression, i.e. `self / largest_common_cube()`.
    pub fn cube_free_part(&self) -> Sop {
        let lcc = self.largest_common_cube();
        if lcc.is_one() {
            return self.clone();
        }
        Sop {
            cubes: self
                .cubes
                .iter()
                .map(|c| c.quotient(&lcc).expect("lcc divides every cube"))
                .collect(),
        }
    }

    /// Algebraic sum `self + other` (cube-set union, canonicalized).
    pub fn sum(&self, other: &Sop) -> Sop {
        Sop::from_cubes(self.cubes.iter().chain(other.cubes.iter()).cloned())
    }

    /// Algebraic product `self · other`.
    ///
    /// Cubes whose product would be identically 0 (conflicting phases)
    /// are dropped, matching how SIS forms `quotient × divisor` products
    /// during resubstitution.
    pub fn product(&self, other: &Sop) -> Sop {
        let mut out = Vec::with_capacity(self.cubes.len() * other.cubes.len());
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(p) = a.product(b) {
                    out.push(p);
                }
            }
        }
        Sop::from_cubes(out)
    }

    /// Product with a single cube.
    pub fn product_cube(&self, cube: &Cube) -> Sop {
        Sop::from_cubes(self.cubes.iter().filter_map(|c| c.product(cube)))
    }

    /// Cube-set difference `self − other`.
    pub fn difference(&self, other: &Sop) -> Sop {
        Sop::from_sorted_unchecked(
            self.cubes
                .iter()
                .filter(|c| !other.contains_cube(c))
                .cloned()
                .collect(),
        )
    }

    /// All distinct literals occurring in the expression, sorted.
    pub fn support_lits(&self) -> Vec<Lit> {
        let mut lits: Vec<Lit> = self.cubes.iter().flat_map(|c| c.iter()).collect();
        lits.sort_unstable();
        lits.dedup();
        lits
    }

    /// Number of cubes containing `lit`.
    pub fn lit_occurrences(&self, lit: Lit) -> usize {
        self.cubes.iter().filter(|c| c.contains(lit)).count()
    }

    /// Iterates over cubes.
    pub fn iter(&self) -> impl Iterator<Item = &Cube> {
        self.cubes.iter()
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (k, c) in self.cubes.iter().enumerate() {
            if k > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Cube> for Sop {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        Sop::from_cubes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    #[test]
    fn constants() {
        assert!(Sop::zero().is_zero());
        assert!(Sop::one().is_one());
        assert_eq!(Sop::zero().literal_count(), 0);
        assert_eq!(Sop::one().literal_count(), 0);
    }

    #[test]
    fn canonicalization_dedups_and_removes_containment() {
        // ab + a = a  (a divides ab)
        let f = sop(&[&[1, 2], &[1]]);
        assert_eq!(f, sop(&[&[1]]));
        // duplicates collapse
        let g = Sop::from_cubes([cube(&[1, 2]), cube(&[1, 2])]);
        assert_eq!(g.num_cubes(), 1);
    }

    #[test]
    fn literal_count_matches_paper_example() {
        // F = af + bf + ag + cg + ade + bde + cde  — 16 literals
        // G = af + bf + ace + bce                  — 10 literals
        // H = ade + cde                            — 6 literals, total 32? The
        // paper counts LC(N) = 33 before extraction; its F uses 3-literal
        // cubes ade/bde/cde (9) + 2-literal af/bf/ag/cg (8) = 17... per-node
        // totals are checked precisely in pf-network's example_1_1 test;
        // here we just check the primitive adds up.
        let f = sop(&[&[1, 2], &[3, 4, 5]]);
        assert_eq!(f.literal_count(), 5);
    }

    #[test]
    fn largest_common_cube() {
        let f = sop(&[&[1, 2, 3], &[1, 3, 4], &[1, 3]]);
        // 1·3 divides 1·2·3 and 1·3·4 but 1·3 itself is contained … note
        // canonicalization removes the superset cubes? No: containment
        // removal drops cubes divisible by another cube, so [1,2,3] and
        // [1,3,4] are dropped in favor of [1,3].
        assert_eq!(f, sop(&[&[1, 3]]));
        let g = sop(&[&[1, 2, 3], &[1, 3, 4]]);
        assert_eq!(g.largest_common_cube(), cube(&[1, 3]));
    }

    #[test]
    fn cube_free_tests() {
        // a + b is cube-free
        assert!(sop(&[&[1], &[2]]).is_cube_free());
        // ab + ac is not (a divides both)
        assert!(!sop(&[&[1, 2], &[1, 3]]).is_cube_free());
        // single cube is not cube-free
        assert!(!sop(&[&[1, 2]]).is_cube_free());
        // constant 0 / 1 are not cube-free
        assert!(!Sop::zero().is_cube_free());
        assert!(!Sop::one().is_cube_free());
    }

    #[test]
    fn cube_free_part_strips_common_cube() {
        let g = sop(&[&[1, 2, 3], &[1, 3, 4]]);
        assert_eq!(g.cube_free_part(), sop(&[&[2], &[4]]));
        let already = sop(&[&[1], &[2]]);
        assert_eq!(already.cube_free_part(), already);
    }

    #[test]
    fn sum_and_difference() {
        let f = sop(&[&[1], &[2]]);
        let g = sop(&[&[2], &[3]]);
        assert_eq!(f.sum(&g), sop(&[&[1], &[2], &[3]]));
        assert_eq!(f.difference(&g), sop(&[&[1]]));
    }

    #[test]
    fn product_distributes() {
        let f = sop(&[&[1], &[2]]);
        let g = sop(&[&[3], &[4]]);
        assert_eq!(f.product(&g), sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4]]));
    }

    #[test]
    fn product_drops_conflicting_cubes() {
        let x = Sop::from_cube(Cube::single(Lit::pos(1)));
        let nx = Sop::from_cube(Cube::single(Lit::neg(1)));
        assert!(x.product(&nx).is_zero());
    }

    #[test]
    fn product_with_one_is_identity() {
        let f = sop(&[&[1, 2], &[3]]);
        assert_eq!(f.product(&Sop::one()), f);
        assert_eq!(f.product_cube(&Cube::one()), f);
    }

    #[test]
    fn support_and_occurrences() {
        let f = sop(&[&[1, 2], &[2, 3]]);
        assert_eq!(
            f.support_lits(),
            vec![Lit::pos(1), Lit::pos(2), Lit::pos(3)]
        );
        assert_eq!(f.lit_occurrences(Lit::pos(2)), 2);
        assert_eq!(f.lit_occurrences(Lit::pos(9)), 0);
    }
}
