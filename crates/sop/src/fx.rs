//! A small, fast, deterministic hasher (FxHash-style).
//!
//! The factorization engine keys many maps by small integers and by
//! canonical cubes; SipHash is needlessly slow there and HashDoS is not a
//! concern for a synthesis tool, so we use the multiply-and-xor scheme
//! popularized by rustc. Implemented locally to keep the dependency set
//! inside the approved offline crates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-and-xor hasher; identical output across runs and platforms
/// of the same pointer width for the integer widths we feed it.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
