#![warn(missing_docs)]

//! # pf-sop — cube and sum-of-products algebra
//!
//! The algebraic (as opposed to Boolean) view of logic used by MIS/SIS
//! style factorization, reimplemented from scratch for the reproduction of
//! Roy & Banerjee, *A Comparison of Parallel Approaches for Algebraic
//! Factorization in Logic Synthesis* (IPPS 1997).
//!
//! In the algebraic model a [`Lit`] (a variable or its negation) is an
//! opaque atom: `x` and `x̄` are unrelated symbols, products may not
//! contain both, and no Boolean simplification (`x + x̄ = 1`) is applied.
//! A [`Cube`] is a set of literals (a product term), a [`Sop`] is a set of
//! cubes (a sum of products). On top of these the crate provides
//!
//! * algebraic (weak) division — [`divide`],
//! * the cube-free test and the largest common cube,
//! * kernel / co-kernel enumeration — [`kernels`], the classic recursive
//!   `KERNEL` procedure of Brayton–Rudell,
//! * a fast, deterministic hash map ([`fx::FxHashMap`]) used by the hot
//!   paths of the factorization engine.
//!
//! All structures are ordered canonically so equal objects compare equal,
//! hash equal and print identically — a property the parallel algorithms
//! in `pf-core` rely on when matching kernel cubes across processors.

pub mod cube;
pub mod divide;
pub mod expr;
pub mod factor;
pub mod fx;
pub mod kernel;
pub mod lit;
pub mod minimize;

pub use cube::Cube;
pub use divide::{divide, divide_by_cube};
pub use expr::Sop;
pub use factor::{quick_factor, Factored};
pub use kernel::{kernels, kernels_with_trivial, CoKernelPair, KernelConfig};
pub use lit::{Lit, Var};
pub use minimize::{eval_sop, simplify_sop};
