//! Kernel and co-kernel enumeration.
//!
//! The kernels of an expression `f` are its cube-free primary divisors:
//! `K(f) = { f/C : C a cube, f/C cube-free }`. Each kernel is recorded
//! together with the cube `C` that produced it — its *co-kernel* — because
//! the KC matrix has one row per `(node, co-kernel)` pair.
//!
//! The enumeration is the classic recursive `KERNEL(j, g)` procedure of
//! Brayton–Rudell (MIS): walk the support literals in a fixed order; for
//! every literal occurring in ≥ 2 cubes, divide by the largest common cube
//! of those cubes and recurse, pruning branches whose common cube contains
//! an already-visited literal (those kernels were found earlier).

use crate::cube::Cube;
use crate::expr::Sop;
use crate::lit::Lit;

/// A kernel together with the co-kernel cube that produced it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoKernelPair {
    /// The cube `C` such that `kernel = f / C`.
    pub cokernel: Cube,
    /// The cube-free primary divisor `f / C`.
    pub kernel: Sop,
}

/// Options for kernel enumeration.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Include the trivial pair `(1, f)` when `f` itself is cube-free.
    ///
    /// The paper's Figure 2 matrices omit it; SIS's `gkx` can include it
    /// so whole functions participate in rectangles (resubstitution).
    pub include_trivial: bool,
    /// Maximum recursion depth; `usize::MAX` enumerates all kernels,
    /// `1` yields only the first-level kernels (SIS's "level" knob).
    pub max_depth: usize,
    /// Stop after this many pairs (safety valve for pathological nodes).
    pub max_pairs: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            include_trivial: false,
            max_depth: usize::MAX,
            max_pairs: 1 << 16,
        }
    }
}

/// Enumerates all `(co-kernel, kernel)` pairs of `f` (without the trivial
/// `(1, f)` pair), using the default configuration.
///
/// ```
/// use pf_sop::{kernels, Cube, Lit, Sop};
/// // The paper's G = af + bf + ace + bce (a=0 b=1 c=2 e=3 f=4):
/// // kernels are ce+f (co-kernels a, b) and a+b (co-kernels f, ce).
/// let cube = |vs: &[u32]| Cube::from_lits(vs.iter().map(|&v| Lit::pos(v)));
/// let g = Sop::from_cubes([
///     cube(&[0, 4]), cube(&[1, 4]), cube(&[0, 2, 3]), cube(&[1, 2, 3]),
/// ]);
/// let ks = kernels(&g);
/// assert_eq!(ks.len(), 4);
/// let a_plus_b = Sop::from_cubes([cube(&[0]), cube(&[1])]);
/// assert!(ks.iter().any(|p| p.cokernel == cube(&[4]) && p.kernel == a_plus_b));
/// ```
pub fn kernels(f: &Sop) -> Vec<CoKernelPair> {
    kernels_config(f, &KernelConfig::default())
}

/// Like [`kernels`] but also yields `(1, f)` when `f` is cube-free.
pub fn kernels_with_trivial(f: &Sop) -> Vec<CoKernelPair> {
    kernels_config(
        f,
        &KernelConfig {
            include_trivial: true,
            ..KernelConfig::default()
        },
    )
}

/// Enumerates kernels under an explicit [`KernelConfig`].
pub fn kernels_config(f: &Sop, cfg: &KernelConfig) -> Vec<CoKernelPair> {
    let mut out = Vec::new();
    if f.num_cubes() < 2 {
        return out;
    }
    // Fixed literal order: the sorted support of f. Positions in this
    // list drive the duplicate-pruning test.
    let support = f.support_lits();
    let lcc = f.largest_common_cube();
    let base = f.cube_free_part();

    {
        let mut ctx = KernelCtx {
            support: &support,
            cfg,
            out: &mut out,
        };
        ctx.recurse(0, &base, &lcc, 0);
    }

    // Every co-kernel contains the largest common cube, so the recursion
    // starts from `f / lcc`; that quotient is itself a kernel with
    // co-kernel `lcc` whenever the common cube is non-trivial (e.g. the
    // paper's H = ade + cde ⇒ kernel a+c, co-kernel de).
    if !lcc.is_one() && base.num_cubes() >= 2 {
        out.push(CoKernelPair {
            cokernel: lcc,
            kernel: base,
        });
    }

    if cfg.include_trivial && f.is_cube_free() {
        out.push(CoKernelPair {
            cokernel: Cube::one(),
            kernel: f.clone(),
        });
    }
    out.sort_unstable();
    out.dedup();
    out
}

struct KernelCtx<'a> {
    support: &'a [Lit],
    cfg: &'a KernelConfig,
    out: &'a mut Vec<CoKernelPair>,
}

impl KernelCtx<'_> {
    /// `KERNEL(j, g)` with the accumulated co-kernel cube.
    fn recurse(&mut self, j: usize, g: &Sop, cokernel: &Cube, depth: usize) {
        if depth >= self.cfg.max_depth || self.out.len() >= self.cfg.max_pairs {
            return;
        }
        for i in j..self.support.len() {
            if self.out.len() >= self.cfg.max_pairs {
                return;
            }
            let li = self.support[i];
            // Gather the cubes of g containing li.
            let mut count = 0usize;
            let mut common: Option<Cube> = None;
            for c in g.iter() {
                if c.contains(li) {
                    count += 1;
                    common = Some(match common {
                        None => c.clone(),
                        Some(acc) => acc.intersection(c),
                    });
                }
            }
            if count < 2 {
                continue;
            }
            let common = common.expect("count >= 2 implies a common cube");
            // Duplicate pruning: if the common cube contains a literal
            // that precedes li in the fixed order, this kernel was (or
            // will be) produced from that literal's branch.
            let li_pos = i;
            let dup = common.iter().any(|l| {
                l != li
                    && self
                        .support
                        .binary_search(&l)
                        .map(|p| p < li_pos)
                        .unwrap_or(false)
            });
            if dup {
                continue;
            }
            // g1 = g / common — common divides every gathered cube.
            let g1 = Sop::from_cubes(
                g.iter()
                    .filter(|c| c.divisible_by(&common))
                    .map(|c| c.quotient(&common).expect("divisible")),
            );
            if g1.num_cubes() < 2 {
                continue;
            }
            let new_cokernel = cokernel
                .product(&common)
                .expect("co-kernel and common cube share no variable");
            self.out.push(CoKernelPair {
                cokernel: new_cokernel.clone(),
                kernel: g1.clone(),
            });
            self.recurse(i + 1, &g1, &new_cokernel, depth + 1);
        }
    }
}

/// Checks the defining property: `k` is a kernel of `f` iff `k` is
/// cube-free and `k == f / c` for its co-kernel `c`. Used by tests and
/// property checks.
pub fn is_kernel_of(f: &Sop, pair: &CoKernelPair) -> bool {
    if !pair.kernel.is_cube_free() {
        return false;
    }
    let div = crate::divide::divide_by_cube(f, &pair.cokernel);
    div.quotient == pair.kernel
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper variable map: a=1 b=2 c=3 d=4 e=5 f=6 g=7.
    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    /// G = af + bf + ace + bce (Eq. 1).
    fn paper_g() -> Sop {
        sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]])
    }

    /// F = af + bf + ag + cg + ade + bde + cde (Eq. 1).
    fn paper_f() -> Sop {
        sop(&[
            &[1, 6],
            &[2, 6],
            &[1, 7],
            &[3, 7],
            &[1, 4, 5],
            &[2, 4, 5],
            &[3, 4, 5],
        ])
    }

    /// H = ade + cde (Eq. 1).
    fn paper_h() -> Sop {
        sop(&[&[1, 4, 5], &[3, 4, 5]])
    }

    #[test]
    fn kernels_of_paper_g() {
        // Paper §2: kernels (co-kernels) of G are ce+f (a, b) and a+b (f, ce).
        let ks = kernels(&paper_g());
        let expect = vec![
            (cube(&[1]), sop(&[&[6], &[3, 5]])),
            (cube(&[2]), sop(&[&[6], &[3, 5]])),
            (cube(&[3, 5]), sop(&[&[1], &[2]])),
            (cube(&[6]), sop(&[&[1], &[2]])),
        ];
        let got: Vec<(Cube, Sop)> = ks
            .iter()
            .map(|p| (p.cokernel.clone(), p.kernel.clone()))
            .collect();
        for e in &expect {
            assert!(got.contains(e), "missing kernel pair {e:?}");
        }
        assert_eq!(got.len(), expect.len());
    }

    #[test]
    fn kernels_of_paper_f_match_figure_2() {
        // Figure 2 lists co-kernels a, b, de, f, c, g for F.
        let ks = kernels(&paper_f());
        let cokernels: Vec<Cube> = ks.iter().map(|p| p.cokernel.clone()).collect();
        for ck in [
            cube(&[1]),
            cube(&[2]),
            cube(&[4, 5]),
            cube(&[6]),
            cube(&[3]),
            cube(&[7]),
        ] {
            assert!(cokernels.contains(&ck), "missing co-kernel {ck:?}");
        }
        assert_eq!(ks.len(), 6);
        // Spot-check the kernels themselves.
        let by_ck = |ck: &Cube| {
            ks.iter()
                .find(|p| &p.cokernel == ck)
                .map(|p| p.kernel.clone())
                .unwrap()
        };
        assert_eq!(by_ck(&cube(&[1])), sop(&[&[6], &[7], &[4, 5]])); // f+g+de
        assert_eq!(by_ck(&cube(&[4, 5])), sop(&[&[1], &[2], &[3]])); // a+b+c
        assert_eq!(by_ck(&cube(&[6])), sop(&[&[1], &[2]])); // a+b
        assert_eq!(by_ck(&cube(&[7])), sop(&[&[1], &[3]])); // a+c
    }

    #[test]
    fn kernels_of_paper_h() {
        // H = ade + cde: single kernel a+c with co-kernel de.
        let ks = kernels(&paper_h());
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].cokernel, cube(&[4, 5]));
        assert_eq!(ks[0].kernel, sop(&[&[1], &[3]]));
    }

    #[test]
    fn all_pairs_satisfy_kernel_definition() {
        for f in [paper_f(), paper_g(), paper_h()] {
            for p in kernels(&f) {
                assert!(is_kernel_of(&f, &p), "{p:?} not a kernel of {f:?}");
            }
        }
    }

    #[test]
    fn trivial_pair_included_only_when_cube_free() {
        // G is cube-free → trivial pair present with include_trivial.
        let ks = kernels_with_trivial(&paper_g());
        assert!(ks
            .iter()
            .any(|p| p.cokernel.is_one() && p.kernel == paper_g()));
        // H = de(a+c) is not cube-free → no trivial pair.
        let ks = kernels_with_trivial(&paper_h());
        assert!(!ks.iter().any(|p| p.cokernel.is_one()));
    }

    #[test]
    fn single_cube_has_no_kernels() {
        assert!(kernels(&sop(&[&[1, 2, 3]])).is_empty());
        assert!(kernels(&Sop::zero()).is_empty());
        assert!(kernels(&Sop::one()).is_empty());
    }

    #[test]
    fn no_shared_literal_means_no_kernels() {
        // ab + cd: no literal in ≥2 cubes.
        assert!(kernels(&sop(&[&[1, 2], &[3, 4]])).is_empty());
    }

    #[test]
    fn depth_limit_restricts_to_level_one() {
        // f = abcx + abcy + abz + aw + v has a three-deep kernel chain:
        // (a, bcx+bcy+bz+w), (ab, cx+cy+z), (abc, x+y). A depth limit of 1
        // keeps only the first.
        // vars: a=1 b=2 c=3 x=4 y=5 z=6 w=7 v=8
        let f = sop(&[&[1, 2, 3, 4], &[1, 2, 3, 5], &[1, 2, 6], &[1, 7], &[8]]);
        let all = kernels(&f);
        assert_eq!(all.len(), 3);
        let shallow = kernels_config(
            &f,
            &KernelConfig {
                max_depth: 1,
                ..KernelConfig::default()
            },
        );
        assert_eq!(shallow.len(), 1);
        assert_eq!(shallow[0].cokernel, cube(&[1]));
        for p in &shallow {
            assert!(all.contains(p));
        }
    }

    #[test]
    fn kernels_are_unique() {
        let f = paper_f();
        let ks = kernels(&f);
        let mut sorted = ks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ks.len());
    }

    #[test]
    fn max_pairs_budget_respected() {
        let f = paper_f();
        let ks = kernels_config(
            &f,
            &KernelConfig {
                max_pairs: 3,
                ..KernelConfig::default()
            },
        );
        assert!(ks.len() <= 3);
    }
}
