//! Variables and literals.
//!
//! A [`Var`] is an index into some external symbol table (owned by
//! `pf-network`); a [`Lit`] is a variable together with a phase. Both are
//! thin wrappers over `u32` so cubes stay small and comparisons stay
//! branch-free, following the "smaller integers" advice for hot types.

use std::fmt;

/// A variable, identified by a dense index.
///
/// The algebra never interprets variables; names live in the network's
/// symbol table. Indices above [`Var::MAX_INDEX`] are rejected so a `Lit`
/// can pack the phase into the low bit of a `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Largest representable variable index.
    pub const MAX_INDEX: u32 = (u32::MAX >> 1) - 1;

    /// Creates a variable from a dense index.
    ///
    /// # Panics
    /// Panics if `index > Var::MAX_INDEX`.
    #[inline]
    pub fn new(index: u32) -> Self {
        assert!(index <= Self::MAX_INDEX, "variable index overflow");
        Var(index)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The positive-phase literal of this variable.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::new(self, false)
    }

    /// The negative-phase literal of this variable.
    #[inline]
    pub fn nlit(self) -> Lit {
        Lit::new(self, true)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | negated` so that literals of the same variable
/// are adjacent in the total order, with the positive phase first. This is
/// the atom of the algebraic model: `x` and `x̄` are distinct, unrelated
/// symbols as far as division and kernels are concerned.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a phase (`negated == true`
    /// means the complemented literal).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Self {
        Lit(var.0 << 1 | negated as u32)
    }

    /// Creates the positive literal of variable index `index`.
    ///
    /// Convenience for tests and examples.
    #[inline]
    pub fn pos(index: u32) -> Self {
        Var::new(index).lit()
    }

    /// Creates the negative literal of variable index `index`.
    #[inline]
    pub fn neg(index: u32) -> Self {
        Var::new(index).nlit()
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the complemented phase.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The literal of the same variable with the opposite phase.
    #[inline]
    pub fn complement(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// Raw encoding, usable as a dense array index.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!v{}", self.var().index())
        } else {
            write!(f, "v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        let v = Var::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.lit().var(), v);
        assert_eq!(v.nlit().var(), v);
    }

    #[test]
    fn lit_phases() {
        let v = Var::new(7);
        assert!(!v.lit().is_negated());
        assert!(v.nlit().is_negated());
        assert_eq!(v.lit().complement(), v.nlit());
        assert_eq!(v.nlit().complement(), v.lit());
    }

    #[test]
    fn lit_ordering_groups_by_variable() {
        // v0 < !v0 < v1 < !v1 < ...
        assert!(Lit::pos(0) < Lit::neg(0));
        assert!(Lit::neg(0) < Lit::pos(1));
        assert!(Lit::pos(1) < Lit::neg(1));
    }

    #[test]
    fn code_roundtrip() {
        for code in [0u32, 1, 2, 3, 100, 1001] {
            assert_eq!(Lit::from_code(code).code(), code);
        }
    }

    #[test]
    #[should_panic(expected = "variable index overflow")]
    fn var_overflow_panics() {
        let _ = Var::new(Var::MAX_INDEX + 1);
    }

    #[test]
    fn max_index_fits() {
        let v = Var::new(Var::MAX_INDEX);
        assert_eq!(v.nlit().var(), v);
    }
}
