//! Factored forms and SIS-style `quick_factor`.
//!
//! The SOP literal count the paper optimizes is a proxy for the factored
//! form's size; SIS itself reports "lits(fac)" computed by recursively
//! dividing each function by one of its kernels. This module provides
//! the factored-expression tree, the recursive factoring algorithm and
//! the factored literal count, so results can be reported in both
//! metrics.

use crate::cube::Cube;
use crate::divide::divide;
use crate::expr::Sop;
use crate::kernel::kernels;
use crate::lit::Lit;
use std::fmt;

/// A factored Boolean expression: a tree of ANDs and ORs over literals.
///
/// `And(vec![])` is the constant **1**, `Or(vec![])` the constant **0**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Factored {
    /// A single literal.
    Lit(Lit),
    /// Product of factors.
    And(Vec<Factored>),
    /// Sum of factors.
    Or(Vec<Factored>),
}

impl Factored {
    /// The constant 1.
    pub fn one() -> Self {
        Factored::And(Vec::new())
    }

    /// The constant 0.
    pub fn zero() -> Self {
        Factored::Or(Vec::new())
    }

    /// Number of literal leaves — the "lits(fac)" metric.
    pub fn literal_count(&self) -> usize {
        match self {
            Factored::Lit(_) => 1,
            Factored::And(fs) | Factored::Or(fs) => fs.iter().map(Factored::literal_count).sum(),
        }
    }

    /// Expands back to a canonical SOP (the inverse of factoring).
    pub fn to_sop(&self) -> Sop {
        match self {
            Factored::Lit(l) => Sop::from_cube(Cube::single(*l)),
            Factored::And(fs) => fs
                .iter()
                .map(Factored::to_sop)
                .fold(Sop::one(), |acc, f| acc.product(&f)),
            Factored::Or(fs) => fs
                .iter()
                .map(Factored::to_sop)
                .fold(Sop::zero(), |acc, f| acc.sum(&f)),
        }
    }

    fn from_cube(cube: &Cube) -> Factored {
        if cube.is_one() {
            Factored::one()
        } else if cube.len() == 1 {
            Factored::Lit(cube.lits()[0])
        } else {
            Factored::And(cube.iter().map(Factored::Lit).collect())
        }
    }

    /// Depth of the tree (literals have depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Factored::Lit(_) => 0,
            Factored::And(fs) | Factored::Or(fs) => {
                1 + fs.iter().map(Factored::depth).max().unwrap_or(0)
            }
        }
    }
}

impl fmt::Display for Factored {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Factored::Lit(l) => write!(f, "{l}"),
            Factored::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "1");
                }
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    match x {
                        Factored::Or(inner) if inner.len() > 1 => write!(f, "({x})")?,
                        _ => write!(f, "{x}")?,
                    }
                }
                Ok(())
            }
            Factored::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "0");
                }
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
        }
    }
}

/// SIS-style quick factoring: divide by the first kernel, recurse on
/// quotient, divisor and remainder.
///
/// The result is algebraically exact: `quick_factor(f).to_sop() == f`.
///
/// ```
/// use pf_sop::{quick_factor, Cube, Lit, Sop};
/// // ac + ad + bc + bd factors to (a + b)·(c + d): 8 literals → 4.
/// let cube = |vs: &[u32]| Cube::from_lits(vs.iter().map(|&v| Lit::pos(v)));
/// let f = Sop::from_cubes([cube(&[0, 2]), cube(&[0, 3]), cube(&[1, 2]), cube(&[1, 3])]);
/// let fac = quick_factor(&f);
/// assert_eq!(fac.literal_count(), 4);
/// assert_eq!(fac.to_sop(), f);
/// ```
pub fn quick_factor(f: &Sop) -> Factored {
    if f.is_zero() {
        return Factored::zero();
    }
    if f.is_one() {
        return Factored::one();
    }
    if f.is_cube() {
        return Factored::from_cube(&f.cubes()[0]);
    }
    let ks = kernels(f);
    let Some(first) = ks.first() else {
        // No kernel: no literal occurs twice — the SOP itself is the
        // best factored form.
        return Factored::Or(f.iter().map(Factored::from_cube).collect());
    };
    let d = &first.kernel;
    let div = divide(f, d);
    debug_assert!(!div.quotient.is_zero(), "kernel divides its function");

    let qd = Factored::And(vec![quick_factor(&div.quotient), quick_factor(d)]);
    if div.remainder.is_zero() {
        qd
    } else {
        match quick_factor(&div.remainder) {
            Factored::Or(mut rest) => {
                rest.insert(0, qd);
                Factored::Or(rest)
            }
            r => Factored::Or(vec![qd, r]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    #[test]
    fn constants_and_cubes() {
        assert_eq!(quick_factor(&Sop::zero()), Factored::zero());
        assert_eq!(quick_factor(&Sop::one()), Factored::one());
        let c = sop(&[&[1, 2]]);
        let f = quick_factor(&c);
        assert_eq!(f.literal_count(), 2);
        assert_eq!(f.to_sop(), c);
    }

    #[test]
    fn classic_distribution() {
        // ac + ad + bc + bd = (a+b)(c+d): 8 SOP literals → 4 factored.
        let f = sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4]]);
        let fac = quick_factor(&f);
        assert_eq!(fac.literal_count(), 4);
        assert_eq!(fac.to_sop(), f);
    }

    #[test]
    fn factoring_never_increases_literals() {
        for f in [
            sop(&[&[1, 2], &[3, 4]]),
            sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]), // paper's G
            sop(&[
                &[1, 6],
                &[2, 6],
                &[1, 7],
                &[3, 7],
                &[1, 4, 5],
                &[2, 4, 5],
                &[3, 4, 5],
            ]), // paper's F
        ] {
            let fac = quick_factor(&f);
            assert!(
                fac.literal_count() <= f.literal_count(),
                "{f}: {} > {}",
                fac.literal_count(),
                f.literal_count()
            );
            assert_eq!(fac.to_sop(), f, "expansion must be exact");
        }
    }

    #[test]
    fn paper_g_factored_size() {
        // G = af + bf + ace + bce = (a+b)(f + ce): 10 → 5 literals.
        let g = sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]);
        let fac = quick_factor(&g);
        assert_eq!(fac.literal_count(), 5);
    }

    #[test]
    fn no_kernel_stays_flat() {
        let f = sop(&[&[1, 2], &[3, 4]]);
        let fac = quick_factor(&f);
        assert_eq!(
            fac,
            Factored::Or(vec![
                Factored::And(vec![Factored::Lit(Lit::pos(1)), Factored::Lit(Lit::pos(2))]),
                Factored::And(vec![Factored::Lit(Lit::pos(3)), Factored::Lit(Lit::pos(4))]),
            ])
        );
        assert_eq!(fac.literal_count(), 4);
    }

    #[test]
    fn display_parenthesizes_sums_inside_products() {
        let f = sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4]]);
        let s = format!("{}", quick_factor(&f));
        assert!(s.contains('('), "{s}");
    }

    #[test]
    fn depth_of_nested_factorization() {
        // a(b(c+d) + e) style nesting has depth ≥ 3 once factored.
        let f = sop(&[&[1, 2, 3], &[1, 2, 4], &[1, 5]]);
        let fac = quick_factor(&f);
        assert!(fac.depth() >= 3, "depth {} of {fac}", fac.depth());
        assert_eq!(fac.to_sop(), f);
    }

    #[test]
    fn mixed_phase_factoring() {
        let f = Sop::from_cubes([
            Cube::from_lits([Lit::neg(1), Lit::pos(3)]),
            Cube::from_lits([Lit::neg(1), Lit::pos(4)]),
            Cube::from_lits([Lit::pos(2), Lit::pos(3)]),
            Cube::from_lits([Lit::pos(2), Lit::pos(4)]),
        ]);
        let fac = quick_factor(&f);
        assert_eq!(fac.literal_count(), 4); // (~a + b)(c + d)
        assert_eq!(fac.to_sop(), f);
    }
}
