//! Algebraic (weak) division.
//!
//! `divide(f, d)` computes quotient `q` and remainder `r` with
//! `f = q·d + r`, where the product is algebraic (no term merging) and
//! `q` is the largest expression with that property. This is the
//! WEAK_DIV procedure of MIS: for every cube `dᵢ` of the divisor collect
//! the quotients of the cubes of `f` divisible by `dᵢ`, then intersect
//! those cube sets.

use crate::cube::Cube;
use crate::expr::Sop;

/// Result of an algebraic division: `f = quotient · divisor + remainder`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Division {
    /// The algebraic quotient `f / d`.
    pub quotient: Sop,
    /// The remainder, cubes of `f` not covered by `quotient · d`.
    pub remainder: Sop,
}

/// Divides `f` by a single cube `d` — the common fast path.
///
/// The quotient is `{ c / d : c ∈ f, d | c }`; the remainder the other
/// cubes of `f`.
pub fn divide_by_cube(f: &Sop, d: &Cube) -> Division {
    let mut q = Vec::new();
    let mut r = Vec::new();
    for c in f.iter() {
        match c.quotient(d) {
            Some(qc) => q.push(qc),
            None => r.push(c.clone()),
        }
    }
    Division {
        quotient: Sop::from_cubes(q),
        remainder: Sop::from_cubes(r),
    }
}

/// Algebraic (weak) division of `f` by an arbitrary SOP divisor `d`.
///
/// Returns the zero quotient with `remainder == f` when `d` is the
/// constant 0 (division by 0 yields nothing) and quotient `f` with zero
/// remainder when `d` is the constant 1.
///
/// ```
/// use pf_sop::{divide, Cube, Lit, Sop};
/// // f = ac + ad + bc + bd + e, divided by a + b, gives q = c + d, r = e.
/// let cube = |vs: &[u32]| Cube::from_lits(vs.iter().map(|&v| Lit::pos(v)));
/// let f = Sop::from_cubes([
///     cube(&[0, 2]), cube(&[0, 3]), cube(&[1, 2]), cube(&[1, 3]), cube(&[4]),
/// ]);
/// let d = Sop::from_cubes([cube(&[0]), cube(&[1])]);
/// let div = divide(&f, &d);
/// assert_eq!(div.quotient, Sop::from_cubes([cube(&[2]), cube(&[3])]));
/// assert_eq!(div.remainder, Sop::from_cubes([cube(&[4])]));
/// // Recomposition: f = q·d + r.
/// assert_eq!(div.quotient.product(&d).sum(&div.remainder), f);
/// ```
pub fn divide(f: &Sop, d: &Sop) -> Division {
    if d.is_zero() {
        return Division {
            quotient: Sop::zero(),
            remainder: f.clone(),
        };
    }
    if d.is_one() {
        return Division {
            quotient: f.clone(),
            remainder: Sop::zero(),
        };
    }
    if d.is_cube() {
        return divide_by_cube(f, &d.cubes()[0]);
    }

    // Quotient-set intersection over the divisor's cubes. Start with the
    // candidate set from the first divisor cube, then narrow.
    let mut iter = d.iter();
    let first = iter.next().expect("divisor non-zero");
    let mut acc: Vec<Cube> = f.iter().filter_map(|c| c.quotient(first)).collect();
    acc.sort_unstable();
    acc.dedup();
    for dc in iter {
        if acc.is_empty() {
            break;
        }
        let mut next: Vec<Cube> = f.iter().filter_map(|c| c.quotient(dc)).collect();
        next.sort_unstable();
        next.dedup();
        acc = intersect_sorted(&acc, &next);
    }
    let quotient = Sop::from_cubes(acc);
    let covered = quotient.product(d);
    let remainder = f.difference(&covered);
    Division {
        quotient,
        remainder,
    }
}

/// Intersection of two sorted, duplicate-free cube vectors.
fn intersect_sorted(a: &[Cube], b: &[Cube]) -> Vec<Cube> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Lit;

    fn cube(ids: &[u32]) -> Cube {
        Cube::from_lits(ids.iter().map(|&i| Lit::pos(i)))
    }

    fn sop(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| cube(c)))
    }

    // Variable map used in tests mirroring the paper: a=1 b=2 c=3 d=4 e=5
    // f=6 g=7.

    #[test]
    fn divide_by_single_cube() {
        // (abc + abd + e) / ab = c + d, remainder e
        let f = sop(&[&[1, 2, 3], &[1, 2, 4], &[5]]);
        let d = cube(&[1, 2]);
        let div = divide_by_cube(&f, &d);
        assert_eq!(div.quotient, sop(&[&[3], &[4]]));
        assert_eq!(div.remainder, sop(&[&[5]]));
    }

    #[test]
    fn divide_by_expression() {
        // f = ac + ad + bc + bd + e ; d = a + b  → q = c + d, r = e
        let f = sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5]]);
        let d = sop(&[&[1], &[2]]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient, sop(&[&[3], &[4]]));
        assert_eq!(div.remainder, sop(&[&[5]]));
    }

    #[test]
    fn recomposition_identity() {
        let f = sop(&[&[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5]]);
        let d = sop(&[&[1], &[2]]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient.product(&d).sum(&div.remainder), f);
    }

    #[test]
    fn indivisible_gives_zero_quotient() {
        let f = sop(&[&[1], &[2]]);
        let d = sop(&[&[3], &[4]]);
        let div = divide(&f, &d);
        assert!(div.quotient.is_zero());
        assert_eq!(div.remainder, f);
    }

    #[test]
    fn paper_example_g_division() {
        // G = af + bf + ace + bce ; divide by a + b → f + ce (Eq. 1 / Sec 2)
        let g = sop(&[&[1, 6], &[2, 6], &[1, 3, 5], &[2, 3, 5]]);
        let d = sop(&[&[1], &[2]]);
        let div = divide(&g, &d);
        assert_eq!(div.quotient, sop(&[&[6], &[3, 5]]));
        assert!(div.remainder.is_zero());
    }

    #[test]
    fn divide_by_zero_and_one() {
        let f = sop(&[&[1], &[2]]);
        let by_zero = divide(&f, &Sop::zero());
        assert!(by_zero.quotient.is_zero());
        assert_eq!(by_zero.remainder, f);
        let by_one = divide(&f, &Sop::one());
        assert_eq!(by_one.quotient, f);
        assert!(by_one.remainder.is_zero());
    }

    #[test]
    fn partial_divisibility() {
        // f = ab + ac + bd ; divide by b + c → q = a, r = bd
        // (only `a` appears in both the b- and c-quotient sets).
        let f = sop(&[&[1, 2], &[1, 3], &[2, 4]]);
        let d = sop(&[&[2], &[3]]);
        let div = divide(&f, &d);
        assert_eq!(div.quotient, sop(&[&[1]]));
        assert_eq!(div.remainder, sop(&[&[2, 4]]));
    }

    #[test]
    fn quotient_of_self_is_one() {
        let f = sop(&[&[1, 2], &[3]]);
        let div = divide(&f, &f);
        assert!(div.quotient.is_one());
        assert!(div.remainder.is_zero());
    }
}
