//! Delta-submit support: classify which cones of a resubmitted network
//! changed against a cached base job, and splice the base's factored
//! cones into the new network so only the dirty cones need re-extraction.
//!
//! ## The name interface
//!
//! Signal *names* are the stable identity across submissions — signal
//! ids are declaration-order-dependent and mean nothing between two
//! independently built networks. A cone digest ([`cone_digest`]) is
//! therefore computed over a node's function with every literal spelled
//! as `(referenced signal name, phase)` and cubes/literals sorted, so
//! two nodes digest equally iff their local functions are identical *as
//! functions of named signals*, whatever ids either network assigned.
//!
//! ## Correctness argument
//!
//! Extraction rewrites each node to an algebraically equal form (helper
//! nodes included), so a base node's factored cone computes the same
//! function of its named fanins as the original did. If a resubmitted
//! network's node has the same local function over the same names
//! (digest-clean), substituting the base's factored cone — with every
//! literal re-resolved by name in the spliced network — preserves the
//! new network's semantics exactly, regardless of what changed
//! elsewhere. The spliced result is therefore *functionally equivalent*
//! to a cold run of the new network, though not byte-identical (the
//! cold run could have discovered different shared divisors), which is
//! why delta results are never admitted to the exact-hit cache.
//!
//! Anything that breaks the name interface — a new node reusing an
//! extraction-helper name, a clean cone referencing a base signal the
//! new network no longer declares, a splice that fails validation —
//! surfaces as an `Err` and the caller falls back to a full cold run.

use crate::CachedResult;
use pf_kcmatrix::{Digest, DigestBuilder};
use pf_network::{Network, SignalId, SignalKind};
use pf_sop::{Cube, Lit, Sop};
use std::collections::{HashMap, HashSet};

/// Name-canonical digest of one node's local function: cube literals
/// are spelled as `(signal name, phase)` and sorted, so the digest is
/// invariant under signal-id renumbering between networks.
pub fn cone_digest(nw: &Network, id: SignalId) -> Digest {
    let mut cubes: Vec<Vec<(&str, bool)>> = nw
        .func(id)
        .iter()
        .map(|cube| {
            let mut lits: Vec<(&str, bool)> = cube
                .iter()
                .map(|l| (nw.name(l.var().index()), l.is_negated()))
                .collect();
            lits.sort_unstable();
            lits
        })
        .collect();
    cubes.sort_unstable();
    let mut b = DigestBuilder::new();
    b.write_u64(cubes.len() as u64);
    for cube in cubes {
        b.write_u64(cube.len() as u64);
        for (name, negated) in cube {
            b.write_str(name);
            b.write_bytes(&[negated as u8]);
        }
    }
    b.finish()
}

/// Per-node [`cone_digest`] map (`node name → digest`) of a network —
/// the classification baseline stored with every cached cold result.
pub fn cone_digests(nw: &Network) -> HashMap<String, Digest> {
    nw.node_ids()
        .map(|n| (nw.name(n).to_string(), cone_digest(nw, n)))
        .collect()
}

/// The outcome of classifying a resubmitted network against a base:
/// which node names keep the base's factored cones and which must be
/// re-extracted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaPlan {
    /// Nodes whose local function is unchanged — their factored forms
    /// are copied from the base.
    pub clean: Vec<String>,
    /// Changed or newly added nodes — extraction targets after splicing.
    pub dirty: Vec<String>,
}

/// Classifies every node of `new` as clean or dirty against the cached
/// base. Errs (→ caller falls back to a cold run) when a name of `new`
/// collides with an extraction-created helper of the base, which would
/// corrupt the copied cones' references.
pub fn classify(base: &CachedResult, new: &Network) -> Result<DeltaPlan, String> {
    let mut plan = DeltaPlan::default();
    for s in new.signal_ids() {
        let name = new.name(s);
        let known = base.cone_digests.contains_key(name);
        if !known
            && base
                .network
                .find(name)
                .is_some_and(|b| base.network.kind(b) == SignalKind::Node)
        {
            return Err(format!(
                "signal {name:?} collides with an extraction-created node of the base"
            ));
        }
        if new.kind(s) != SignalKind::Node {
            continue;
        }
        match base.cone_digests.get(name) {
            Some(d) if *d == cone_digest(new, s) => plan.clean.push(name.to_string()),
            _ => plan.dirty.push(name.to_string()),
        }
    }
    Ok(plan)
}

/// Rewrites `sop` from `from`'s id space into `to`'s, resolving every
/// literal by signal name. Errs when `to` does not declare a referenced
/// name (a clean cone depending on a signal the new network dropped).
fn remap(sop: &Sop, from: &Network, to: &Network) -> Result<Sop, String> {
    let mut cubes = Vec::with_capacity(sop.num_cubes());
    for cube in sop.iter() {
        let mut lits = Vec::with_capacity(cube.len());
        for l in cube.iter() {
            let name = from.name(l.var().index());
            let id = to
                .find(name)
                .ok_or_else(|| format!("referenced signal {name:?} not in spliced network"))?;
            lits.push(Lit::new(to.var(id), l.is_negated()));
        }
        cubes.push(Cube::from_lits(lits));
    }
    Ok(Sop::from_cubes(cubes))
}

/// Builds the spliced network: `new`'s declaration order and outputs,
/// clean cones replaced by the base's factored forms (plus whichever
/// extraction helpers they reach), dirty cones keeping `new`'s original
/// functions. Validates the result and prunes helpers nothing reaches.
pub fn splice(base: &Network, new: &Network, plan: &DeltaPlan) -> Result<Network, String> {
    let clean: HashSet<&str> = plan.clean.iter().map(String::as_str).collect();
    let err = |e: pf_network::NetworkError| format!("splice failed: {e}");

    // The base nodes a clean cone can reach (fanin closure, nodes
    // only): the helpers worth carrying over. Base nodes the new
    // network dropped stay dropped — they may reference signals that
    // no longer exist.
    let mut needed: HashSet<SignalId> = HashSet::new();
    let mut work: Vec<SignalId> = Vec::new();
    for name in &plan.clean {
        let b = base
            .find(name)
            .ok_or_else(|| format!("clean node {name:?} missing from base"))?;
        work.push(b);
    }
    while let Some(n) = work.pop() {
        for fi in base.fanins(n) {
            if base.kind(fi) == SignalKind::Node && needed.insert(fi) {
                work.push(fi);
            }
        }
    }

    // Phase 1: declare everything (placeholder functions), so name
    // resolution sees the complete signal set — clean cones may
    // forward-reference helpers and dirty nodes alike.
    let mut out = Network::new();
    for i in new.input_ids() {
        out.add_input(new.name(i)).map_err(err)?;
    }
    for n in new.node_ids() {
        out.add_node(new.name(n), Sop::zero()).map_err(err)?;
    }
    let mut helpers = Vec::new();
    for n in base.node_ids() {
        if needed.contains(&n) && out.find(base.name(n)).is_none() {
            out.add_node(base.name(n), Sop::zero()).map_err(err)?;
            helpers.push(n);
        }
    }

    // Phase 2: fill in functions, re-resolving every literal by name.
    for n in new.node_ids() {
        let name = new.name(n);
        let func = if clean.contains(name) {
            let b = base
                .find(name)
                .ok_or_else(|| format!("clean node {name:?} missing from base"))?;
            remap(base.func(b), base, &out)?
        } else {
            remap(new.func(n), new, &out)?
        };
        out.set_func(out.find(name).expect("declared above"), func)
            .map_err(err)?;
    }
    for &h in &helpers {
        let func = remap(base.func(h), base, &out)?;
        out.set_func(out.find(base.name(h)).expect("declared above"), func)
            .map_err(err)?;
    }
    for &o in new.outputs() {
        let id = out.find(new.name(o)).expect("all new signals declared");
        out.mark_output(id).map_err(err)?;
    }
    out.validate()
        .map_err(|e| format!("spliced network invalid: {e}"))?;
    prune(&out, new)
}

/// Drops base helpers no retained cone reaches (helpers of cones the
/// dirty overwrite orphaned). Every node named in `new` is kept — the
/// splice contract is "`new`'s nodes, some with factored bodies" — so
/// the closure is seeded with all of them plus the outputs.
fn prune(out: &Network, new: &Network) -> Result<Network, String> {
    let err = |e: pf_network::NetworkError| format!("prune failed: {e}");
    let mut keep: HashSet<SignalId> = out
        .node_ids()
        .filter(|&n| new.find(out.name(n)).is_some())
        .collect();
    let mut work: Vec<SignalId> = keep.iter().copied().collect();
    while let Some(n) = work.pop() {
        for fi in out.fanins(n) {
            if out.kind(fi) == SignalKind::Node && keep.insert(fi) {
                work.push(fi);
            }
        }
    }
    if out.node_ids().all(|n| keep.contains(&n)) {
        return Ok(out.clone());
    }
    let mut pruned = Network::new();
    for i in out.input_ids() {
        pruned.add_input(out.name(i)).map_err(err)?;
    }
    for n in out.node_ids().filter(|n| keep.contains(n)) {
        pruned.add_node(out.name(n), Sop::zero()).map_err(err)?;
    }
    for n in out.node_ids().filter(|n| keep.contains(n)) {
        let func = remap(out.func(n), out, &pruned)?;
        pruned
            .set_func(pruned.find(out.name(n)).expect("declared above"), func)
            .map_err(err)?;
    }
    for &o in out.outputs() {
        let id = pruned
            .find(out.name(o))
            .ok_or_else(|| format!("output {:?} pruned away", out.name(o)))?;
        pruned.mark_output(id).map_err(err)?;
    }
    pruned
        .validate()
        .map_err(|e| format!("pruned network invalid: {e}"))?;
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CachedResult;

    fn sop_of(nw: &Network, cubes: &[&[(&str, bool)]]) -> Sop {
        Sop::from_cubes(cubes.iter().map(|c| {
            Cube::from_lits(
                c.iter()
                    .map(|(n, neg)| Lit::new(nw.var(nw.find(n).unwrap()), *neg)),
            )
        }))
    }

    /// f = ab + ac, g = ab + d — extraction would share ab.
    fn base_network() -> Network {
        let mut nw = Network::new();
        for n in ["a", "b", "c", "d"] {
            nw.add_input(n).unwrap();
        }
        let f_sop = sop_of(
            &nw,
            &[&[("a", false), ("b", false)], &[("a", false), ("c", false)]],
        );
        let f = nw.add_node("f", f_sop).unwrap();
        let g_sop = sop_of(&nw, &[&[("a", false), ("b", false)], &[("d", false)]]);
        let g = nw.add_node("g", g_sop).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        nw
    }

    /// A hand-factored version of [`base_network`]: helper k0 = ab.
    fn base_factored() -> Network {
        let mut nw = Network::new();
        for n in ["a", "b", "c", "d"] {
            nw.add_input(n).unwrap();
        }
        let k0 = nw
            .add_node("k0", sop_of(&nw, &[&[("a", false), ("b", false)]]))
            .unwrap();
        let _ = k0;
        let f_sop = sop_of(&nw, &[&[("k0", false)], &[("a", false), ("c", false)]]);
        let f = nw.add_node("f", f_sop).unwrap();
        let g_sop = sop_of(&nw, &[&[("k0", false)], &[("d", false)]]);
        let g = nw.add_node("g", g_sop).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        nw
    }

    fn cached_base() -> CachedResult {
        let original = base_network();
        CachedResult {
            cone_digests: cone_digests(&original),
            network: base_factored(),
            lc_before: original.literal_count(),
            lc_after: base_factored().literal_count(),
            extractions: 1,
            total_value: 1,
        }
    }

    #[test]
    fn cone_digest_is_id_invariant() {
        let nw1 = base_network();
        // Same functions, different declaration order → different ids.
        let mut nw2 = Network::new();
        for n in ["d", "c", "b", "a"] {
            nw2.add_input(n).unwrap();
        }
        let g_sop = sop_of(&nw2, &[&[("d", false)], &[("b", false), ("a", false)]]);
        let g = nw2.add_node("g", g_sop).unwrap();
        let f_sop = sop_of(
            &nw2,
            &[&[("c", false), ("a", false)], &[("b", false), ("a", false)]],
        );
        let f = nw2.add_node("f", f_sop).unwrap();
        nw2.mark_output(g).unwrap();
        nw2.mark_output(f).unwrap();
        let d1 = cone_digests(&nw1);
        let d2 = cone_digests(&nw2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn classify_splits_clean_and_dirty() {
        let base = cached_base();
        // Change g, keep f, add h.
        let mut new = base_network();
        let g = new.find("g").unwrap();
        let g_sop = sop_of(&new, &[&[("d", false)]]);
        new.set_func(g, g_sop).unwrap();
        let h_sop = sop_of(&new, &[&[("c", false), ("d", false)]]);
        let h = new.add_node("h", h_sop).unwrap();
        new.mark_output(h).unwrap();
        let plan = classify(&base, &new).unwrap();
        assert_eq!(plan.clean, vec!["f".to_string()]);
        assert_eq!(plan.dirty, vec!["g".to_string(), "h".to_string()]);
    }

    #[test]
    fn helper_name_collision_falls_back() {
        let base = cached_base();
        let mut new = base_network();
        let k0_sop = sop_of(&new, &[&[("a", false)]]);
        let k0 = new.add_node("k0", k0_sop).unwrap();
        new.mark_output(k0).unwrap();
        assert!(classify(&base, &new).is_err());
    }

    #[test]
    fn splice_preserves_new_semantics() {
        let base = cached_base();
        let mut new = base_network();
        let g = new.find("g").unwrap();
        let g_sop = sop_of(&new, &[&[("b", false), ("d", true)]]);
        new.set_func(g, g_sop).unwrap();
        let plan = classify(&base, &new).unwrap();
        assert_eq!(plan.clean, vec!["f".to_string()]);
        let spliced = splice(&base.network, &new, &plan).unwrap();
        assert!(spliced.validate().is_ok());
        // f got the factored body (references helper k0), g the new one.
        let f = spliced.find("f").unwrap();
        let k0 = spliced.find("k0").expect("helper kept");
        assert!(spliced.fanins(f).contains(&k0));
        let g = spliced.find("g").unwrap();
        let want = sop_of(&spliced, &[&[("b", false), ("d", true)]]);
        assert_eq!(spliced.func(g), &want);
        assert_eq!(spliced.outputs().len(), 2);
    }

    #[test]
    fn splice_prunes_orphaned_helpers() {
        let base = cached_base();
        // Both f and g change → helper k0 serves no one.
        let mut new = base_network();
        let f = new.find("f").unwrap();
        let g = new.find("g").unwrap();
        let f_sop = sop_of(&new, &[&[("a", false)]]);
        let g_sop = sop_of(&new, &[&[("b", false)]]);
        new.set_func(f, f_sop).unwrap();
        new.set_func(g, g_sop).unwrap();
        let plan = classify(&base, &new).unwrap();
        assert!(plan.clean.is_empty());
        let spliced = splice(&base.network, &new, &plan).unwrap();
        assert!(spliced.find("k0").is_none(), "orphaned helper pruned");
        assert_eq!(spliced.node_ids().count(), 2);
    }

    #[test]
    fn splice_fails_when_clean_cone_loses_a_signal() {
        let base = cached_base();
        // A network that renames input a → q but keeps f's *shape* is
        // dirty anyway; instead drop input d and g (which used it), keep
        // clean f — then force g clean by copying the base digest set.
        let mut new = Network::new();
        for n in ["a", "b", "c"] {
            new.add_input(n).unwrap();
        }
        let f_sop = sop_of(
            &new,
            &[&[("a", false), ("b", false)], &[("a", false), ("c", false)]],
        );
        let f = new.add_node("f", f_sop).unwrap();
        // g references d in the base; declare a same-named node here so
        // classify sees it, with the base's exact function impossible to
        // express (no d input) — so it classifies dirty and splice works.
        new.mark_output(f).unwrap();
        let plan = classify(&base, &new).unwrap();
        assert_eq!(plan.clean, vec!["f".to_string()]);
        // Splicing works: f's factored cone only needs a, b, c, k0.
        let spliced = splice(&base.network, &new, &plan).unwrap();
        assert!(spliced.find("k0").is_some());
        // Now corrupt the plan to claim a cone depending on the missing
        // input d is clean — remap must refuse.
        let bad = DeltaPlan {
            clean: vec!["f".to_string(), "g".to_string()],
            dirty: vec![],
        };
        let mut new_with_g = new.clone();
        let g_sop = sop_of(&new_with_g, &[&[("a", false)]]);
        let g = new_with_g.add_node("g", g_sop).unwrap();
        new_with_g.mark_output(g).unwrap();
        assert!(splice(&base.network, &new_with_g, &bad).is_err());
    }
}
