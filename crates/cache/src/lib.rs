#![warn(missing_docs)]

//! # pf-cache — the content-addressed cross-job extraction cache
//!
//! Every pf-serve job used to re-extract its circuit from scratch, even
//! when traffic is dominated by repeated and near-identical netlists.
//! This crate is the cross-job half of the "answer cheaply from local
//! state first" story (the cross-pass column ceilings of `pf-kcmatrix`
//! are the intra-run half):
//!
//! * **Exact hits.** Results are keyed by a canonical content digest
//!   ([`pf_kcmatrix::digest`]) of the submitted network's sorted cube
//!   literals (plus the result-affecting job parameters). An exact hit
//!   returns the memoized factored network outright — byte-identical to
//!   a cold run, because the stored value *is* the cold run's output.
//! * **Warm starts.** Each filled entry also records warm-start hints —
//!   the first search pass's per-column [`CeilingSnapshot`] and winning
//!   [`Rectangle`] — keyed by the content digest alone. A near hit
//!   (result entry evicted or expired, hints still resident) seeds the
//!   next cold run's `SearchPool` before its first pass. Hints never
//!   change results (the ceiling skip test is strict), only work.
//! * **Bounded + sharded.** The store is a sharded LRU with an optional
//!   TTL; inserts are atomic (a value is fully built before the shard
//!   lock is taken), so a worker panic mid-fill leaves no partial entry.
//!
//! The [`delta`] module adds the transport half: classifying which
//! cones of a resubmitted network are dirty against a cached base job
//! and splicing the base's factored cones into the new network so only
//! the dirty cones need re-extraction.

pub mod delta;

use parking_lot::Mutex;
use pf_kcmatrix::{CeilingSnapshot, Digest, Rectangle};
use pf_network::Network;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Construction options for an [`ExtractionCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum resident result entries across all shards (≥ 1). The
    /// warm-hint store is bounded separately at four times this.
    pub entries: usize,
    /// Optional time-to-live: result entries older than this answer as
    /// misses and are evicted. Warm hints have no TTL — they affect
    /// only search effort, never results, so they cannot go stale in
    /// any way that matters to a client.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            entries: 64,
            ttl: None,
        }
    }
}

/// A memoized extraction result: the factored network plus the report
/// numbers a cache-served job must reproduce.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// The factored network exactly as the cold run left it.
    pub network: Network,
    /// Literal count before extraction.
    pub lc_before: usize,
    /// Literal count after extraction.
    pub lc_after: usize,
    /// Extractions the cold run applied.
    pub extractions: usize,
    /// Total rectangle value of the cold run.
    pub total_value: i64,
    /// Name-canonical per-cone digests of the *original* (pre-extraction)
    /// network, keyed by node name — the baseline [`delta::classify`]
    /// compares a resubmitted network against. Node names present in
    /// `network` but absent here are extraction-created helpers.
    pub cone_digests: HashMap<String, Digest>,
}

/// Warm-start hints captured after a cold run's *first* search pass —
/// the only pass whose ceilings describe the initial (pre-extraction)
/// matrix, which is the matrix an identical future job starts from.
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// Per-column ceilings recorded over the initial matrix (`None`
    /// when the cold run searched without a pool).
    pub ceilings: Option<CeilingSnapshot>,
    /// The first pass's winning rectangle, used to seed the next run's
    /// pruning bound (re-validated against the matrix before use).
    pub best: Rectangle,
}

/// A point-in-time snapshot of the cache counters. The identity the
/// service's metrics extend: `lookups == hits + misses`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result lookups performed.
    pub lookups: u64,
    /// Lookups answered from a resident, unexpired entry.
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Result entries evicted (LRU capacity or TTL expiry).
    pub evictions: u64,
    /// Result entries inserted.
    pub insertions: u64,
    /// Warm-hint lookups that found hints (the near-hit counter).
    pub warm_hits: u64,
}

impl CacheStats {
    /// Whether the counters satisfy the cache balance identity.
    pub fn balanced(&self) -> bool {
        self.lookups == self.hits + self.misses
    }
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
    inserted: Instant,
}

/// One shard: a capacity-bounded map with counter-based LRU eviction.
struct Shard<V> {
    map: HashMap<Digest, Entry<V>>,
    cap: usize,
}

impl<V> Shard<V> {
    /// Inserts, evicting least-recently-used entries down to capacity.
    /// Returns how many entries were evicted.
    fn insert(&mut self, key: Digest, value: Arc<V>, tick: u64) -> u64 {
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
                inserted: Instant::now(),
            },
        );
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let oldest = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match oldest {
                Some(k) => {
                    self.map.remove(&k);
                    evicted += 1;
                }
                None => break, // cap 0 shard can't exist; key itself stays
            }
        }
        evicted
    }
}

struct Store<V> {
    shards: Vec<Mutex<Shard<V>>>,
}

impl<V> Store<V> {
    fn new(capacity: usize) -> Self {
        // Fewer shards than entries, so the total bound is exact: a
        // capacity-1 store is a single shard holding one entry.
        let nshards = capacity.clamp(1, 8);
        let shards = (0..nshards)
            .map(|i| {
                let cap = capacity / nshards + usize::from(i < capacity % nshards);
                Mutex::new(Shard {
                    map: HashMap::new(),
                    cap,
                })
            })
            .collect();
        Store { shards }
    }

    fn shard(&self, key: &Digest) -> &Mutex<Shard<V>> {
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }
}

/// The bounded, sharded, content-addressed extraction cache. Shared by
/// every worker of a service (`Arc`); all operations take one shard
/// lock for O(shard) time.
pub struct ExtractionCache {
    results: Store<CachedResult>,
    warm: Store<WarmStart>,
    capacity: usize,
    ttl: Option<Duration>,
    tick: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    warm_hits: AtomicU64,
}

impl ExtractionCache {
    /// Builds a cache bounded at `cfg.entries` results (clamped ≥ 1).
    pub fn new(cfg: CacheConfig) -> Self {
        let capacity = cfg.entries.max(1);
        ExtractionCache {
            results: Store::new(capacity),
            warm: Store::new(capacity.saturating_mul(4)),
            capacity,
            ttl: cfg.ttl,
            tick: AtomicU64::new(1),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
        }
    }

    /// Configured result-entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident result entries right now.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no result entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a memoized result. Counts a hit or a miss; a hit bumps
    /// the entry's LRU position, a TTL-expired entry is evicted and
    /// answers as a miss.
    pub fn lookup(&self, key: &Digest) -> Option<Arc<CachedResult>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.results.shard(key).lock();
        if let Some(entry) = shard.map.get_mut(key) {
            if self.ttl.is_some_and(|ttl| entry.inserted.elapsed() > ttl) {
                shard.map.remove(key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                entry.last_used = self.next_tick();
                let value = Arc::clone(&entry.value);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a fully built result (and, when present, its warm-start
    /// hints under the content key). Returns how many result entries
    /// the insert evicted. The value is complete before any lock is
    /// taken — there is no observable partially-written state.
    pub fn insert(
        &self,
        key: Digest,
        warm_key: Digest,
        result: CachedResult,
        warm: Option<WarmStart>,
    ) -> u64 {
        let tick = self.next_tick();
        if let Some(w) = warm {
            self.warm
                .shard(&warm_key)
                .lock()
                .insert(warm_key, Arc::new(w), tick);
        }
        let evicted = self
            .results
            .shard(&key)
            .lock()
            .insert(key, Arc::new(result), tick);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Warm-start hints for a content digest, if resident (the near-hit
    /// path; counted in `warm_hits` when found).
    pub fn warm_hints(&self, warm_key: &Digest) -> Option<Arc<WarmStart>> {
        let mut shard = self.warm.shard(warm_key).lock();
        let entry = shard.map.get_mut(warm_key)?;
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        let value = Arc::clone(&entry.value);
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::{Cube, Lit, Sop};

    fn tiny_network(tag: u32) -> Network {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let f = nw
            .add_node(
                "f",
                Sop::from_cube(Cube::from_lits([Lit::pos(a), Lit::pos(tag + 10)])),
            )
            .unwrap();
        let _ = nw.add_input(format!("x{tag}")).unwrap();
        nw.mark_output(f).unwrap();
        nw
    }

    fn result(tag: u32) -> CachedResult {
        CachedResult {
            network: tiny_network(tag),
            lc_before: 10 + tag as usize,
            lc_after: 5,
            extractions: 1,
            total_value: 5,
            cone_digests: HashMap::new(),
        }
    }

    fn key(tag: u32) -> Digest {
        Digest::of_str(&format!("key-{tag}"))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let cache = ExtractionCache::new(CacheConfig::default());
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), key(100), result(1), None);
        let got = cache.lookup(&key(1)).expect("hit");
        assert_eq!(got.lc_before, 11);
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert!(s.balanced());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_one_evicts_lru_but_serves_correctly() {
        let cache = ExtractionCache::new(CacheConfig {
            entries: 1,
            ttl: None,
        });
        cache.insert(key(1), key(100), result(1), None);
        cache.insert(key(2), key(200), result(2), None);
        assert_eq!(cache.len(), 1, "capacity bound is exact");
        assert!(cache.lookup(&key(1)).is_none(), "older entry evicted");
        assert_eq!(cache.lookup(&key(2)).unwrap().lc_before, 12);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_prefers_recently_used() {
        let cache = ExtractionCache::new(CacheConfig {
            entries: 2,
            ttl: None,
        });
        // Force both keys into the same shard by capacity 2 → 2 shards;
        // use keys that land together.
        let mut keys = Vec::new();
        let mut tag = 0u32;
        while keys.len() < 3 {
            let k = key(tag);
            if (k.0 as usize).is_multiple_of(2) {
                keys.push((tag, k));
            }
            tag += 1;
        }
        let (t1, k1) = keys[0];
        let (t2, k2) = keys[1];
        let (t3, k3) = keys[2];
        // Shard cap for shard 0 of a 2-entry/2-shard store is 1, so the
        // second same-shard insert evicts the least recently used.
        cache.insert(k1, key(900), result(t1), None);
        let _ = cache.lookup(&k1); // bump
        cache.insert(k2, key(901), result(t2), None); // evicts k1 anyway (cap 1)
        assert!(cache.lookup(&k2).is_some());
        cache.insert(k3, key(902), result(t3), None);
        assert!(cache.lookup(&k3).is_some());
        assert!(cache.stats().balanced());
    }

    #[test]
    fn ttl_expiry_is_a_miss_and_an_eviction() {
        let cache = ExtractionCache::new(CacheConfig {
            entries: 4,
            ttl: Some(Duration::ZERO),
        });
        cache.insert(key(1), key(100), result(1), None);
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.lookup(&key(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn warm_hints_survive_result_eviction() {
        let cache = ExtractionCache::new(CacheConfig {
            entries: 1,
            ttl: None,
        });
        let hints = WarmStart {
            ceilings: None,
            best: Rectangle {
                rows: vec![0],
                cols: vec![0, 1],
                value: 7,
            },
        };
        cache.insert(key(1), key(100), result(1), Some(hints));
        cache.insert(key(2), key(200), result(2), None); // evicts result 1
        assert!(cache.lookup(&key(1)).is_none());
        let w = cache.warm_hints(&key(100)).expect("hints outlive result");
        assert_eq!(w.best.value, 7);
        assert_eq!(cache.stats().warm_hits, 1);
        assert!(cache.warm_hints(&key(999)).is_none());
    }

    #[test]
    fn concurrent_access_keeps_the_identity() {
        let cache = Arc::new(ExtractionCache::new(CacheConfig {
            entries: 8,
            ttl: None,
        }));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u32 {
                        let tag = (t * 7 + i) % 24;
                        if cache.lookup(&key(tag)).is_none() {
                            cache.insert(key(tag), key(1000 + tag), result(tag), None);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.balanced());
        assert!(cache.len() <= 8);
        assert!(s.hits > 0 && s.misses > 0);
    }
}
