//! pf-serve — resident factorization service.
//!
//! Runs the paper's four extraction drivers (sequential `gkx`,
//! Algorithm R, Algorithm I, Algorithm L) behind a bounded job queue
//! and a fixed worker pool, with per-job deadlines, cooperative
//! cancellation, graceful shutdown, and an embedded metrics registry.
//!
//! Two front doors:
//!
//! * **In-process** — [`Service::start`] + [`Client::submit`]:
//!
//!   ```
//!   use pf_serve::{Algorithm, JobOutcome, JobSpec, Service, ServiceConfig};
//!
//!   let service = Service::start(ServiceConfig::default());
//!   let client = service.client();
//!   let ticket = client
//!       .submit(JobSpec::new(Algorithm::Seq, "gen:misex3@0.05"))
//!       .expect("accepted");
//!   match ticket.wait() {
//!       JobOutcome::Completed(jr) => assert!(jr.report.lc_after <= jr.report.lc_before),
//!       other => panic!("unexpected outcome {other:?}"),
//!   }
//!   service.shutdown();
//!   ```
//!
//! * **JSON-lines over TCP** — [`Server::bind`] + [`Server::run`]
//!   (`std::net` only; protocol documented in `docs/SERVICE.md`).

pub mod dist;
pub mod error;
pub mod job;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod retry;
pub mod server;
pub mod service;
mod supervisor;
pub mod worker;

pub use dist::{dist_response, encode_sub_request, RemoteTransport};
pub use error::ServeError;
pub use job::{Algorithm, JobOutcome, JobReport, JobSpec, Rejection, ALGORITHMS};
pub use json::Json;
pub use metrics::{Counter, Histogram, Metrics};
pub use queue::{BoundedQueue, PushError};
pub use retry::RetryPolicy;
pub use server::{request_lines, request_lines_with_retry, transient_io, Server, ServerConfig};
pub use service::{default_max_procs, validate_procs, Client, Service, ServiceConfig, Ticket};
