//! Embedded metrics registry: atomic counters plus log-bucketed latency
//! histograms, snapshot-able to JSON without stopping the world.
//!
//! The accounting identity the service maintains (and tests assert):
//!
//! ```text
//! submitted = accepted + rejected
//! accepted  = completed + timed_out + failed + drained   (once idle)
//! ```
//!
//! `rejected` splits into `rejected_full` (backpressure),
//! `rejected_shutdown`, `rejected_invalid` and `quarantined` (poison
//! jobs). `drained` counts accepted jobs that shutdown (or an injected
//! cancellation) cancelled before — or while — they ran.
//!
//! Distributed runs add a lease clause:
//!
//! ```text
//! leases_issued = leases_resolved + leases_expired        (once idle)
//! ```
//!
//! with `leases_stolen`, `failovers`, `degraded_jobs`, `recovery_rects`
//! and `stale_results` outside the identity (they describe *how* leases
//! resolved or expired, not whether).
//!
//! The self-healing counters sit outside the identity: `panics` counts
//! panic events (caught or worker-fatal), `respawns` counts workers the
//! supervisor brought back, `retries` counts in-process backpressure
//! retries, and `conn_rejected` counts connections the TCP accept gate
//! turned away; `workers_alive` is the live pool gauge.

use crate::json::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` (folding per-job cache event batches in one step).
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 includes
/// zero); 40 buckets cover up to ~12.7 days. Lock-free to record,
/// approximate (within 2×) to quantile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; Histogram::NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    const NUM_BUCKETS: usize = 40;

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(Self::NUM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Largest sample seen, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate quantile (upper bound of the bucket holding it,
    /// clamped to the observed maximum), in microseconds. `q` in [0, 1].
    ///
    /// The clamp matters: a raw bucket upper bound (`2^(i+1)`) can exceed
    /// every recorded sample — a snapshot would then report a p50/p99
    /// *above* `max_us`. Clamping to the true maximum keeps every
    /// quantile ≤ `max_us`, and since bucket bounds grow monotonically
    /// with rank the quantiles stay monotone (p50 ≤ p90 ≤ p99 ≤ max).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let max = self.max_us();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return (1u64 << (i + 1)).min(max);
            }
        }
        max
    }

    /// JSON snapshot: count, mean, p50/p90/p99 (approximate), max.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::u64(self.count())),
            ("mean_us", Json::u64(self.mean_us())),
            ("p50_us", Json::u64(self.quantile_us(0.50))),
            ("p90_us", Json::u64(self.quantile_us(0.90))),
            ("p99_us", Json::u64(self.quantile_us(0.99))),
            ("max_us", Json::u64(self.max_us.load(Ordering::Relaxed))),
        ])
    }
}

/// Per-algorithm run metrics.
#[derive(Debug, Default)]
pub struct AlgorithmMetrics {
    /// Completed runs.
    pub runs: Counter,
    /// Wall-clock of completed runs.
    pub wall: Histogram,
    /// Total literals saved by completed runs.
    pub literals_saved: AtomicI64,
    /// Per-phase wall-clock histograms, keyed by the driver's
    /// `PhaseTiming` names (`matrix`, `cover`, `partition`, …). The lock
    /// is held only to fetch/insert the `Arc`; recording into a
    /// histogram stays lock-free, so `to_json` snapshots can race
    /// concurrent `record_phase` calls.
    phases: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl AlgorithmMetrics {
    /// The histogram for phase `name`, created on first use. Insertion
    /// order is preserved in snapshots (drivers report phases in
    /// execution order).
    pub fn phase(&self, name: &str) -> Arc<Histogram> {
        let mut phases = self.phases.lock().expect("phase registry poisoned");
        if let Some((_, h)) = phases.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        phases.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Records one phase duration.
    pub fn record_phase(&self, name: &str, d: Duration) {
        self.phase(name).record(d);
    }

    fn to_json(&self) -> Json {
        let phases: Vec<(String, Json)> = self
            .phases
            .lock()
            .expect("phase registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.to_json()))
            .collect();
        Json::obj([
            ("runs", Json::u64(self.runs.get())),
            ("wall", self.wall.to_json()),
            (
                "literals_saved",
                Json::num(self.literals_saved.load(Ordering::Relaxed) as f64),
            ),
            ("phases", Json::Obj(phases)),
        ])
    }
}

/// The service-wide registry. One instance per [`Service`]; cheap enough
/// to snapshot on every `metrics` request.
///
/// [`Service`]: crate::service::Service
#[derive(Debug, Default)]
pub struct Metrics {
    /// Every submission attempt.
    pub submitted: Counter,
    /// Submissions the queue accepted.
    pub accepted: Counter,
    /// Backpressure rejections (queue at capacity).
    pub rejected_full: Counter,
    /// Rejections because shutdown had begun.
    pub rejected_shutdown: Counter,
    /// Rejections for malformed specs.
    pub rejected_invalid: Counter,
    /// Rejections because the job's fingerprint is quarantined (it
    /// killed workers / panicked repeatedly).
    pub quarantined: Counter,
    /// Jobs that ran to completion.
    pub completed: Counter,
    /// Jobs that hit their deadline.
    pub timed_out: Counter,
    /// Jobs whose worker panicked.
    pub failed: Counter,
    /// Accepted jobs cancelled by shutdown.
    pub drained: Counter,
    /// Time from acceptance to a worker picking the job up.
    pub queue_wait: Histogram,
    /// Panic events: jobs whose extraction panicked (caught) plus
    /// worker threads that died outright.
    pub panics: Counter,
    /// Worker threads (re)spawned by the supervisor after a death.
    pub respawns: Counter,
    /// Backpressure retries performed by the in-process client.
    pub retries: Counter,
    /// Connections the TCP accept gate rejected (overload).
    pub conn_rejected: Counter,
    /// Jobs currently executing (gauge).
    pub in_flight: AtomicI64,
    /// Worker threads currently alive (gauge; the supervisor holds this
    /// at the configured pool size).
    pub workers_alive: AtomicI64,
    /// Resident background search-pool threads across all workers
    /// (gauge; parked between pooled `Seq` jobs, reused warm).
    pub search_pool_threads: AtomicI64,
    /// Extraction-cache lookups (one per cache-eligible job). Satisfies
    /// `cache_lookups == cache_hits + cache_misses`.
    pub cache_lookups: Counter,
    /// Jobs served outright from the extraction cache.
    pub cache_hits: Counter,
    /// Cache-eligible jobs that fell through to a real run.
    pub cache_misses: Counter,
    /// Cache result entries evicted (LRU capacity or TTL expiry).
    pub cache_evictions: Counter,
    /// Cold runs that found warm-start hints and seeded the engine.
    pub cache_warm: Counter,
    /// Delta submissions that actually took the splice path (exact hits
    /// and full-run fallbacks are counted under their own outcomes).
    pub delta_jobs: Counter,
    /// Distributed-coordinator leases created (initial dispatches,
    /// failovers, splits, inline fallbacks). Satisfies
    /// `leases_issued == leases_resolved + leases_expired` at quiescence.
    pub leases_issued: Counter,
    /// Leases that produced the admitted sub-job result.
    pub leases_resolved: Counter,
    /// Leases that expired (deadline, worker death, failed sub-job, or
    /// coordinator wind-down) before resolving.
    pub leases_expired: Counter,
    /// Leases created by splitting a repeatedly-expiring unit in two
    /// (work stealing).
    pub leases_stolen: Counter,
    /// Failover re-dispatches after a lease expiry.
    pub failovers: Counter,
    /// Distributed units abandoned past their retry budget (result
    /// stayed correct at degraded quality).
    pub degraded_jobs: Counter,
    /// Rectangles recovered by boundary-recovery sub-jobs.
    pub recovery_rects: Counter,
    /// Recovery-shard resubstitution rewrites the coordinator dropped at
    /// merge time (claim conflict between shards, or a cycle the shard
    /// could not see).
    pub recovery_conflicts: Counter,
    /// Sub-job results that arrived for an inactive lease (late after
    /// expiry, or duplicated in flight) and were ignored.
    pub stale_results: Counter,
    /// Per-algorithm completed-run metrics, indexed by
    /// [`ALGORITHMS`](crate::job::ALGORITHMS) order.
    pub per_algorithm: [AlgorithmMetrics; 4],
}

impl Metrics {
    /// Total rejections, all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_full.get()
            + self.rejected_shutdown.get()
            + self.rejected_invalid.get()
            + self.quarantined.get()
    }

    /// The accounting identity; holds exactly when no job is queued or
    /// in flight (e.g. after shutdown, or any quiescent moment). The
    /// cache clause is part of the identity: every cache lookup resolves
    /// to exactly one of hit or miss.
    pub fn balanced(&self) -> bool {
        self.submitted.get() == self.accepted.get() + self.rejected()
            && self.accepted.get()
                == self.completed.get()
                    + self.timed_out.get()
                    + self.failed.get()
                    + self.drained.get()
            && self.cache_lookups.get() == self.cache_hits.get() + self.cache_misses.get()
            && self.leases_issued.get() == self.leases_resolved.get() + self.leases_expired.get()
    }

    /// Folds one distributed run's lease statistics into the registry.
    pub fn record_dist(&self, stats: &pf_core::DistStats) {
        self.leases_issued.add(stats.leases_issued);
        self.leases_resolved.add(stats.leases_resolved);
        self.leases_expired.add(stats.leases_expired);
        self.leases_stolen.add(stats.leases_stolen);
        self.failovers.add(stats.failovers);
        self.degraded_jobs.add(stats.degraded_jobs);
        self.recovery_rects.add(stats.recovery_rects);
        self.recovery_conflicts.add(stats.recovery_conflicts);
        self.stale_results.add(stats.stale_results);
    }

    /// Snapshot as JSON; `queue_depth` is sampled by the caller (the
    /// queue owns that number).
    pub fn to_json(&self, queue_depth: usize) -> Json {
        Json::obj([
            ("submitted", Json::u64(self.submitted.get())),
            ("accepted", Json::u64(self.accepted.get())),
            ("rejected_full", Json::u64(self.rejected_full.get())),
            ("rejected_shutdown", Json::u64(self.rejected_shutdown.get())),
            ("rejected_invalid", Json::u64(self.rejected_invalid.get())),
            ("quarantined", Json::u64(self.quarantined.get())),
            ("completed", Json::u64(self.completed.get())),
            ("timed_out", Json::u64(self.timed_out.get())),
            ("failed", Json::u64(self.failed.get())),
            ("drained", Json::u64(self.drained.get())),
            ("panics", Json::u64(self.panics.get())),
            ("respawns", Json::u64(self.respawns.get())),
            ("retries", Json::u64(self.retries.get())),
            ("conn_rejected", Json::u64(self.conn_rejected.get())),
            ("cache_lookups", Json::u64(self.cache_lookups.get())),
            ("cache_hits", Json::u64(self.cache_hits.get())),
            ("cache_misses", Json::u64(self.cache_misses.get())),
            ("cache_evictions", Json::u64(self.cache_evictions.get())),
            ("cache_warm", Json::u64(self.cache_warm.get())),
            ("delta_jobs", Json::u64(self.delta_jobs.get())),
            ("leases_issued", Json::u64(self.leases_issued.get())),
            ("leases_resolved", Json::u64(self.leases_resolved.get())),
            ("leases_expired", Json::u64(self.leases_expired.get())),
            ("leases_stolen", Json::u64(self.leases_stolen.get())),
            ("failovers", Json::u64(self.failovers.get())),
            ("degraded_jobs", Json::u64(self.degraded_jobs.get())),
            ("recovery_rects", Json::u64(self.recovery_rects.get())),
            (
                "recovery_conflicts",
                Json::u64(self.recovery_conflicts.get()),
            ),
            ("stale_results", Json::u64(self.stale_results.get())),
            ("queue_depth", Json::u64(queue_depth as u64)),
            (
                "in_flight",
                Json::num(self.in_flight.load(Ordering::Relaxed) as f64),
            ),
            (
                "workers_alive",
                Json::num(self.workers_alive.load(Ordering::Relaxed) as f64),
            ),
            (
                "search_pool_threads",
                Json::num(self.search_pool_threads.load(Ordering::Relaxed) as f64),
            ),
            ("queue_wait", self.queue_wait.to_json()),
            (
                "algorithms",
                Json::Obj(
                    crate::job::ALGORITHMS
                        .iter()
                        .enumerate()
                        .map(|(i, alg)| (alg.as_str().to_string(), self.per_algorithm[i].to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 100, 100, 100, 5000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 8);
        assert!(h.mean_us() > 0);
        // p50 of the multiset lands in the 100 µs bucket → upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        assert!(h.quantile_us(1.0) >= 100_000);
        assert_eq!(h.quantile_us(0.0), 2); // lowest occupied bucket bound
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn zero_duration_records_into_the_first_bucket() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        // Bucket 0's upper bound is 2 µs, but the only sample is 0 µs —
        // the clamp keeps the quantile at the observed maximum.
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn quantiles_never_exceed_the_observed_max() {
        // A single 3 µs sample lands in bucket 1 (upper bound 4 µs);
        // before the clamp every quantile reported 4 > max.
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert!(h.quantile_us(q) <= h.max_us(), "q={q}");
        }
        assert_eq!(h.quantile_us(0.99), 3);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::default();
        for us in [1u64, 7, 33, 129, 5000, 70_000, 70_001] {
            h.record(Duration::from_micros(us));
        }
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile_us(q))
            .collect();
        for pair in qs.windows(2) {
            assert!(pair[0] <= pair[1], "quantiles out of order: {qs:?}");
        }
        assert!(*qs.last().unwrap() <= h.max_us());
    }

    #[test]
    fn balance_identity() {
        let m = Metrics::default();
        assert!(m.balanced());
        m.submitted.inc();
        m.accepted.inc();
        assert!(!m.balanced()); // job accepted but unaccounted
        m.completed.inc();
        assert!(m.balanced());
        m.submitted.inc();
        m.rejected_full.inc();
        assert!(m.balanced());
        m.submitted.inc();
        m.accepted.inc();
        m.drained.inc();
        assert!(m.balanced());
        // The cache clause: a lookup must resolve to a hit or a miss.
        m.cache_lookups.inc();
        assert!(!m.balanced());
        m.cache_hits.inc();
        assert!(m.balanced());
        m.cache_lookups.inc();
        m.cache_misses.inc();
        assert!(m.balanced());
        // Evictions / warm seeds / delta jobs sit outside the identity.
        m.cache_evictions.inc();
        m.cache_warm.inc();
        m.delta_jobs.inc();
        assert!(m.balanced());
        // The lease clause: every issued lease resolves or expires.
        m.leases_issued.inc();
        assert!(!m.balanced());
        m.leases_resolved.inc();
        assert!(m.balanced());
        m.leases_issued.inc();
        m.leases_expired.inc();
        assert!(m.balanced());
        // Splits / failovers / degradations sit outside the identity.
        m.leases_stolen.inc();
        m.failovers.inc();
        m.degraded_jobs.inc();
        m.recovery_rects.inc();
        m.stale_results.inc();
        assert!(m.balanced());
    }

    #[test]
    fn record_dist_folds_lease_stats() {
        let m = Metrics::default();
        let stats = pf_core::DistStats {
            leases_issued: 4,
            leases_resolved: 3,
            leases_expired: 1,
            leases_stolen: 2,
            failovers: 1,
            degraded_jobs: 0,
            recovery_rects: 5,
            recovery_conflicts: 2,
            stale_results: 1,
        };
        m.record_dist(&stats);
        assert!(m.balanced());
        let j = m.to_json(0);
        assert_eq!(j.get("leases_issued").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("failovers").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("recovery_rects").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("recovery_conflicts").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("stale_results").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn cache_counters_appear_in_the_snapshot() {
        let m = Metrics::default();
        m.cache_lookups.inc();
        m.cache_hits.inc();
        let j = m.to_json(0);
        for key in [
            "cache_lookups",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_warm",
            "delta_jobs",
        ] {
            assert!(j.get(key).and_then(Json::as_u64).is_some(), "{key}");
        }
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn snapshot_contains_the_schema() {
        let m = Metrics::default();
        m.submitted.inc();
        m.accepted.inc();
        m.completed.inc();
        m.queue_wait.record(Duration::from_micros(42));
        m.per_algorithm[0].runs.inc();
        let j = m.to_json(3);
        assert_eq!(j.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("queue_depth").and_then(Json::as_u64), Some(3));
        let algs = j.get("algorithms").unwrap();
        assert_eq!(
            algs.get("seq").unwrap().get("runs").and_then(Json::as_u64),
            Some(1)
        );
        assert!(algs.get("lshaped").is_some());
        assert_eq!(
            j.get("queue_wait")
                .unwrap()
                .get("count")
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn per_phase_histograms_appear_in_the_snapshot_in_order() {
        let m = Metrics::default();
        let alg = &m.per_algorithm[2]; // independent
        alg.record_phase("partition", Duration::from_micros(10));
        alg.record_phase("extract", Duration::from_micros(500));
        alg.record_phase("merge", Duration::from_micros(20));
        alg.record_phase("extract", Duration::from_micros(700));
        let j = m.to_json(0);
        let phases = j
            .get("algorithms")
            .and_then(|a| a.get("independent"))
            .and_then(|a| a.get("phases"))
            .unwrap();
        let Json::Obj(members) = phases else {
            panic!("phases must be an object")
        };
        let names: Vec<&str> = members.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["partition", "extract", "merge"]);
        assert_eq!(
            phases
                .get("extract")
                .unwrap()
                .get("count")
                .and_then(Json::as_u64),
            Some(2)
        );
        let p99 = phases
            .get("extract")
            .unwrap()
            .get("p99_us")
            .and_then(Json::as_u64)
            .unwrap();
        let max = phases
            .get("extract")
            .unwrap()
            .get("max_us")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(p99 <= max);
    }

    #[test]
    fn snapshots_race_concurrent_records_without_breaking_invariants() {
        // Writers hammer counters + histograms (preserving the balance
        // identity at every step) while a reader snapshots; afterwards
        // the registry must balance and every quantile must respect max.
        let m = Arc::new(Metrics::default());
        std::thread::scope(|s| {
            for t in 0..3usize {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.submitted.inc();
                        m.accepted.inc();
                        m.completed.inc();
                        let alg = &m.per_algorithm[t % 4];
                        alg.wall.record(Duration::from_micros(i * 37 % 9000));
                        alg.record_phase("extract", Duration::from_micros(i % 300));
                        m.queue_wait.record(Duration::from_micros(i % 50));
                    }
                });
            }
            let m = Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..200 {
                    let j = m.to_json(0);
                    // Snapshots are well-formed mid-flight.
                    assert!(j.get("algorithms").is_some());
                    let q = j.get("queue_wait").unwrap();
                    let p99 = q.get("p99_us").and_then(Json::as_u64).unwrap();
                    let max = q.get("max_us").and_then(Json::as_u64).unwrap();
                    assert!(p99 <= max, "mid-flight snapshot: p99 {p99} > max {max}");
                }
            });
        });
        assert!(m.balanced());
        for alg in &m.per_algorithm {
            let h = alg.phase("extract");
            assert!(h.quantile_us(0.5) <= h.quantile_us(0.99));
            assert!(h.quantile_us(0.99) <= h.max_us());
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any random sample set, quantiles are monotone in `q`
        /// and never exceed the observed maximum.
        #[test]
        fn quantiles_monotone_and_bounded(samples in prop::collection::vec(0u64..10_000_000, 1..64)) {
            let h = Histogram::default();
            for &us in &samples {
                h.record(Duration::from_micros(us));
            }
            let true_max = *samples.iter().max().unwrap();
            prop_assert_eq!(h.max_us(), true_max);
            let mut prev = 0u64;
            for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let v = h.quantile_us(q);
                prop_assert!(v >= prev, "q={} gave {} < {}", q, v, prev);
                prop_assert!(v <= true_max, "q={} gave {} > max {}", q, v, true_max);
                prev = v;
            }
        }
    }
}
