//! Job execution: one queued job → one [`JobOutcome`], with panic
//! isolation so a bad job can never take a pool thread down with it.

use crate::job::{resolve_workload, Algorithm, JobOutcome, JobReport, JobSpec};
use pf_core::{
    independent_extract, lshaped_extract, replicated_extract, ExtractConfig, ExtractReport,
    IndependentConfig, LShapedConfig, ReplicatedConfig, RunCtl, SearchPool,
};
use std::time::Instant;

/// Runs the extraction a spec describes, observing `ctl` at the
/// driver's barrier points. Blocking; returns the driver's report.
///
/// `pool` is this worker thread's resident [`SearchPool`] slot: a
/// `Seq` job with `par_threads ≥ 1` adopts the pool left by the
/// previous job (warmed threads, retained scratch) and hands it back
/// when done. Other algorithms own their pools per run (their engines
/// live on driver-spawned threads), so the slot passes through
/// untouched.
pub fn run_extraction(
    spec: &JobSpec,
    ctl: &RunCtl,
    pool: &mut Option<SearchPool>,
) -> Result<ExtractReport, String> {
    let mut nw = resolve_workload(&spec.workload)?;
    let mut extract = ExtractConfig {
        ctl: ctl.clone(),
        ..ExtractConfig::default()
    };
    extract.search.par_threads = spec.par_threads;
    let report = match spec.algorithm {
        Algorithm::Seq => pf_core::extract_kernels_pooled(&mut nw, &[], &extract, pool),
        Algorithm::Replicated => replicated_extract(
            &mut nw,
            &ReplicatedConfig {
                procs: spec.procs,
                extract,
                ..ReplicatedConfig::default()
            },
        ),
        Algorithm::Independent => independent_extract(
            &mut nw,
            &IndependentConfig {
                procs: spec.procs,
                extract,
                ..IndependentConfig::default()
            },
        ),
        Algorithm::Lshaped => lshaped_extract(
            &mut nw,
            &LShapedConfig {
                procs: spec.procs,
                extract,
                ..LShapedConfig::default()
            },
        ),
    };
    Ok(report)
}

/// Runs one job start-to-finish and classifies the outcome. `queue_wait`
/// is how long the job sat queued (measured by the caller, who owns the
/// accept timestamp). Panics inside the extraction are caught and become
/// [`JobOutcome::Failed`].
pub fn execute(spec: &JobSpec, ctl: &RunCtl, queue_wait: std::time::Duration) -> JobOutcome {
    execute_tracked(spec, ctl, queue_wait, &mut None).0
}

/// [`execute`], additionally reporting whether the extraction *panicked*
/// (as opposed to failing structurally) — the supervisor uses this to
/// put a poison strike on the job's fingerprint.
pub fn execute_tracked(
    spec: &JobSpec,
    ctl: &RunCtl,
    queue_wait: std::time::Duration,
    pool: &mut Option<SearchPool>,
) -> (JobOutcome, bool) {
    let started = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_extraction(spec, ctl, pool)
    }));
    let run_time = started.elapsed();
    match result {
        Err(payload) => {
            // The pool may hold workers mid-pass or poisoned state from
            // the unwound job — drop it; the next job starts fresh.
            *pool = None;
            (
                JobOutcome::Failed {
                    message: panic_message(payload),
                },
                true,
            )
        }
        Ok(Err(msg)) => (JobOutcome::Failed { message: msg }, false),
        Ok(Ok(report)) => {
            let jr = JobReport {
                report,
                queue_wait,
                run_time,
            };
            let outcome = if jr.report.cancelled {
                // Shutdown — or an injected cancellation — cancelled the
                // run; either way it drained without a usable result.
                JobOutcome::Drained
            } else if jr.report.timed_out {
                JobOutcome::TimedOut(jr)
            } else {
                JobOutcome::Completed(jr)
            };
            (outcome, false)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ALGORITHMS;
    use std::time::Duration;

    #[test]
    fn every_algorithm_completes_a_small_job() {
        for alg in ALGORITHMS {
            let spec = JobSpec {
                procs: 2,
                ..JobSpec::new(alg, "gen:misex3@0.05")
            };
            match execute(&spec, &RunCtl::new(), Duration::ZERO) {
                JobOutcome::Completed(jr) => {
                    assert!(jr.report.lc_after <= jr.report.lc_before, "{alg:?}");
                    assert!(jr.run_time > Duration::ZERO);
                }
                other => panic!("{alg:?}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_times_out() {
        let spec = JobSpec {
            deadline: Some(Duration::ZERO),
            ..JobSpec::new(Algorithm::Seq, "gen:dalu@0.2")
        };
        let ctl = crate::job::ctl_for(&spec);
        match execute(&spec, &ctl, Duration::ZERO) {
            JobOutcome::TimedOut(jr) => assert_eq!(jr.report.extractions, 0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn cancelled_job_reports_drained() {
        let ctl = RunCtl::new();
        ctl.cancel();
        let spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.05");
        match execute(&spec, &ctl, Duration::ZERO) {
            JobOutcome::Drained => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn seq_pooled_jobs_reuse_the_worker_pool() {
        let spec = JobSpec {
            par_threads: 2,
            ..JobSpec::new(Algorithm::Seq, "gen:misex3@0.05")
        };
        let mut pool = None;
        for _ in 0..2 {
            let (outcome, panicked) =
                execute_tracked(&spec, &RunCtl::new(), Duration::ZERO, &mut pool);
            assert!(!panicked);
            assert!(matches!(outcome, JobOutcome::Completed(_)));
        }
        // Both jobs ran through one pool: its single background worker
        // was spawned by the first job and adopted warm by the second.
        assert_eq!(pool.expect("slot refilled").spawned_threads(), 1);
    }

    #[test]
    fn bad_workload_fails_structurally() {
        let spec = JobSpec::new(Algorithm::Seq, "gen:nosuch@0.1");
        match execute(&spec, &RunCtl::new(), Duration::ZERO) {
            JobOutcome::Failed { message } => assert!(message.contains("nosuch")),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn panic_is_contained() {
        let spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.05");
        let outcome = std::panic::catch_unwind(|| {
            // Simulate a panicking job path through the same classifier.
            let result: Result<Result<ExtractReport, String>, _> =
                std::panic::catch_unwind(|| panic!("boom"));
            match result {
                Err(p) => JobOutcome::Failed {
                    message: panic_message(p),
                },
                _ => unreachable!(),
            }
        })
        .expect("outer context survives");
        match outcome {
            JobOutcome::Failed { message } => assert_eq!(message, "boom"),
            other => panic!("unexpected outcome {other:?}"),
        }
        let _ = spec;
    }
}
