//! Job execution: one queued job → one [`JobOutcome`], with panic
//! isolation so a bad job can never take a pool thread down with it.

use crate::job::{resolve_workload, Algorithm, JobOutcome, JobReport, JobSpec};
use pf_cache::{delta, ExtractionCache};
use pf_core::{
    independent_extract, lshaped_extract, replicated_extract, CacheEvents, CacheHandle,
    ExtractConfig, ExtractReport, IndependentConfig, LShapedConfig, PhaseTiming, ReplicatedConfig,
    RunCtl, SearchPool,
};
use pf_kcmatrix::network_digest;
use pf_network::{Network, SignalId};
use std::time::Instant;

/// The shared cache plus this job's admission decision, as resolved by
/// the caller (the supervisor clears `admit` once a fingerprint has any
/// poison strikes, so a quarantine-bound job can never seed the cache).
pub struct CacheCtx<'a> {
    /// The service's shared extraction cache.
    pub cache: &'a ExtractionCache,
    /// Whether a completed result may be admitted.
    pub admit: bool,
}

/// What the cache did for one executed job; the supervisor folds this
/// into the service metrics. All-zero when no cache was attached.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheOutcome {
    /// Lookup / hit / miss / eviction / warm-start events.
    pub events: CacheEvents,
    /// Whether a delta splice was actually applied (base resolved and
    /// clean cones spliced — full-run fallbacks don't count).
    pub delta: bool,
}

/// Runs the extraction a spec describes, observing `ctl` at the
/// driver's barrier points. Blocking; returns the driver's report plus
/// the cache activity it caused.
///
/// `pool` is this worker thread's resident [`SearchPool`] slot: a
/// `Seq` job with `par_threads ≥ 1` adopts the pool left by the
/// previous job (warmed threads, retained scratch) and hands it back
/// when done. Other algorithms own their pools per run (their engines
/// live on driver-spawned threads), so the slot passes through
/// untouched.
///
/// With a [`CacheCtx`] attached, the job is keyed by its parameter
/// digest combined with the generated network's content digest — two
/// workload strings that generate the same network share entries. An
/// exact hit replays the memoized result; a miss runs cold (warm-started
/// for `Seq` when hints are resident) and, when admissible, memoizes.
pub fn run_extraction(
    spec: &JobSpec,
    ctl: &RunCtl,
    pool: &mut Option<SearchPool>,
    cache: Option<&CacheCtx<'_>>,
) -> Result<(ExtractReport, CacheOutcome), String> {
    let mut nw = resolve_workload(&spec.workload)?;
    let mut extract = ExtractConfig {
        ctl: ctl.clone(),
        ..ExtractConfig::default()
    };
    extract.search.par_threads = spec.par_threads;
    extract.search.topk = spec.batch_rects.max(1);
    extract.search.tile_width = spec.tile_width;
    let handle = cache.map(|c| {
        let content = network_digest(&nw);
        CacheHandle {
            cache: c.cache,
            key: spec.cache_param_digest().combine(content),
            warm_key: content,
            admit: c.admit,
        }
    });

    if let (Some(h), Some(base)) = (handle.as_ref(), spec.delta_from.as_deref()) {
        // Seq-only, enforced at submit time.
        if let Some((report, events)) = run_delta(base, &mut nw, &extract, pool, h) {
            return Ok((
                report,
                CacheOutcome {
                    events,
                    delta: true,
                },
            ));
        }
        // Base not cached (or structurally unusable as a base): fall
        // through to a full cold run, which *is* admissible.
    }

    let trace = extract.trace.clone();
    let (report, events) = match spec.algorithm {
        Algorithm::Seq => {
            pf_core::extract_kernels_cached(&mut nw, &[], &extract, pool, handle.as_ref())
        }
        Algorithm::Replicated => pf_core::run_cached(&mut nw, &trace, handle.as_ref(), |nw| {
            replicated_extract(
                nw,
                &ReplicatedConfig {
                    procs: spec.procs,
                    extract,
                    ..ReplicatedConfig::default()
                },
            )
        }),
        Algorithm::Independent => pf_core::run_cached(&mut nw, &trace, handle.as_ref(), |nw| {
            independent_extract(
                nw,
                &IndependentConfig {
                    procs: spec.procs,
                    extract,
                    ..IndependentConfig::default()
                },
            )
        }),
        Algorithm::Lshaped => pf_core::run_cached(&mut nw, &trace, handle.as_ref(), |nw| {
            lshaped_extract(
                nw,
                &LShapedConfig {
                    procs: spec.procs,
                    extract,
                    ..LShapedConfig::default()
                },
            )
        }),
    };
    Ok((
        report,
        CacheOutcome {
            events,
            delta: false,
        },
    ))
}

/// The delta-submit path: serve an exact hit if the *new* network is
/// already cached; otherwise resolve the base job's cached result,
/// splice its factored clean cones into the new network, and re-extract
/// only the dirty cones. Returns `None` — full cold run, please — when
/// the base isn't cached or the splice is structurally impossible.
///
/// Spliced results are *never* admitted to the exact cache: they are
/// functionally equivalent to, but not byte-identical with, a cold run
/// of the new network, and the exact cache promises byte identity.
fn run_delta(
    base_fp: &str,
    nw: &mut Network,
    extract: &ExtractConfig,
    pool: &mut Option<SearchPool>,
    handle: &CacheHandle<'_>,
) -> Option<(ExtractReport, CacheEvents)> {
    let started = Instant::now();
    let mut events = CacheEvents {
        lookups: 1,
        ..Default::default()
    };
    if let Some(report) = pf_core::try_replay(nw, &extract.trace, handle) {
        events.hits = 1;
        return Some((report, events));
    }
    events.misses = 1;

    // Resolve the base fingerprint to its cached extraction. The base
    // network is regenerated only to compute its content digest — cheap
    // next to an extraction run.
    let base_workload = base_fp.strip_prefix("seq/").unwrap_or(base_fp);
    let base_nw = resolve_workload(base_workload).ok()?;
    let base_key = JobSpec::new(Algorithm::Seq, base_workload)
        .cache_param_digest()
        .combine(network_digest(&base_nw));
    events.lookups += 1;
    let base = match handle.cache.lookup(&base_key) {
        Some(b) => {
            events.hits += 1;
            b
        }
        None => return None,
    };

    let plan = delta::classify(&base, nw).ok()?;
    let lc_before = nw.literal_count();
    *nw = delta::splice(&base.network, nw, &plan).ok()?;
    let targets: Vec<SignalId> = plan.dirty.iter().filter_map(|n| nw.find(n)).collect();
    let splice_time = started.elapsed();

    // An empty target list means "everything" to the extractor, so a
    // fully-clean delta must skip the run outright.
    let mut report = if targets.is_empty() {
        ExtractReport {
            lc_after: nw.literal_count(),
            ..Default::default()
        }
    } else {
        pf_core::extract_kernels_pooled(nw, &targets, extract, pool)
    };
    // The report describes the whole delta job: cost starts at the
    // pristine new network (the splice already banked the base's
    // factoring), and the classify+splice work is its own phase so the
    // phases still sum to the elapsed total.
    report.lc_before = lc_before;
    report
        .phases
        .insert(0, PhaseTiming::new("splice", splice_time));
    report.elapsed += splice_time;
    Some((report, events))
}

/// Runs one job start-to-finish and classifies the outcome. `queue_wait`
/// is how long the job sat queued (measured by the caller, who owns the
/// accept timestamp). Panics inside the extraction are caught and become
/// [`JobOutcome::Failed`].
pub fn execute(spec: &JobSpec, ctl: &RunCtl, queue_wait: std::time::Duration) -> JobOutcome {
    execute_tracked(spec, ctl, queue_wait, &mut None, None).0
}

/// [`execute`], additionally reporting whether the extraction *panicked*
/// (as opposed to failing structurally) — the supervisor uses this to
/// put a poison strike on the job's fingerprint — and what the cache did
/// for the job. A panicking job reports all-zero cache activity; its
/// admission never happened (the cache is filled atomically, after the
/// run completes), so no partial entry can survive the unwind.
pub fn execute_tracked(
    spec: &JobSpec,
    ctl: &RunCtl,
    queue_wait: std::time::Duration,
    pool: &mut Option<SearchPool>,
    cache: Option<&CacheCtx<'_>>,
) -> (JobOutcome, bool, CacheOutcome) {
    let started = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_extraction(spec, ctl, pool, cache)
    }));
    let run_time = started.elapsed();
    match result {
        Err(payload) => {
            // The pool may hold workers mid-pass or poisoned state from
            // the unwound job — drop it; the next job starts fresh.
            *pool = None;
            (
                JobOutcome::Failed {
                    message: panic_message(payload),
                },
                true,
                CacheOutcome::default(),
            )
        }
        Ok(Err(msg)) => (
            JobOutcome::Failed { message: msg },
            false,
            CacheOutcome::default(),
        ),
        Ok(Ok((report, cache_out))) => {
            let jr = JobReport {
                report,
                queue_wait,
                run_time,
            };
            let outcome = if jr.report.cancelled {
                // Shutdown — or an injected cancellation — cancelled the
                // run; either way it drained without a usable result.
                JobOutcome::Drained
            } else if jr.report.timed_out {
                JobOutcome::TimedOut(jr)
            } else {
                JobOutcome::Completed(jr)
            };
            (outcome, false, cache_out)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ALGORITHMS;
    use std::time::Duration;

    #[test]
    fn every_algorithm_completes_a_small_job() {
        for alg in ALGORITHMS {
            let spec = JobSpec {
                procs: 2,
                ..JobSpec::new(alg, "gen:misex3@0.05")
            };
            match execute(&spec, &RunCtl::new(), Duration::ZERO) {
                JobOutcome::Completed(jr) => {
                    assert!(jr.report.lc_after <= jr.report.lc_before, "{alg:?}");
                    assert!(jr.run_time > Duration::ZERO);
                }
                other => panic!("{alg:?}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn batched_jobs_complete_and_report_pass_counters() {
        for alg in ALGORITHMS {
            let spec = JobSpec {
                procs: 2,
                batch_rects: 8,
                ..JobSpec::new(alg, "gen:misex3@0.05")
            };
            match execute(&spec, &RunCtl::new(), Duration::ZERO) {
                JobOutcome::Completed(jr) => {
                    assert!(jr.report.lc_after <= jr.report.lc_before, "{alg:?}");
                    assert!(jr.report.passes >= 1, "{alg:?}");
                    assert_eq!(
                        jr.report.batch_candidates,
                        jr.report.batch_accepted + jr.report.batch_rejected,
                        "{alg:?}"
                    );
                }
                other => panic!("{alg:?}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_times_out() {
        let spec = JobSpec {
            deadline: Some(Duration::ZERO),
            ..JobSpec::new(Algorithm::Seq, "gen:dalu@0.2")
        };
        let ctl = crate::job::ctl_for(&spec);
        match execute(&spec, &ctl, Duration::ZERO) {
            JobOutcome::TimedOut(jr) => assert_eq!(jr.report.extractions, 0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn cancelled_job_reports_drained() {
        let ctl = RunCtl::new();
        ctl.cancel();
        let spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.05");
        match execute(&spec, &ctl, Duration::ZERO) {
            JobOutcome::Drained => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn seq_pooled_jobs_reuse_the_worker_pool() {
        let spec = JobSpec {
            par_threads: 2,
            ..JobSpec::new(Algorithm::Seq, "gen:misex3@0.05")
        };
        let mut pool = None;
        for _ in 0..2 {
            let (outcome, panicked, _) =
                execute_tracked(&spec, &RunCtl::new(), Duration::ZERO, &mut pool, None);
            assert!(!panicked);
            assert!(matches!(outcome, JobOutcome::Completed(_)));
        }
        // Both jobs ran through one pool: its single background worker
        // was spawned by the first job and adopted warm by the second.
        assert_eq!(pool.expect("slot refilled").spawned_threads(), 1);
    }

    #[test]
    fn cached_resubmission_replays_for_every_algorithm() {
        use pf_cache::CacheConfig;
        let cache = ExtractionCache::new(CacheConfig::default());
        let ctx = CacheCtx {
            cache: &cache,
            admit: true,
        };
        let mut pool = None;
        for alg in ALGORITHMS {
            let spec = JobSpec {
                procs: 2,
                ..JobSpec::new(alg, "gen:misex3@0.05")
            };
            let (cold, out) =
                run_extraction(&spec, &RunCtl::new(), &mut pool, Some(&ctx)).expect("cold run");
            assert_eq!(out.events.misses, 1, "{alg:?}");
            assert_eq!(out.events.inserted, 1, "{alg:?}");
            let (hit, out2) =
                run_extraction(&spec, &RunCtl::new(), &mut pool, Some(&ctx)).expect("hit");
            assert_eq!(out2.events.hits, 1, "{alg:?}");
            assert_eq!(hit.lc_after, cold.lc_after, "{alg:?}");
            assert_eq!(hit.phases.len(), 1, "{alg:?}");
            assert_eq!(hit.phases[0].name, "cache");
        }
        assert!(cache.stats().balanced());
    }

    #[test]
    fn delta_resubmission_of_a_cached_workload_replays_the_exact_hit() {
        use pf_cache::CacheConfig;
        let cache = ExtractionCache::new(CacheConfig::default());
        let ctx = CacheCtx {
            cache: &cache,
            admit: true,
        };
        let mut pool = None;
        let base = JobSpec::new(Algorithm::Seq, "gen:misex3@0.1");
        let (cold, _) =
            run_extraction(&base, &RunCtl::new(), &mut pool, Some(&ctx)).expect("base run");

        // Identical workload as a delta: the new network's exact key is
        // already resident, so the delta path answers from the cache.
        let mut spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.1");
        spec.delta_from = Some("seq/gen:misex3@0.1".to_string());
        let before = cache.len();
        let (report, out) =
            run_extraction(&spec, &RunCtl::new(), &mut pool, Some(&ctx)).expect("delta");
        assert!(out.delta);
        assert_eq!(out.events.hits, 1);
        assert_eq!(report.lc_after, cold.lc_after);
        assert_eq!(report.phases[0].name, "cache");
        assert_eq!(cache.len(), before, "delta path admits nothing new");
    }

    #[test]
    fn delta_splice_re_extracts_dirty_cones_and_matches_the_cold_run() {
        use pf_cache::CacheConfig;
        let cache = ExtractionCache::new(CacheConfig::default());
        let ctx = CacheCtx {
            cache: &cache,
            admit: true,
        };
        let mut pool = None;
        // Seed a base whose cones do NOT match the new workload's: the
        // classifier marks every cone dirty, the splice reconstructs the
        // new network, and the dirty re-extraction must land exactly
        // where a plain cold run lands.
        let base = JobSpec::new(Algorithm::Seq, "gen:misex3@0.1");
        run_extraction(&base, &RunCtl::new(), &mut pool, Some(&ctx)).expect("base run");

        let cold_spec = JobSpec::new(Algorithm::Seq, "gen:dalu@0.2");
        let (cold, _) = run_extraction(&cold_spec, &RunCtl::new(), &mut pool, None).expect("cold");

        let mut spec = JobSpec::new(Algorithm::Seq, "gen:dalu@0.2");
        spec.delta_from = Some("seq/gen:misex3@0.1".to_string());
        let before = cache.len();
        let (report, out) =
            run_extraction(&spec, &RunCtl::new(), &mut pool, Some(&ctx)).expect("delta");
        assert!(out.delta, "base was cached, so the splice path ran");
        assert_eq!(report.phases[0].name, "splice");
        assert_eq!(report.lc_before, cold.lc_before);
        assert_eq!(report.lc_after, cold.lc_after);
        assert_eq!(report.extractions, cold.extractions);
        assert_eq!(cache.len(), before, "spliced results are never admitted");
    }

    #[test]
    fn delta_with_uncached_base_falls_back_to_a_full_run() {
        use pf_cache::CacheConfig;
        let cache = ExtractionCache::new(CacheConfig::default());
        let ctx = CacheCtx {
            cache: &cache,
            admit: true,
        };
        let mut pool = None;
        let mut spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.05");
        spec.delta_from = Some("seq/gen:dalu@0.2".to_string());
        let (report, out) =
            run_extraction(&spec, &RunCtl::new(), &mut pool, Some(&ctx)).expect("fallback");
        assert!(!out.delta, "fallback is not a delta job");
        assert_eq!(
            out.events.inserted, 1,
            "the fallback cold run is admissible"
        );
        assert!(report.lc_after <= report.lc_before);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bad_workload_fails_structurally() {
        let spec = JobSpec::new(Algorithm::Seq, "gen:nosuch@0.1");
        match execute(&spec, &RunCtl::new(), Duration::ZERO) {
            JobOutcome::Failed { message } => assert!(message.contains("nosuch")),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn panic_is_contained() {
        let spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.05");
        let outcome = std::panic::catch_unwind(|| {
            // Simulate a panicking job path through the same classifier.
            let result: Result<Result<ExtractReport, String>, _> =
                std::panic::catch_unwind(|| panic!("boom"));
            match result {
                Err(p) => JobOutcome::Failed {
                    message: panic_message(p),
                },
                _ => unreachable!(),
            }
        })
        .expect("outer context survives");
        match outcome {
            JobOutcome::Failed { message } => assert_eq!(message, "boom"),
            other => panic!("unexpected outcome {other:?}"),
        }
        let _ = spec;
    }
}
