//! The resident service: bounded queue + supervised worker pool +
//! metrics + graceful shutdown, behind an in-process [`Client`].
//!
//! Job lifecycle:
//!
//! ```text
//! submit ──► validated ──► queued ──► running ──► completed
//!    │            │           │          │      ├─► timed_out
//!    │            │           │          │      └─► failed (panic)
//!    │            │           └──────────┴─────────► drained (shutdown)
//!    └─► rejected (invalid / quarantined)
//!                             └─► rejected (queue_full / shutting_down)
//! ```
//!
//! Every accepted job is answered exactly once — even if its worker
//! thread dies (see [`supervisor`](crate::supervisor)); the metrics
//! registry's balance identity (see [`Metrics::balanced`]) is restored
//! whenever the service quiesces. A [`FaultPlan`] attached through
//! [`ServiceConfig::fault_plan`] rides into every job's `RunCtl`, which
//! is how the chaos tests stress all of the above.

use crate::job::{
    ctl_for, validate_workload, Algorithm, JobOutcome, JobSpec, JobTimeline, Rejection,
};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::retry::RetryPolicy;
use crate::supervisor::{self, SupervisorSignal};
use parking_lot::Mutex;
use pf_cache::{CacheConfig, ExtractionCache};
use pf_core::{FaultPlan, RunCtl};
use pf_kcmatrix::Digest;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How many finished-job timelines the service keeps for the `trace`
/// verb (a bounded ring: oldest entries fall off).
pub const TIMELINE_CAPACITY: usize = 64;

/// Service construction options.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded queue capacity (backpressure beyond this).
    pub queue_capacity: usize,
    /// Hard cap on per-job `procs`; jobs asking for more are clamped.
    /// Defaults to `std::thread::available_parallelism()`.
    pub max_procs: usize,
    /// Fault plan attached to every job's `RunCtl` (chaos testing).
    /// `None` — the default — keeps the fault plane a no-op.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Panic strikes (caught or worker-fatal) a job fingerprint may
    /// accumulate before further submissions are quarantined.
    pub poison_threshold: u32,
    /// Capacity of the shared extraction cache (results memoized by
    /// content digest; exact resubmissions replay without re-running).
    /// `0` disables caching — and with it `delta_from` submissions.
    pub cache_entries: usize,
    /// Optional time-to-live for cached results; an expired entry counts
    /// as a miss and an eviction. `None` (the default) keeps entries
    /// until LRU pressure evicts them.
    pub cache_ttl: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_procs: default_max_procs(),
            fault_plan: None,
            poison_threshold: 2,
            cache_entries: 64,
            cache_ttl: None,
        }
    }
}

/// The host's available parallelism (1 if unknown).
pub fn default_max_procs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Validates a processor count against a cap: zero is a structured
/// error, oversized requests are clamped to the cap. Shared by the
/// service and the CLI so both speak the same rule.
pub fn validate_procs(procs: usize, max: usize) -> Result<usize, String> {
    if procs == 0 {
        return Err("procs must be at least 1".to_string());
    }
    Ok(procs.min(max.max(1)))
}

pub(crate) struct QueuedJob {
    pub(crate) id: u64,
    pub(crate) spec: JobSpec,
    pub(crate) ctl: RunCtl,
    pub(crate) accepted_at: Instant,
    pub(crate) responder: mpsc::Sender<JobOutcome>,
}

pub(crate) struct Inner {
    pub(crate) queue: BoundedQueue<QueuedJob>,
    pub(crate) metrics: Metrics,
    /// RunCtl of every currently executing job, so `shutdown_now` can
    /// cancel in-flight work cooperatively.
    pub(crate) in_flight: Mutex<HashMap<u64, RunCtl>>,
    pub(crate) next_id: AtomicU64,
    pub(crate) max_procs: usize,
    /// Configured pool size the supervisor heals back to.
    pub(crate) desired_workers: usize,
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
    pub(crate) poison_threshold: u32,
    /// Panic strikes per job-fingerprint digest (poison-pill detection).
    /// Keyed by [`JobSpec::poison_key`] — the same canonical digest
    /// machinery the cache keys off, so quarantine, caching, and any
    /// future shard routing agree on a job's identity.
    pub(crate) poison: Mutex<HashMap<Digest, u32>>,
    /// Shared extraction cache; `None` when `cache_entries` was 0.
    pub(crate) cache: Option<Arc<ExtractionCache>>,
    pub(crate) sup: SupervisorSignal,
    /// Ring of the last [`TIMELINE_CAPACITY`] finished-job timelines.
    pub(crate) timelines: Mutex<VecDeque<JobTimeline>>,
}

impl Inner {
    /// Appends a finished job to the timeline ring, evicting the oldest
    /// entry at capacity.
    pub(crate) fn record_timeline(&self, t: JobTimeline) {
        let mut ring = self.timelines.lock();
        if ring.len() == TIMELINE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    /// Records one panic strike against a fingerprint digest.
    pub(crate) fn strike(&self, key: Digest) {
        *self.poison.lock().entry(key).or_insert(0) += 1;
    }

    /// Strikes currently on record for a fingerprint digest.
    pub(crate) fn strikes(&self, key: Digest) -> u32 {
        self.poison.lock().get(&key).copied().unwrap_or(0)
    }
}

/// A handle to one submitted job; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The service-assigned job id (also echoed over the wire).
    pub id: u64,
    rx: mpsc::Receiver<JobOutcome>,
}

impl Ticket {
    /// Blocks until the job is answered.
    pub fn wait(self) -> JobOutcome {
        self.rx.recv().unwrap_or(JobOutcome::Failed {
            message: "service dropped the job".to_string(),
        })
    }

    /// Blocks up to `timeout`; `None` means still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A cheap, clonable submission handle (the in-process API).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// Validates and enqueues a job. Returns a [`Ticket`] on acceptance
    /// or a structured [`Rejection`] (backpressure, shutdown, or bad
    /// spec) — never blocks on a full queue.
    pub fn submit(&self, mut spec: JobSpec) -> Result<Ticket, Rejection> {
        let m = &self.inner.metrics;
        m.submitted.inc();
        if let Err(msg) = validate_workload(&spec.workload) {
            m.rejected_invalid.inc();
            return Err(Rejection::Invalid(msg));
        }
        match validate_procs(spec.procs, self.inner.max_procs) {
            Ok(procs) => spec.procs = procs,
            Err(msg) => {
                m.rejected_invalid.inc();
                return Err(Rejection::Invalid(msg));
            }
        }
        // 0 is meaningful (classic sequential search), so only clamp.
        spec.par_threads = spec.par_threads.min(self.inner.max_procs.max(1));
        if spec.batch_rects == 0 {
            m.rejected_invalid.inc();
            return Err(Rejection::Invalid("batch_rects must be at least 1".into()));
        }
        if let Some(base) = &spec.delta_from {
            if let Err(msg) = self.validate_delta(&spec, base) {
                m.rejected_invalid.inc();
                return Err(Rejection::Invalid(msg));
            }
        }
        let strikes = self.inner.strikes(spec.poison_key());
        if strikes >= self.inner.poison_threshold {
            m.quarantined.inc();
            return Err(Rejection::Quarantined { strikes });
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut ctl = ctl_for(&spec);
        if let Some(plan) = &self.inner.fault_plan {
            ctl = ctl.with_faults(Arc::clone(plan));
        }
        let (tx, rx) = mpsc::channel();
        let job = QueuedJob {
            id,
            spec,
            ctl,
            accepted_at: Instant::now(),
            responder: tx,
        };
        match self.inner.queue.push(job) {
            Ok(()) => {
                m.accepted.inc();
                Ok(Ticket { id, rx })
            }
            Err(PushError::Full { capacity }) => {
                m.rejected_full.inc();
                Err(Rejection::QueueFull { capacity })
            }
            Err(PushError::Closed) => {
                m.rejected_shutdown.inc();
                Err(Rejection::ShuttingDown)
            }
        }
    }

    /// Structural checks for a delta submission: seq-only, the cache
    /// must exist, and the base fingerprint must name a valid seq
    /// workload (either `seq/<workload>` or a bare workload spec).
    fn validate_delta(&self, spec: &JobSpec, base: &str) -> Result<(), String> {
        if spec.algorithm != Algorithm::Seq {
            return Err(format!(
                "delta_from requires algorithm seq, not {}",
                spec.algorithm.as_str()
            ));
        }
        if self.inner.cache.is_none() {
            return Err("delta_from requires the cache (cache_entries > 0)".to_string());
        }
        let base_workload = base.strip_prefix("seq/").unwrap_or(base);
        validate_workload(base_workload).map_err(|msg| format!("delta_from base: {msg}"))
    }

    /// [`submit`](Client::submit), retrying *retryable* rejections
    /// (backpressure only — see [`Rejection::retryable`]) with the
    /// policy's exponential backoff + jitter. Terminal rejections and
    /// acceptance return immediately; each sleep-and-retry bumps the
    /// `retries` counter.
    pub fn submit_with_retry(
        &self,
        spec: JobSpec,
        policy: &RetryPolicy,
    ) -> Result<Ticket, Rejection> {
        let mut attempt = 0u32;
        loop {
            match self.submit(spec.clone()) {
                Err(r) if r.retryable() && attempt < policy.max_retries => {
                    self.inner.metrics.retries.inc();
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// The metrics registry (live counters).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The shared extraction cache, when one is configured.
    pub fn cache(&self) -> Option<&ExtractionCache> {
        self.inner.cache.as_deref()
    }

    /// JSON snapshot of the registry plus the live queue depth.
    pub fn metrics_json(&self) -> crate::json::Json {
        self.inner.metrics.to_json(self.inner.queue.depth())
    }

    /// The last `n` finished-job timelines (oldest first), as the JSON
    /// array the `trace` wire verb answers with. `n` is clamped to the
    /// ring capacity ([`TIMELINE_CAPACITY`]).
    pub fn trace_json(&self, n: usize) -> crate::json::Json {
        let ring = self.inner.timelines.lock();
        let skip = ring.len().saturating_sub(n.min(TIMELINE_CAPACITY));
        crate::json::Json::Arr(ring.iter().skip(skip).map(JobTimeline::to_json).collect())
    }
}

/// The running service: owns the supervised worker pool. Create with
/// [`Service::start`], submit through [`Service::client`], stop with
/// [`Service::shutdown`] (drain) or [`Service::shutdown_now`] (abort).
pub struct Service {
    inner: Arc<Inner>,
    /// Shared with the supervisor thread, which reaps and respawns; kept
    /// here too so shutdown can join even if the supervisor never
    /// started.
    pool: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Spawns the worker pool (and its supervisor) and returns the
    /// service handle. Spawn failures degrade — they are logged, and
    /// the supervisor keeps trying to bring the pool to strength —
    /// rather than panicking.
    pub fn start(cfg: ServiceConfig) -> Service {
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(cfg.queue_capacity),
            metrics: Metrics::default(),
            in_flight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_procs: cfg.max_procs.max(1),
            desired_workers: cfg.workers.max(1),
            fault_plan: cfg.fault_plan.clone(),
            poison_threshold: cfg.poison_threshold.max(1),
            poison: Mutex::new(HashMap::new()),
            cache: (cfg.cache_entries > 0).then(|| {
                Arc::new(ExtractionCache::new(CacheConfig {
                    entries: cfg.cache_entries,
                    ttl: cfg.cache_ttl,
                }))
            }),
            sup: SupervisorSignal::default(),
            timelines: Mutex::new(VecDeque::with_capacity(TIMELINE_CAPACITY)),
        });
        let pool = Arc::new(Mutex::new(Vec::with_capacity(inner.desired_workers)));
        for i in 0..inner.desired_workers {
            match supervisor::spawn_worker(&inner, i) {
                Ok(h) => pool.lock().push(h),
                Err(e) => eprintln!("pf-serve: {e}"),
            }
        }
        let supervisor = {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("pf-serve-supervisor".to_string())
                .spawn(move || supervisor::supervisor_loop(&inner, &pool))
                .map_err(|e| {
                    eprintln!(
                        "pf-serve: {} (pool will not self-heal)",
                        crate::error::ServeError::Spawn {
                            what: "supervisor",
                            source: e,
                        }
                    )
                })
                .ok()
        };
        Service {
            inner,
            pool,
            supervisor: Mutex::new(supervisor),
        }
    }

    /// An in-process submission handle.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Graceful shutdown: stop accepting, let the pool finish everything
    /// already accepted (queued *and* running), then join the supervisor
    /// and the workers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        self.inner.sup.wake();
        self.join_all();
    }

    /// Abort-style shutdown: stop accepting, answer still-queued jobs as
    /// drained without running them, cooperatively cancel running jobs
    /// (they answer as drained at their next barrier point), then join.
    pub fn shutdown_now(&self) {
        self.inner.queue.close();
        for job in self.inner.queue.drain_now() {
            self.inner.metrics.drained.inc();
            let _ = job.responder.send(JobOutcome::Drained);
        }
        for ctl in self.inner.in_flight.lock().values() {
            ctl.cancel();
        }
        self.inner.sup.wake();
        self.join_all();
    }

    fn join_all(&self) {
        // Supervisor first: it exits once the queue is closed+empty and
        // the pool is reaped, so afterwards the pool Vec is (normally)
        // already drained; anything left joins here.
        if let Some(h) = self.supervisor.lock().take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.pool.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Don't leak pool threads if the owner forgot to shut down.
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Algorithm, ALGORITHMS};
    use pf_core::FaultRule;

    fn small(alg: Algorithm) -> JobSpec {
        JobSpec {
            procs: 2,
            ..JobSpec::new(alg, "gen:misex3@0.05")
        }
    }

    #[test]
    fn submit_and_complete_every_algorithm() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let tickets: Vec<_> = ALGORITHMS
            .iter()
            .map(|&alg| client.submit(small(alg)).expect("accepted"))
            .collect();
        for t in tickets {
            match t.wait() {
                JobOutcome::Completed(jr) => assert!(jr.report.lc_after <= jr.report.lc_before),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        service.shutdown();
        assert!(client.metrics().balanced());
        assert_eq!(client.metrics().completed.get(), 4);
    }

    #[test]
    fn zero_procs_is_an_invalid_spec() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let mut spec = small(Algorithm::Independent);
        spec.procs = 0;
        match client.submit(spec) {
            Err(Rejection::Invalid(msg)) => assert!(msg.contains("procs")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(client.metrics().rejected_invalid.get(), 1);
        service.shutdown();
        assert!(client.metrics().balanced());
    }

    #[test]
    fn oversized_procs_are_clamped_not_rejected() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let mut spec = small(Algorithm::Independent);
        spec.procs = 10_000;
        let t = client.submit(spec).expect("clamped, not rejected");
        assert!(matches!(t.wait(), JobOutcome::Completed(_)));
        service.shutdown();
    }

    #[test]
    fn queue_full_rejects_with_backpressure() {
        // One worker, capacity 1: the worker grabs one job, one sits
        // queued, the next submission must bounce.
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for _ in 0..12 {
            match client.submit(small(Algorithm::Seq)) {
                Ok(t) => accepted.push(t),
                Err(Rejection::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected > 0, "burst must overflow a capacity-1 queue");
        for t in accepted {
            t.wait();
        }
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.rejected_full.get(), rejected);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let tickets: Vec<_> = (0..6)
            .map(|_| client.submit(small(Algorithm::Seq)).expect("accepted"))
            .collect();
        // Graceful: everything accepted still completes.
        service.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), JobOutcome::Completed(_)));
        }
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.completed.get(), 6);
        assert_eq!(m.drained.get(), 0);
        // And new submissions bounce with the shutdown reason.
        assert!(matches!(
            client.submit(small(Algorithm::Seq)),
            Err(Rejection::ShuttingDown)
        ));
    }

    #[test]
    fn shutdown_now_drains_without_running() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 32,
            ..ServiceConfig::default()
        });
        let client = service.client();
        // Big enough that the backlog cannot clear before the abort.
        let tickets: Vec<_> = (0..8)
            .map(|_| {
                client
                    .submit(JobSpec {
                        procs: 2,
                        ..JobSpec::new(Algorithm::Lshaped, "gen:dalu@0.3")
                    })
                    .expect("accepted")
            })
            .collect();
        service.shutdown_now();
        let outcomes: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        assert!(
            outcomes.iter().any(|o| matches!(o, JobOutcome::Drained)),
            "most of the backlog is answered drained: {outcomes:?}"
        );
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(
            m.accepted.get(),
            m.completed.get() + m.timed_out.get() + m.failed.get() + m.drained.get()
        );
    }

    #[test]
    fn deadline_job_times_out_without_poisoning_the_pool() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let mut doomed = JobSpec::new(Algorithm::Seq, "gen:dalu@0.3");
        doomed.deadline = Some(Duration::from_millis(1));
        let t1 = client.submit(doomed).expect("accepted");
        let t2 = client.submit(small(Algorithm::Seq)).expect("accepted");
        assert!(matches!(t1.wait(), JobOutcome::TimedOut(_)));
        // The same (only) worker still serves the next job.
        assert!(matches!(t2.wait(), JobOutcome::Completed(_)));
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.timed_out.get(), 1);
        assert_eq!(m.completed.get(), 1);
    }

    #[test]
    fn invalid_spec_is_rejected_at_the_door() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let bad = JobSpec::new(Algorithm::Seq, "not-a-workload");
        assert!(matches!(client.submit(bad), Err(Rejection::Invalid(_))));
        let ok = client.submit(small(Algorithm::Seq)).expect("accepted");
        assert!(matches!(ok.wait(), JobOutcome::Completed(_)));
        service.shutdown();
        assert!(client.metrics().balanced());
    }

    /// Suppresses the default panic hook's stderr spew for injected
    /// panics; everything else still prints.
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("fault injected"))
                    .unwrap_or(false);
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn worker_fatal_job_is_answered_quarantined_and_the_pool_heals() {
        quiet_injected_panics();
        // Every pickup of this fingerprint panics *outside* the worker's
        // catch — the thread dies — but only twice (the threshold).
        let plan = FaultPlan::new(7)
            .with_rule(FaultRule::panic_at("serve:pickup:seq/gen:misex3@0.05").max_hits(2));
        let service = Service::start(ServiceConfig {
            workers: 2,
            fault_plan: Some(Arc::new(plan)),
            ..ServiceConfig::default()
        });
        let client = service.client();
        for _ in 0..2 {
            let t = client.submit(small(Algorithm::Seq)).expect("accepted");
            match t.wait() {
                JobOutcome::Failed { message } => assert!(message.contains("died")),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // Third submission is refused at the door.
        match client.submit(small(Algorithm::Seq)) {
            Err(Rejection::Quarantined { strikes }) => assert_eq!(strikes, 2),
            other => panic!("unexpected {other:?}"),
        }
        // A different fingerprint still completes on the healed pool.
        let t = client
            .submit(small(Algorithm::Independent))
            .expect("accepted");
        assert!(matches!(t.wait(), JobOutcome::Completed(_)));
        // The queue is still open, so the supervisor heals both deaths;
        // give it a bounded moment before asserting.
        let deadline = Instant::now() + Duration::from_secs(5);
        while client.metrics().respawns.get() < 2 {
            assert!(
                Instant::now() < deadline,
                "supervisor never healed the pool"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.panics.get(), 2);
        assert_eq!(m.failed.get(), 2);
        assert_eq!(m.quarantined.get(), 1);
    }

    #[test]
    fn caught_panic_strikes_without_killing_the_worker() {
        // seq:cover fires *inside* the worker's catch: the job fails
        // structurally, the thread survives, no respawn is needed.
        let plan = FaultPlan::new(3).with_rule(FaultRule::panic_at("seq:cover").max_hits(2));
        let service = Service::start(ServiceConfig {
            workers: 1,
            fault_plan: Some(Arc::new(plan)),
            poison_threshold: 2,
            ..ServiceConfig::default()
        });
        let client = service.client();
        for _ in 0..2 {
            let t = client.submit(small(Algorithm::Seq)).expect("accepted");
            match t.wait() {
                JobOutcome::Failed { message } => assert!(message.contains("fault injected")),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(matches!(
            client.submit(small(Algorithm::Seq)),
            Err(Rejection::Quarantined { .. })
        ));
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.panics.get(), 2);
        assert_eq!(m.respawns.get(), 0, "caught panics keep the thread");
    }

    #[test]
    fn injected_cancel_reports_drained() {
        let plan = FaultPlan::new(11).with_rule(FaultRule::cancel_at("seq:cover").max_hits(1));
        let service = Service::start(ServiceConfig {
            workers: 1,
            fault_plan: Some(Arc::new(plan)),
            ..ServiceConfig::default()
        });
        let client = service.client();
        let t = client.submit(small(Algorithm::Seq)).expect("accepted");
        assert!(matches!(t.wait(), JobOutcome::Drained));
        service.shutdown();
        assert!(client.metrics().balanced());
    }

    #[test]
    fn submit_with_retry_rides_out_backpressure() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let policy = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(40),
            seed: 9,
        };
        let mut tickets = Vec::new();
        for _ in 0..8 {
            tickets.push(
                client
                    .submit_with_retry(small(Algorithm::Seq), &policy)
                    .expect("retry absorbs a capacity-1 queue"),
            );
        }
        for t in tickets {
            assert!(matches!(t.wait(), JobOutcome::Completed(_)));
        }
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.completed.get(), 8);
        // Backpressure definitely happened, and every bounce was retried.
        assert_eq!(m.retries.get(), m.rejected_full.get());
    }

    #[test]
    fn terminal_rejections_are_not_retried() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let policy = RetryPolicy::default();
        let bad = JobSpec::new(Algorithm::Seq, "not-a-workload");
        assert!(matches!(
            client.submit_with_retry(bad, &policy),
            Err(Rejection::Invalid(_))
        ));
        assert_eq!(client.metrics().retries.get(), 0);
        service.shutdown();
    }

    #[test]
    fn workers_alive_gauge_tracks_the_pool() {
        let service = Service::start(ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        });
        let client = service.client();
        // Spawned threads bump the gauge as they start.
        let deadline = Instant::now() + Duration::from_secs(5);
        while client.metrics().workers_alive.load(Ordering::Relaxed) < 3 {
            assert!(Instant::now() < deadline, "pool never reached strength");
            std::thread::sleep(Duration::from_millis(1));
        }
        service.shutdown();
        assert_eq!(client.metrics().workers_alive.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn timeline_ring_records_outcomes_and_is_bounded() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let tickets: Vec<_> = (0..3)
            .map(|_| client.submit(small(Algorithm::Seq)).expect("accepted"))
            .collect();
        let mut doomed = small(Algorithm::Replicated);
        doomed.deadline = Some(Duration::ZERO);
        let t_doomed = client.submit(doomed).expect("accepted");
        for t in tickets {
            t.wait();
        }
        t_doomed.wait();
        service.shutdown();

        // Asking for more than recorded returns everything, oldest first.
        let crate::json::Json::Arr(all) = client.trace_json(100) else {
            panic!("trace_json must be an array")
        };
        assert_eq!(all.len(), 4);
        for entry in &all[..3] {
            assert_eq!(
                entry.get("status").and_then(crate::json::Json::as_str),
                Some("completed")
            );
            // Completed entries carry the driver's phase breakdown.
            assert!(matches!(
                entry.get("phases"),
                Some(crate::json::Json::Obj(members)) if !members.is_empty()
            ));
        }
        assert_eq!(
            all[3].get("status").and_then(crate::json::Json::as_str),
            Some("timed_out")
        );
        // n clamps the window to the most recent entries.
        let crate::json::Json::Arr(last) = client.trace_json(2) else {
            panic!("trace_json must be an array")
        };
        assert_eq!(last.len(), 2);
        assert_eq!(
            last[1].get("algorithm").and_then(crate::json::Json::as_str),
            Some("replicated")
        );
    }

    #[test]
    fn queue_wait_is_measured() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let tickets: Vec<_> = (0..4)
            .map(|_| client.submit(small(Algorithm::Seq)).expect("accepted"))
            .collect();
        for t in tickets {
            t.wait();
        }
        service.shutdown();
        assert_eq!(client.metrics().queue_wait.count(), 4);
    }
}
