//! The resident service: bounded queue + worker pool + metrics +
//! graceful shutdown, behind an in-process [`Client`].
//!
//! Job lifecycle:
//!
//! ```text
//! submit ──► validated ──► queued ──► running ──► completed
//!    │            │           │          │      ├─► timed_out
//!    │            │           │          │      └─► failed (panic)
//!    │            │           └──────────┴─────────► drained (shutdown)
//!    └─► rejected (invalid)   └─► rejected (queue_full / shutting_down)
//! ```
//!
//! Every accepted job is answered exactly once; the metrics registry's
//! balance identity (see [`Metrics::balanced`]) is restored whenever the
//! service quiesces.

use crate::job::{ctl_for, validate_workload, JobOutcome, JobSpec, Rejection, ALGORITHMS};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::worker;
use parking_lot::Mutex;
use pf_core::RunCtl;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Service construction options.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded queue capacity (backpressure beyond this).
    pub queue_capacity: usize,
    /// Hard cap on per-job `procs`; jobs asking for more are clamped.
    /// Defaults to `std::thread::available_parallelism()`.
    pub max_procs: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_procs: default_max_procs(),
        }
    }
}

/// The host's available parallelism (1 if unknown).
pub fn default_max_procs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Validates a processor count against a cap: zero is a structured
/// error, oversized requests are clamped to the cap. Shared by the
/// service and the CLI so both speak the same rule.
pub fn validate_procs(procs: usize, max: usize) -> Result<usize, String> {
    if procs == 0 {
        return Err("procs must be at least 1".to_string());
    }
    Ok(procs.min(max.max(1)))
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    ctl: RunCtl,
    accepted_at: Instant,
    responder: mpsc::Sender<JobOutcome>,
}

struct Inner {
    queue: BoundedQueue<QueuedJob>,
    metrics: Metrics,
    /// RunCtl of every currently executing job, so `shutdown_now` can
    /// cancel in-flight work cooperatively.
    in_flight: Mutex<HashMap<u64, RunCtl>>,
    next_id: AtomicU64,
    max_procs: usize,
}

/// A handle to one submitted job; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The service-assigned job id (also echoed over the wire).
    pub id: u64,
    rx: mpsc::Receiver<JobOutcome>,
}

impl Ticket {
    /// Blocks until the job is answered.
    pub fn wait(self) -> JobOutcome {
        self.rx.recv().unwrap_or(JobOutcome::Failed {
            message: "service dropped the job".to_string(),
        })
    }

    /// Blocks up to `timeout`; `None` means still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// A cheap, clonable submission handle (the in-process API).
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// Validates and enqueues a job. Returns a [`Ticket`] on acceptance
    /// or a structured [`Rejection`] (backpressure, shutdown, or bad
    /// spec) — never blocks on a full queue.
    pub fn submit(&self, mut spec: JobSpec) -> Result<Ticket, Rejection> {
        let m = &self.inner.metrics;
        m.submitted.inc();
        if let Err(msg) = validate_workload(&spec.workload) {
            m.rejected_invalid.inc();
            return Err(Rejection::Invalid(msg));
        }
        match validate_procs(spec.procs, self.inner.max_procs) {
            Ok(procs) => spec.procs = procs,
            Err(msg) => {
                m.rejected_invalid.inc();
                return Err(Rejection::Invalid(msg));
            }
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let ctl = ctl_for(&spec);
        let (tx, rx) = mpsc::channel();
        let job = QueuedJob {
            id,
            spec,
            ctl,
            accepted_at: Instant::now(),
            responder: tx,
        };
        match self.inner.queue.push(job) {
            Ok(()) => {
                m.accepted.inc();
                Ok(Ticket { id, rx })
            }
            Err(PushError::Full { capacity }) => {
                m.rejected_full.inc();
                Err(Rejection::QueueFull { capacity })
            }
            Err(PushError::Closed) => {
                m.rejected_shutdown.inc();
                Err(Rejection::ShuttingDown)
            }
        }
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// The metrics registry (live counters).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// JSON snapshot of the registry plus the live queue depth.
    pub fn metrics_json(&self) -> crate::json::Json {
        self.inner.metrics.to_json(self.inner.queue.depth())
    }
}

/// The running service: owns the worker pool. Create with
/// [`Service::start`], submit through [`Service::client`], stop with
/// [`Service::shutdown`] (drain) or [`Service::shutdown_now`] (abort).
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Spawns the worker pool and returns the service handle.
    pub fn start(cfg: ServiceConfig) -> Service {
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(cfg.queue_capacity),
            metrics: Metrics::default(),
            in_flight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_procs: cfg.max_procs.max(1),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pf-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Service {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// An in-process submission handle.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Graceful shutdown: stop accepting, let the pool finish everything
    /// already accepted (queued *and* running), then join the workers.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        self.join_workers();
    }

    /// Abort-style shutdown: stop accepting, answer still-queued jobs as
    /// drained without running them, cooperatively cancel running jobs
    /// (they answer as drained at their next barrier point), then join.
    pub fn shutdown_now(&self) {
        self.inner.queue.close();
        for job in self.inner.queue.drain_now() {
            self.inner.metrics.drained.inc();
            let _ = job.responder.send(JobOutcome::Drained);
        }
        for ctl in self.inner.in_flight.lock().values() {
            ctl.cancel();
        }
        self.join_workers();
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Don't leak pool threads if the owner forgot to shut down.
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    let m = &inner.metrics;
    while let Some(job) = inner.queue.pop() {
        let queue_wait = job.accepted_at.elapsed();
        m.queue_wait.record(queue_wait);
        m.in_flight.fetch_add(1, Ordering::Relaxed);
        inner.in_flight.lock().insert(job.id, job.ctl.clone());

        let outcome = worker::execute(&job.spec, &job.ctl, queue_wait);

        inner.in_flight.lock().remove(&job.id);
        m.in_flight.fetch_sub(1, Ordering::Relaxed);
        match &outcome {
            JobOutcome::Completed(jr) => {
                m.completed.inc();
                let idx = ALGORITHMS
                    .iter()
                    .position(|a| *a == job.spec.algorithm)
                    .expect("algorithm is one of the four");
                let alg = &m.per_algorithm[idx];
                alg.runs.inc();
                alg.wall.record(jr.run_time);
                alg.literals_saved
                    .fetch_add(jr.report.saved() as i64, Ordering::Relaxed);
            }
            JobOutcome::TimedOut(_) => m.timed_out.inc(),
            JobOutcome::Drained => m.drained.inc(),
            JobOutcome::Failed { .. } => m.failed.inc(),
        }
        // A client that gave up (dropped the ticket) is fine.
        let _ = job.responder.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Algorithm;

    fn small(alg: Algorithm) -> JobSpec {
        JobSpec {
            procs: 2,
            ..JobSpec::new(alg, "gen:misex3@0.05")
        }
    }

    #[test]
    fn submit_and_complete_every_algorithm() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let tickets: Vec<_> = ALGORITHMS
            .iter()
            .map(|&alg| client.submit(small(alg)).expect("accepted"))
            .collect();
        for t in tickets {
            match t.wait() {
                JobOutcome::Completed(jr) => assert!(jr.report.lc_after <= jr.report.lc_before),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        service.shutdown();
        assert!(client.metrics().balanced());
        assert_eq!(client.metrics().completed.get(), 4);
    }

    #[test]
    fn zero_procs_is_an_invalid_spec() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let mut spec = small(Algorithm::Independent);
        spec.procs = 0;
        match client.submit(spec) {
            Err(Rejection::Invalid(msg)) => assert!(msg.contains("procs")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(client.metrics().rejected_invalid.get(), 1);
        service.shutdown();
        assert!(client.metrics().balanced());
    }

    #[test]
    fn oversized_procs_are_clamped_not_rejected() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let mut spec = small(Algorithm::Independent);
        spec.procs = 10_000;
        let t = client.submit(spec).expect("clamped, not rejected");
        assert!(matches!(t.wait(), JobOutcome::Completed(_)));
        service.shutdown();
    }

    #[test]
    fn queue_full_rejects_with_backpressure() {
        // One worker, capacity 1: the worker grabs one job, one sits
        // queued, the next submission must bounce.
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for _ in 0..12 {
            match client.submit(small(Algorithm::Seq)) {
                Ok(t) => accepted.push(t),
                Err(Rejection::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected > 0, "burst must overflow a capacity-1 queue");
        for t in accepted {
            t.wait();
        }
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.rejected_full.get(), rejected);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let tickets: Vec<_> = (0..6)
            .map(|_| client.submit(small(Algorithm::Seq)).expect("accepted"))
            .collect();
        // Graceful: everything accepted still completes.
        service.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), JobOutcome::Completed(_)));
        }
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.completed.get(), 6);
        assert_eq!(m.drained.get(), 0);
        // And new submissions bounce with the shutdown reason.
        assert!(matches!(
            client.submit(small(Algorithm::Seq)),
            Err(Rejection::ShuttingDown)
        ));
    }

    #[test]
    fn shutdown_now_drains_without_running() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 32,
            ..ServiceConfig::default()
        });
        let client = service.client();
        // Big enough that the backlog cannot clear before the abort.
        let tickets: Vec<_> = (0..8)
            .map(|_| {
                client
                    .submit(JobSpec {
                        procs: 2,
                        ..JobSpec::new(Algorithm::Lshaped, "gen:dalu@0.3")
                    })
                    .expect("accepted")
            })
            .collect();
        service.shutdown_now();
        let outcomes: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        assert!(
            outcomes.iter().any(|o| matches!(o, JobOutcome::Drained)),
            "most of the backlog is answered drained: {outcomes:?}"
        );
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(
            m.accepted.get(),
            m.completed.get() + m.timed_out.get() + m.failed.get() + m.drained.get()
        );
    }

    #[test]
    fn deadline_job_times_out_without_poisoning_the_pool() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let mut doomed = JobSpec::new(Algorithm::Seq, "gen:dalu@0.3");
        doomed.deadline = Some(Duration::from_millis(1));
        let t1 = client.submit(doomed).expect("accepted");
        let t2 = client.submit(small(Algorithm::Seq)).expect("accepted");
        assert!(matches!(t1.wait(), JobOutcome::TimedOut(_)));
        // The same (only) worker still serves the next job.
        assert!(matches!(t2.wait(), JobOutcome::Completed(_)));
        service.shutdown();
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.timed_out.get(), 1);
        assert_eq!(m.completed.get(), 1);
    }

    #[test]
    fn invalid_spec_is_rejected_at_the_door() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let bad = JobSpec::new(Algorithm::Seq, "not-a-workload");
        assert!(matches!(client.submit(bad), Err(Rejection::Invalid(_))));
        let ok = client.submit(small(Algorithm::Seq)).expect("accepted");
        assert!(matches!(ok.wait(), JobOutcome::Completed(_)));
        service.shutdown();
        assert!(client.metrics().balanced());
    }

    #[test]
    fn queue_wait_is_measured() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let client = service.client();
        let tickets: Vec<_> = (0..4)
            .map(|_| client.submit(small(Algorithm::Seq)).expect("accepted"))
            .collect();
        for t in tickets {
            t.wait();
        }
        service.shutdown();
        assert_eq!(client.metrics().queue_wait.count(), 4);
    }
}
