//! Worker-pool supervision: spawn, watch, respawn.
//!
//! The supervisor thread owns pool healing. Worker threads normally die
//! only when the queue closes and drains; any earlier death is a crash
//! (in practice: a fault-injected panic at the `serve:pickup` site,
//! which models a worker-fatal job). Three guarantees:
//!
//! 1. **Exactly one answer per accepted job.** A [`JobGuard`] is armed
//!    before anything that can unwind past the worker's catch; if the
//!    thread dies mid-job, the guard's `Drop` answers the job as
//!    [`JobOutcome::Failed`] and settles the metrics, so the balance
//!    identity survives the crash.
//! 2. **The pool heals.** Each worker holds an [`AliveGuard`]; its
//!    `Drop` wakes the supervisor, which reaps finished handles and
//!    respawns replacements until the queue is closed and empty.
//! 3. **Poison jobs are remembered.** Every panic — caught or
//!    worker-fatal — puts a strike on the job's fingerprint; once a
//!    fingerprint reaches the configured threshold, further submissions
//!    are rejected as `quarantined` (see [`Rejection::Quarantined`]).
//!
//! [`Rejection::Quarantined`]: crate::job::Rejection::Quarantined

use crate::error::ServeError;
use crate::job::{JobOutcome, JobTimeline};
use crate::service::{Inner, QueuedJob};
use crate::worker;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the supervisor re-checks the pool when nothing wakes it.
const TICK: Duration = Duration::from_millis(25);

/// Wake-up channel from dying workers (and shutdown) to the supervisor.
#[derive(Debug, Default)]
pub(crate) struct SupervisorSignal {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl SupervisorSignal {
    /// Wakes the supervisor out of its tick sleep.
    pub(crate) fn wake(&self) {
        *self.flag.lock() = true;
        self.cv.notify_all();
    }

    /// Sleeps until woken or `timeout` elapses, consuming the wake flag.
    fn wait(&self, timeout: Duration) {
        let mut woken = self.flag.lock();
        if !*woken {
            let _ = self.cv.wait_for(&mut woken, timeout);
        }
        *woken = false;
    }
}

/// Decrements the `workers_alive` gauge and wakes the supervisor when a
/// worker thread exits — normally *or* by panic.
struct AliveGuard<'a> {
    inner: &'a Inner,
}

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.inner
            .metrics
            .workers_alive
            .fetch_sub(1, Ordering::Relaxed);
        self.inner.sup.wake();
    }
}

/// Answers the in-flight job as `Failed` if the worker thread unwinds
/// before `disarm` — the crash equivalent of the normal response path.
struct JobGuard<'a> {
    inner: &'a Inner,
    id: u64,
    fingerprint: String,
    poison_key: pf_kcmatrix::Digest,
    responder: mpsc::Sender<JobOutcome>,
    armed: bool,
}

impl<'a> JobGuard<'a> {
    fn arm(inner: &'a Inner, job: &QueuedJob) -> Self {
        JobGuard {
            inner,
            id: job.id,
            fingerprint: job.spec.fingerprint(),
            poison_key: job.spec.poison_key(),
            responder: job.responder.clone(),
            armed: true,
        }
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let m = &self.inner.metrics;
        m.panics.inc();
        m.failed.inc();
        self.inner.strike(self.poison_key);
        self.inner.in_flight.lock().remove(&self.id);
        m.in_flight.fetch_sub(1, Ordering::Relaxed);
        let _ = self.responder.send(JobOutcome::Failed {
            message: format!("worker thread died running {}", self.fingerprint),
        });
    }
}

/// Spawns one pool worker. `idx` only names the thread.
pub(crate) fn spawn_worker(inner: &Arc<Inner>, idx: usize) -> Result<JoinHandle<()>, ServeError> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("pf-serve-worker-{idx}"))
        .spawn(move || {
            inner.metrics.workers_alive.fetch_add(1, Ordering::Relaxed);
            let _alive = AliveGuard { inner: &inner };
            worker_loop(&inner);
        })
        .map_err(|source| ServeError::Spawn {
            what: "worker",
            source,
        })
}

/// Tracks this worker thread's resident [`pf_core::SearchPool`] and
/// mirrors its background-thread count into the `search_pool_threads`
/// gauge. The `Drop` impl settles the gauge even when the worker thread
/// dies (the pool itself joins its threads on drop).
struct PoolSlot<'a> {
    pool: Option<pf_core::SearchPool>,
    reported: i64,
    metrics: &'a crate::metrics::Metrics,
}

impl PoolSlot<'_> {
    fn sync_gauge(&mut self) {
        let now = self.pool.as_ref().map_or(0, |p| p.bg_threads() as i64);
        self.metrics
            .search_pool_threads
            .fetch_add(now - self.reported, Ordering::Relaxed);
        self.reported = now;
    }
}

impl Drop for PoolSlot<'_> {
    fn drop(&mut self) {
        self.metrics
            .search_pool_threads
            .fetch_sub(self.reported, Ordering::Relaxed);
    }
}

/// The worker body: pop, run, answer, repeat until the queue closes.
fn worker_loop(inner: &Inner) {
    let m = &inner.metrics;
    // One search pool per worker thread, resident across jobs: pooled
    // Seq jobs adopt it (warm threads, retained scratch) and hand it
    // back; the gauge tracks its parked background threads.
    let mut slot = PoolSlot {
        pool: None,
        reported: 0,
        metrics: m,
    };
    while let Some(job) = inner.queue.pop() {
        let queue_wait = job.accepted_at.elapsed();
        m.queue_wait.record(queue_wait);
        m.in_flight.fetch_add(1, Ordering::Relaxed);
        inner.in_flight.lock().insert(job.id, job.ctl.clone());

        let mut guard = JobGuard::arm(inner, &job);
        // Scoped injection site, *outside* the catch below: a `panic`
        // rule here kills the worker thread itself, which is how the
        // chaos tests model a worker-fatal job. Composed only when a
        // plan is attached, so the production path stays allocation-free.
        if job.ctl.has_faults() {
            job.ctl
                .fault_point(&format!("serve:pickup:{}", job.spec.fingerprint()));
        }
        // A fingerprint with any strikes on record may still run (it is
        // quarantined only at the threshold), but its results are never
        // admitted to the cache: a job that panicked once cannot seed
        // entries future submissions would trust.
        let cache_ctx = inner.cache.as_deref().map(|cache| worker::CacheCtx {
            cache,
            admit: inner.strikes(job.spec.poison_key()) == 0,
        });
        let (outcome, panicked, cache_out) = worker::execute_tracked(
            &job.spec,
            &job.ctl,
            queue_wait,
            &mut slot.pool,
            cache_ctx.as_ref(),
        );
        slot.sync_gauge();
        guard.disarm();

        if panicked {
            m.panics.inc();
            inner.strike(job.spec.poison_key());
        }
        m.cache_lookups.add(cache_out.events.lookups);
        m.cache_hits.add(cache_out.events.hits);
        m.cache_misses.add(cache_out.events.misses);
        m.cache_evictions.add(cache_out.events.evicted);
        m.cache_warm.add(cache_out.events.warm);
        if cache_out.delta {
            m.delta_jobs.inc();
        }
        inner.in_flight.lock().remove(&job.id);
        m.in_flight.fetch_sub(1, Ordering::Relaxed);
        match &outcome {
            JobOutcome::Completed(jr) => {
                m.completed.inc();
                let alg = &m.per_algorithm[job.spec.algorithm.index()];
                alg.runs.inc();
                alg.wall.record(jr.run_time);
                alg.literals_saved
                    .fetch_add(jr.report.saved() as i64, Ordering::Relaxed);
                for p in &jr.report.phases {
                    alg.record_phase(p.name, p.elapsed);
                }
            }
            JobOutcome::TimedOut(_) => m.timed_out.inc(),
            JobOutcome::Drained => m.drained.inc(),
            JobOutcome::Failed { .. } => m.failed.inc(),
        }
        inner.record_timeline(timeline_for(&job, queue_wait, &outcome));
        // A client that gave up (dropped the ticket) is fine.
        let _ = job.responder.send(outcome);
    }
}

/// Builds the `trace`-verb timeline entry for a finished job. Jobs that
/// produced a report (completed / timed out) carry its phase breakdown;
/// drained and failed jobs keep an empty one.
fn timeline_for(job: &QueuedJob, queue_wait: Duration, outcome: &JobOutcome) -> JobTimeline {
    let (run_time, phases) = match outcome {
        JobOutcome::Completed(jr) | JobOutcome::TimedOut(jr) => (
            jr.run_time,
            jr.report
                .phases
                .iter()
                .map(|p| (p.name, p.elapsed))
                .collect(),
        ),
        JobOutcome::Drained | JobOutcome::Failed { .. } => (Duration::ZERO, Vec::new()),
    };
    JobTimeline {
        id: job.id,
        algorithm: job.spec.algorithm,
        workload: job.spec.workload.clone(),
        status: outcome.status(),
        queue_wait,
        run_time,
        phases,
    }
}

/// The supervisor body: reap finished workers, respawn while there is
/// (or may yet be) work, exit once the queue is closed+empty and every
/// worker has been joined.
pub(crate) fn supervisor_loop(inner: &Arc<Inner>, pool: &Mutex<Vec<JoinHandle<()>>>) {
    let mut next_idx = inner.desired_workers;
    loop {
        // Reap outside the lock so a stuck join can't block shutdown's
        // own pool access.
        let finished: Vec<JoinHandle<()>> = {
            let mut p = pool.lock();
            let mut reaped = Vec::new();
            let mut i = 0;
            while i < p.len() {
                if p[i].is_finished() {
                    reaped.push(p.remove(i));
                } else {
                    i += 1;
                }
            }
            reaped
        };
        for h in finished {
            let _ = h.join();
        }

        let done = inner.queue.is_closed() && inner.queue.depth() == 0;
        if done {
            if pool.lock().is_empty() {
                return;
            }
        } else {
            // Heal the pool back to configured strength.
            while pool.lock().len() < inner.desired_workers {
                match spawn_worker(inner, next_idx) {
                    Ok(h) => {
                        next_idx += 1;
                        inner.metrics.respawns.inc();
                        pool.lock().push(h);
                    }
                    Err(e) => {
                        // Degraded but alive: try again next tick.
                        eprintln!("pf-serve: supervisor: {e}");
                        break;
                    }
                }
            }
        }
        inner.sup.wait(TICK);
    }
}
