//! Job types: what a client submits and what it gets back.

use crate::json::Json;
use pf_core::{ExtractReport, RunCtl};
use pf_kcmatrix::{Digest, DigestBuilder};
use pf_network::Network;
use std::time::Duration;

/// Which extraction driver a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential baseline (SIS `gkx` equivalent).
    Seq,
    /// Algorithm R — replicated circuit, striped search.
    Replicated,
    /// Algorithm I — independent partitions.
    Independent,
    /// Algorithm L — L-shaped partitioning with interactions.
    Lshaped,
}

/// All algorithms, in wire order.
pub const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Seq,
    Algorithm::Replicated,
    Algorithm::Independent,
    Algorithm::Lshaped,
];

impl Algorithm {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Algorithm::Seq => "seq",
            Algorithm::Replicated => "replicated",
            Algorithm::Independent => "independent",
            Algorithm::Lshaped => "lshaped",
        }
    }

    /// Index into [`ALGORITHMS`] (and the per-algorithm metrics array).
    pub fn index(self) -> usize {
        match self {
            Algorithm::Seq => 0,
            Algorithm::Replicated => 1,
            Algorithm::Independent => 2,
            Algorithm::Lshaped => 3,
        }
    }

    /// Parses a wire name.
    pub fn from_wire(name: &str) -> Option<Self> {
        match name {
            "seq" => Some(Algorithm::Seq),
            "replicated" => Some(Algorithm::Replicated),
            "independent" => Some(Algorithm::Independent),
            "lshaped" => Some(Algorithm::Lshaped),
            _ => None,
        }
    }
}

/// A factorization job as submitted.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Which driver to run.
    pub algorithm: Algorithm,
    /// Workload spec: `gen:<profile>[@scale]` (synthetic circuit) — the
    /// same grammar the CLI input accepts.
    pub workload: String,
    /// Processors / partitions for the parallel drivers (ignored by
    /// `seq`). Validated against the host's parallelism at submit time.
    pub procs: usize,
    /// Intra-matrix rectangle-search threads per driver worker
    /// (`SearchConfig::par_threads`). `0` keeps the classic sequential
    /// search. Clamped to the host's parallelism at submit time.
    pub par_threads: usize,
    /// Rectangles collected per search pass (`SearchConfig::topk`).
    /// `1` keeps the classic one-rectangle-per-pass engine; larger
    /// values enable conflict-aware batching. Result-affecting, unlike
    /// `par_threads`, so it participates in the cache key.
    pub batch_rects: usize,
    /// Tile width in u64 words for the cache-blocked rectangle-search
    /// kernel (`SearchConfig::tile_width`). `0` keeps the scalar
    /// intersection loop. Result-invariant like `par_threads` (the
    /// tiled kernel is byte-identical by construction), so it does NOT
    /// participate in the cache key.
    pub tile_width: usize,
    /// Per-job deadline; expiry (including time spent queued) turns the
    /// job into a structured timeout response.
    pub deadline: Option<Duration>,
    /// Delta submission: the [`JobSpec::fingerprint`] of a previously
    /// completed (and cached) base job this workload is a revision of.
    /// The worker re-extracts only the cones that differ from the base
    /// and splices the base's cached factored cones for the rest.
    /// `seq` only; `None` is a plain full submission.
    pub delta_from: Option<String>,
}

impl JobSpec {
    /// A seq job for `workload` with service defaults elsewhere.
    pub fn new(algorithm: Algorithm, workload: impl Into<String>) -> Self {
        JobSpec {
            algorithm,
            workload: workload.into(),
            procs: 2,
            par_threads: 0,
            batch_rects: 1,
            tile_width: 0,
            deadline: None,
            delta_from: None,
        }
    }

    /// The job's poison-tracking identity: what it *computes*
    /// (algorithm + workload), not how (procs/deadline). Two specs with
    /// the same fingerprint crash workers the same way, which is what
    /// quarantine keys on. Human-readable — used in failure messages and
    /// fault-site names; [`JobSpec::poison_key`] is the keyed form.
    pub fn fingerprint(&self) -> String {
        format!("{}/{}", self.algorithm.as_str(), self.workload)
    }

    /// The fingerprint as a canonical [`Digest`] — the *one* keying
    /// implementation shared by the quarantine map, the extraction
    /// cache, and any future shard routing, so the three can never
    /// disagree about job identity.
    pub fn poison_key(&self) -> Digest {
        fingerprint_digest(self.algorithm, &self.workload)
    }

    /// The result-affecting execution parameters of this spec, as a
    /// digest. Combined with the resolved network's content digest this
    /// forms the exact-hit cache key: algorithm always matters, `procs`
    /// only for the parallel drivers (`seq` ignores it), and
    /// `par_threads` / `tile_width` / `deadline` are result-invariant
    /// per the repo's determinism tests (a timed-out run is never
    /// admitted anyway).
    /// `batch_rects` *is* result-affecting (batched extraction may pick
    /// a slightly different cover), so any K > 1 gets its own key —
    /// keyed only when > 1 so existing K=1 cache entries stay valid.
    pub fn cache_param_digest(&self) -> Digest {
        let mut b = DigestBuilder::new();
        b.write_str("cache-key");
        b.write_str(self.algorithm.as_str());
        if self.algorithm != Algorithm::Seq {
            b.write_u64(self.procs as u64);
        }
        if self.batch_rects > 1 {
            b.write_str("batch-rects");
            b.write_u64(self.batch_rects as u64);
        }
        b.finish()
    }
}

/// [`JobSpec::poison_key`] for an (algorithm, workload) pair — exposed
/// so `delta_from` fingerprints can be resolved to the base job's keys
/// without constructing a full spec.
pub fn fingerprint_digest(algorithm: Algorithm, workload: &str) -> Digest {
    let mut b = DigestBuilder::new();
    b.write_str("job-fingerprint");
    b.write_str(algorithm.as_str());
    b.write_str(workload);
    b.finish()
}

/// Why a submission was turned away at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is at capacity: backpressure.
    QueueFull {
        /// Configured capacity the queue was at.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The spec itself is invalid (bad algorithm, bad workload grammar,
    /// bad procs).
    Invalid(String),
    /// This job's fingerprint has killed worker threads (or panicked)
    /// repeatedly; the service refuses to run it again.
    Quarantined {
        /// How many worker-fatal runs the fingerprint has on record.
        strikes: u32,
    },
}

impl Rejection {
    /// Stable machine-readable reason.
    pub fn reason(&self) -> &'static str {
        match self {
            Rejection::QueueFull { .. } => "queue_full",
            Rejection::ShuttingDown => "shutting_down",
            Rejection::Invalid(_) => "invalid",
            Rejection::Quarantined { .. } => "quarantined",
        }
    }

    /// Whether a client should retry this rejection (with backoff).
    /// Only backpressure is retryable; the other reasons are terminal.
    pub fn retryable(&self) -> bool {
        matches!(self, Rejection::QueueFull { .. })
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::ShuttingDown => write!(f, "service is shutting down"),
            Rejection::Invalid(msg) => write!(f, "invalid job: {msg}"),
            Rejection::Quarantined { strikes } => {
                write!(f, "job quarantined after {strikes} worker-fatal runs")
            }
        }
    }
}

/// How a job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed(JobReport),
    /// Stopped at the deadline; partial results are in the report.
    TimedOut(JobReport),
    /// Cancelled by shutdown before (or while) running.
    Drained,
    /// The worker panicked running the job; the pool survives.
    Failed {
        /// Panic payload rendered to text.
        message: String,
    },
}

impl JobOutcome {
    /// Stable machine-readable status.
    pub fn status(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "completed",
            JobOutcome::TimedOut(_) => "timed_out",
            JobOutcome::Drained => "drained",
            JobOutcome::Failed { .. } => "failed",
        }
    }
}

/// Per-job measurements returned with every completed (or timed-out)
/// job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The extraction report of the run.
    pub report: ExtractReport,
    /// Time the job sat in the queue before a worker picked it up.
    pub queue_wait: Duration,
    /// Wall-clock of the run itself (workload generation + extraction).
    pub run_time: Duration,
}

impl JobReport {
    /// Renders the per-job metrics object for a wire response.
    pub fn to_json(&self) -> Json {
        let r = &self.report;
        Json::obj([
            ("lc_before", Json::u64(r.lc_before as u64)),
            ("lc_after", Json::u64(r.lc_after as u64)),
            ("saved", Json::num(r.saved() as f64)),
            ("extractions", Json::u64(r.extractions as u64)),
            (
                "queue_wait_us",
                Json::u64(self.queue_wait.as_micros() as u64),
            ),
            ("run_us", Json::u64(self.run_time.as_micros() as u64)),
            (
                "phases",
                Json::Obj(
                    r.phases
                        .iter()
                        .map(|p| (p.name.to_string(), Json::u64(p.elapsed.as_micros() as u64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One finished job's timeline entry, kept in the service's last-N ring
/// and returned by the `trace` wire verb: who ran, how it ended, and
/// where the time went (the driver's per-phase breakdown).
#[derive(Clone, Debug)]
pub struct JobTimeline {
    /// Service-assigned job id.
    pub id: u64,
    /// Which driver ran.
    pub algorithm: Algorithm,
    /// The workload spec as submitted.
    pub workload: String,
    /// Outcome status (`completed` / `timed_out` / `drained` / `failed`).
    pub status: &'static str,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Wall-clock of the run (zero for jobs that never ran).
    pub run_time: Duration,
    /// The driver's phase breakdown, in execution order (empty for jobs
    /// that never produced a report).
    pub phases: Vec<(&'static str, Duration)>,
}

impl JobTimeline {
    /// Renders one timeline entry for the `trace` response.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::u64(self.id)),
            ("algorithm", Json::str(self.algorithm.as_str())),
            ("workload", Json::str(self.workload.clone())),
            ("status", Json::str(self.status)),
            (
                "queue_wait_us",
                Json::u64(self.queue_wait.as_micros() as u64),
            ),
            ("run_us", Json::u64(self.run_time.as_micros() as u64)),
            (
                "phases",
                Json::Obj(
                    self.phases
                        .iter()
                        .map(|(n, d)| (n.to_string(), Json::u64(d.as_micros() as u64)))
                        .collect(),
                ),
            ),
        ])
    }
}

fn parse_workload(spec: &str) -> Result<(pf_workloads::CircuitProfile, f64), String> {
    let Some(genspec) = spec.strip_prefix("gen:") else {
        return Err(format!(
            "workload {spec:?} not recognized (expected gen:<profile>[@scale])"
        ));
    };
    let (name, scale) = match genspec.split_once('@') {
        Some((n, s)) => (n, s.parse::<f64>().map_err(|_| format!("bad scale {s:?}"))?),
        None => (genspec, 0.25),
    };
    if !(scale > 0.0 && scale <= 4.0) {
        return Err(format!("scale {scale} out of range (0, 4]"));
    }
    let profile =
        pf_workloads::profile_by_name(name).ok_or_else(|| format!("unknown profile {name:?}"))?;
    Ok((profile, scale))
}

/// Checks the workload grammar without generating the circuit — cheap
/// enough to run at submit time, so bad specs are rejected at the door
/// instead of wasting a worker.
pub fn validate_workload(spec: &str) -> Result<(), String> {
    parse_workload(spec).map(|_| ())
}

/// Resolves a workload spec into a circuit. `gen:<profile>[@scale]`
/// generates a synthetic circuit; anything else is an error (the service
/// does not read files on behalf of remote clients).
pub fn resolve_workload(spec: &str) -> Result<Network, String> {
    let (profile, scale) = parse_workload(spec)?;
    Ok(pf_workloads::generate(&pf_workloads::scale_profile(
        &profile, scale,
    )))
}

/// Builds the shared stop-control handle for a job: deadline if the spec
/// has one, plain (cancel-only) otherwise.
pub fn ctl_for(spec: &JobSpec) -> RunCtl {
    match spec.deadline {
        Some(d) => RunCtl::with_deadline(d),
        None => RunCtl::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_round_trip() {
        for alg in ALGORITHMS {
            assert_eq!(Algorithm::from_wire(alg.as_str()), Some(alg));
        }
        assert_eq!(Algorithm::from_wire("nonsense"), None);
    }

    #[test]
    fn algorithm_index_matches_wire_order() {
        for (i, alg) in ALGORITHMS.iter().enumerate() {
            assert_eq!(alg.index(), i);
        }
    }

    #[test]
    fn fingerprint_ignores_procs_and_deadline() {
        let mut a = JobSpec::new(Algorithm::Lshaped, "gen:dalu@0.2");
        let mut b = a.clone();
        a.procs = 2;
        b.procs = 8;
        b.deadline = Some(Duration::from_secs(1));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), "lshaped/gen:dalu@0.2");
        assert_ne!(
            a.fingerprint(),
            JobSpec::new(Algorithm::Seq, "gen:dalu@0.2").fingerprint()
        );
    }

    #[test]
    fn poison_key_is_the_shared_fingerprint_digest() {
        let mut a = JobSpec::new(Algorithm::Lshaped, "gen:dalu@0.2");
        let mut b = a.clone();
        a.procs = 2;
        b.procs = 8;
        b.deadline = Some(Duration::from_secs(1));
        assert_eq!(a.poison_key(), b.poison_key());
        assert_eq!(
            a.poison_key(),
            fingerprint_digest(Algorithm::Lshaped, "gen:dalu@0.2")
        );
        assert_ne!(
            a.poison_key(),
            fingerprint_digest(Algorithm::Seq, "gen:dalu@0.2")
        );
    }

    #[test]
    fn cache_params_track_procs_only_for_parallel_drivers() {
        let mut seq = JobSpec::new(Algorithm::Seq, "gen:dalu@0.2");
        let mut seq8 = seq.clone();
        seq.procs = 2;
        seq8.procs = 8;
        assert_eq!(seq.cache_param_digest(), seq8.cache_param_digest());
        let mut rep = JobSpec::new(Algorithm::Replicated, "gen:dalu@0.2");
        let mut rep8 = rep.clone();
        rep.procs = 2;
        rep8.procs = 8;
        assert_ne!(rep.cache_param_digest(), rep8.cache_param_digest());
        assert_ne!(seq.cache_param_digest(), rep.cache_param_digest());
    }

    #[test]
    fn cache_params_track_batch_rects_for_every_driver() {
        // K=1 must hash like a spec that predates the field (cache
        // entries from classic runs stay valid); any K>1 is its own key.
        for alg in ALGORITHMS {
            let classic = JobSpec::new(alg, "gen:dalu@0.2");
            let mut k1 = classic.clone();
            k1.batch_rects = 1;
            assert_eq!(classic.cache_param_digest(), k1.cache_param_digest());
            let mut k4 = classic.clone();
            k4.batch_rects = 4;
            let mut k16 = classic.clone();
            k16.batch_rects = 16;
            assert_ne!(classic.cache_param_digest(), k4.cache_param_digest());
            assert_ne!(k4.cache_param_digest(), k16.cache_param_digest());
            // Fingerprint (poison identity) still ignores it.
            assert_eq!(classic.fingerprint(), k16.fingerprint());
        }
    }

    #[test]
    fn only_backpressure_is_retryable() {
        assert!(Rejection::QueueFull { capacity: 4 }.retryable());
        for terminal in [
            Rejection::ShuttingDown,
            Rejection::Invalid("x".into()),
            Rejection::Quarantined { strikes: 2 },
        ] {
            assert!(!terminal.retryable(), "{terminal:?}");
        }
        assert_eq!(
            Rejection::Quarantined { strikes: 2 }.reason(),
            "quarantined"
        );
    }

    #[test]
    fn workload_resolution() {
        let nw = resolve_workload("gen:misex3@0.05").unwrap();
        assert!(nw.literal_count() > 0);
        assert!(resolve_workload("gen:nosuch@0.1").is_err());
        assert!(resolve_workload("file.blif").is_err());
        assert!(resolve_workload("gen:misex3@0").is_err());
        assert!(resolve_workload("gen:misex3@nan").is_err());
    }

    #[test]
    fn job_report_json_has_the_metrics_keys() {
        let jr = JobReport {
            report: ExtractReport {
                lc_before: 100,
                lc_after: 80,
                extractions: 4,
                ..Default::default()
            },
            queue_wait: Duration::from_micros(120),
            run_time: Duration::from_millis(3),
        };
        let j = jr.to_json();
        assert_eq!(j.get("saved").and_then(Json::as_f64), Some(20.0));
        assert_eq!(j.get("queue_wait_us").and_then(Json::as_u64), Some(120));
        assert_eq!(j.get("run_us").and_then(Json::as_u64), Some(3000));
        assert!(j.get("phases").is_some());
    }

    #[test]
    fn ctl_for_respects_deadline() {
        let mut spec = JobSpec::new(Algorithm::Seq, "gen:misex3@0.05");
        assert!(ctl_for(&spec).deadline().is_none());
        spec.deadline = Some(Duration::ZERO);
        assert!(ctl_for(&spec).deadline_expired());
    }
}
