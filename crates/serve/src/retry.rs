//! Retry with exponential backoff and deterministic jitter for
//! backpressure rejections.
//!
//! Three failure classes deserve a backed-off retry, because each means
//! "healthy but momentarily saturated (or restarting)":
//!
//! * the `queue_full` rejection ([`crate::job::Rejection::retryable`],
//!   honored by `Client::submit_with_retry`);
//! * the accept gate's `overloaded` rejection line (wire clients only —
//!   the in-process client never crosses the accept gate; `parafactor
//!   submit` retries it alongside `queue_full`);
//! * transient connect/read I/O errors — refused/reset/aborted/timed-out
//!   connections ([`crate::server::transient_io`], honored by
//!   [`crate::server::request_lines_with_retry`] and the distributed
//!   driver's remote transport).
//!
//! `invalid`, `quarantined`, and `shutting_down` are terminal —
//! retrying them is wasted load (see the retry-semantics table in
//! `docs/SERVICE.md`).
//!
//! Jitter is *equal jitter* (half fixed, half random) drawn from a
//! seeded splitmix64 stream, so a fleet of clients with distinct seeds
//! decorrelates while every individual schedule stays reproducible.

use std::time::Duration;

/// Backoff schedule for retrying `queue_full` rejections.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First backoff step; doubles each retry.
    pub base: Duration,
    /// Ceiling on any single backoff step (pre-jitter).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry number `attempt` (0-based): exponential
    /// (`base · 2^attempt`), capped, with equal jitter — the result is
    /// uniformly in `[step/2, step]`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let step = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.cap);
        let half = step / 2;
        let r = splitmix64(self.seed ^ (u64::from(attempt) << 32) ^ 0x9e37);
        let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
        half + Duration::from_secs_f64(half.as_secs_f64() * frac)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let p = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(8),
            cap: Duration::from_secs(1),
            seed: 42,
        };
        for attempt in 0..6u32 {
            let step = Duration::from_millis(8 * (1 << attempt)).min(p.cap);
            let b = p.backoff(attempt);
            assert!(b >= step / 2, "attempt {attempt}: {b:?} < {:?}", step / 2);
            assert!(b <= step, "attempt {attempt}: {b:?} > {step:?}");
        }
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let p = RetryPolicy {
            cap: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        // Far past the cap — and immune to shift overflow.
        assert!(p.backoff(40) <= Duration::from_millis(50));
        assert_eq!(p.backoff(3), p.backoff(3));
        // Different seeds decorrelate the jitter.
        let q = RetryPolicy {
            seed: 7,
            ..p.clone()
        };
        assert_ne!(p.backoff(3), q.backoff(3));
    }
}
