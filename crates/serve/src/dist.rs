//! Distributed extraction over the JSON-lines wire.
//!
//! This module turns `pf-core`'s transport-agnostic distributed driver
//! ([`pf_core::distributed_extract`]) into a networked system built from
//! the pieces the service already has:
//!
//! * **Worker mode** — a server started with [`ServerConfig::worker`]
//!   (`parafactor serve --worker`) answers the `sub` op: one leased
//!   sub-job in, one result line out. The worker is stateless between
//!   sub-jobs; everything it needs (network snapshot, target set, lease
//!   id) rides in the request, so any worker can run any lease and a
//!   failed worker can be replaced by re-dispatching the same line
//!   elsewhere.
//! * **Coordinator** — the `dist` op partitions a workload and drives
//!   the leases either over in-process workers ([`LocalTransport`]) or
//!   over TCP peers ([`RemoteTransport`]), folding the lease statistics
//!   into the metrics registry (`leases_issued`, `failovers`, … — see
//!   `docs/OBSERVABILITY.md`).
//!
//! ## Wire codec
//!
//! Functions cross the wire **by name**, not by id: each sub-result
//! encodes an SOP as an array of cubes, each cube an array of literal
//! strings (`"n42"` or `"!n42"`). Names are stable between the
//! coordinator's snapshot and the worker's parsed copy (the network
//! text round-trips through `pf_network::io`), while raw ids are not
//! guaranteed to be — and a name-keyed diff lets the coordinator assign
//! its own private id block per lease, which is what keeps duplicated
//! and re-dispatched leases collision-free in the merge.
//!
//! Remote workers do not stream heartbeats: the dispatch connection is
//! synchronous (one request line, one response line), so liveness is
//! the connection itself. Lease timeouts for remote runs should budget
//! the full sub-job, not a heartbeat interval.

use crate::json::{parse, Json};
use crate::retry::RetryPolicy;
use crate::server::transient_io;
use crate::service::Client;
use pf_core::merge::{NewNode, WorkerResult};
use pf_core::seq::ExtractConfig;
use pf_core::{
    block_base_for, execute_sub_job, DistConfig, DistEvent, DistStats, DistTransport, FaultPlan,
    LocalTransport, SubJob, SubKind,
};
use pf_network::io::{read_network, write_network};
use pf_network::SignalId;
use pf_sop::fx::FxHashMap;
use pf_sop::{Cube, Lit, Sop, Var};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

/// Encodes one SOP as nested JSON arrays of literal names.
fn sop_to_json(f: &Sop, name_of: &dyn Fn(u32) -> String) -> Json {
    Json::Arr(
        f.iter()
            .map(|cube| {
                Json::Arr(
                    cube.iter()
                        .map(|l| {
                            let name = name_of(l.var().index());
                            Json::Str(if l.is_negated() {
                                format!("!{name}")
                            } else {
                                name
                            })
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Decodes [`sop_to_json`]'s format back through a name → id resolver.
fn sop_from_json(v: &Json, id_of: &dyn Fn(&str) -> Result<u32, String>) -> Result<Sop, String> {
    let Json::Arr(cubes) = v else {
        return Err("function must be an array of cubes".into());
    };
    let mut out = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let Json::Arr(lits) = cube else {
            return Err("cube must be an array of literal strings".into());
        };
        let mut parsed = Vec::with_capacity(lits.len());
        for lit in lits {
            let s = lit.as_str().ok_or("literal must be a string")?;
            let (neg, name) = match s.strip_prefix('!') {
                Some(rest) => (true, rest),
                None => (false, s),
            };
            parsed.push(Lit::new(Var::new(id_of(name)?), neg));
        }
        out.push(Cube::from_lits(parsed));
    }
    Ok(Sop::from_cubes(out))
}

/// Builds the `sub` request line for a lease. `faults` optionally
/// forwards a fault-plan spec + seed so chaos tests can arm the worker's
/// execution checkpoints remotely.
pub fn encode_sub_request(job: &SubJob, faults: Option<(&str, u64)>) -> Json {
    let mut members = vec![
        ("op".to_string(), Json::str("sub")),
        ("lease".to_string(), Json::u64(job.lease)),
        ("kind".to_string(), Json::str(job.kind.as_str())),
        ("network".to_string(), Json::str(write_network(&job.base))),
        (
            "targets".to_string(),
            Json::Arr(
                job.targets
                    .iter()
                    .map(|&t| Json::str(job.base.name(t)))
                    .collect(),
            ),
        ),
    ];
    if job.extract.search.topk > 1 {
        members.push((
            "batch_rects".to_string(),
            Json::u64(job.extract.search.topk as u64),
        ));
    }
    if job.extract.search.tile_width > 0 {
        members.push((
            "tile_width".to_string(),
            Json::u64(job.extract.search.tile_width as u64),
        ));
    }
    if let Some((spec, seed)) = faults {
        members.push(("fault_plan".to_string(), Json::str(spec)));
        members.push(("fault_seed".to_string(), Json::u64(seed)));
    }
    Json::Obj(members)
}

/// Encodes a worker's result for the wire. New-node ids (the lease's
/// private block) are translated to their names; everything else keeps
/// the snapshot's names.
fn encode_sub_result(job: &SubJob, wr: &WorkerResult, report: &pf_core::ExtractReport) -> Json {
    let block_names: FxHashMap<u32, &str> = wr
        .new_nodes
        .iter()
        .map(|n| (n.worker_id, n.name.as_str()))
        .collect();
    let name_of = |idx: u32| -> String {
        match block_names.get(&idx) {
            Some(n) => (*n).to_string(),
            None => job.base.name(idx as SignalId).to_string(),
        }
    };
    Json::obj([
        ("status", Json::str("ok")),
        ("lease", Json::u64(job.lease)),
        (
            "report",
            Json::obj([
                ("lc_before", Json::u64(report.lc_before as u64)),
                ("lc_after", Json::u64(report.lc_after as u64)),
                ("extractions", Json::u64(report.extractions as u64)),
                ("total_value", Json::num(report.total_value as f64)),
                ("budget_exhausted", Json::Bool(report.budget_exhausted)),
                ("timed_out", Json::Bool(report.timed_out)),
                ("cancelled", Json::Bool(report.cancelled)),
                (
                    "resub_pairs_considered",
                    Json::u64(report.resub_pairs_considered as u64),
                ),
                (
                    "resub_pairs_divided",
                    Json::u64(report.resub_pairs_divided as u64),
                ),
                (
                    "resub_worklist_rounds",
                    Json::u64(report.resub_worklist_rounds as u64),
                ),
            ]),
        ),
        (
            "rewritten",
            Json::Arr(
                wr.rewritten
                    .iter()
                    .map(|(node, func)| {
                        Json::Arr(vec![
                            Json::str(job.base.name(*node)),
                            sop_to_json(func, &name_of),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "new_nodes",
            Json::Arr(
                wr.new_nodes
                    .iter()
                    .map(|n| Json::Arr(vec![Json::str(&n.name), sop_to_json(&n.func, &name_of)]))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a worker's `"status":"ok"` response back into the
/// coordinator's id space: new nodes get sequential ids in the lease's
/// private block, every other name resolves against the dispatched
/// snapshot.
pub fn decode_sub_response(
    response: &Json,
    job: &SubJob,
) -> Result<(WorkerResult, pf_core::ExtractReport), String> {
    let lease = response
        .get("lease")
        .and_then(Json::as_u64)
        .ok_or("response missing \"lease\"")?;
    if lease != job.lease {
        return Err(format!("lease mismatch: sent {}, got {lease}", job.lease));
    }
    let new_nodes_json = match response.get("new_nodes") {
        Some(Json::Arr(items)) => items.as_slice(),
        _ => return Err("response missing \"new_nodes\"".into()),
    };
    let rewritten_json = match response.get("rewritten") {
        Some(Json::Arr(items)) => items.as_slice(),
        _ => return Err("response missing \"rewritten\"".into()),
    };
    let pair = |v: &Json| -> Result<(String, Json), String> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                let name = items[0].as_str().ok_or("entry name must be a string")?;
                Ok((name.to_string(), items[1].clone()))
            }
            _ => Err("entry must be a [name, function] pair".into()),
        }
    };
    // Pass 1: assign this lease's block ids so functions can reference
    // any new node, not just earlier ones.
    let base_id = block_base_for(job.lease);
    let mut block_ids: FxHashMap<String, u32> = FxHashMap::default();
    let mut decoded_nodes = Vec::with_capacity(new_nodes_json.len());
    for (i, v) in new_nodes_json.iter().enumerate() {
        let (name, func) = pair(v)?;
        let id = base_id + i as u32;
        if block_ids.insert(name.clone(), id).is_some() {
            return Err(format!("duplicate new node {name:?}"));
        }
        decoded_nodes.push((name, id, func));
    }
    let id_of = |name: &str| -> Result<u32, String> {
        if let Some(&id) = block_ids.get(name) {
            return Ok(id);
        }
        job.base
            .find(name)
            .ok_or_else(|| format!("unknown signal {name:?} in result"))
    };
    let mut wr = WorkerResult::default();
    for (name, id, func) in decoded_nodes {
        wr.new_nodes.push(NewNode {
            worker_id: id,
            name,
            func: sop_from_json(&func, &id_of)?,
        });
    }
    for v in rewritten_json {
        let (name, func) = pair(v)?;
        let node = job
            .base
            .find(&name)
            .ok_or_else(|| format!("rewritten node {name:?} is not in the snapshot"))?;
        wr.rewritten.push((node, sop_from_json(&func, &id_of)?));
    }
    let rj = response
        .get("report")
        .ok_or("response missing \"report\"")?;
    let get_u = |k: &str| rj.get(k).and_then(Json::as_u64).unwrap_or(0);
    let get_b = |k: &str| rj.get(k).and_then(Json::as_bool).unwrap_or(false);
    let report = pf_core::ExtractReport {
        lc_before: get_u("lc_before") as usize,
        lc_after: get_u("lc_after") as usize,
        extractions: get_u("extractions") as usize,
        total_value: rj.get("total_value").and_then(Json::as_f64).unwrap_or(0.0) as i64,
        budget_exhausted: get_b("budget_exhausted"),
        timed_out: get_b("timed_out"),
        cancelled: get_b("cancelled"),
        resub_pairs_considered: get_u("resub_pairs_considered") as usize,
        resub_pairs_divided: get_u("resub_pairs_divided") as usize,
        resub_worklist_rounds: get_u("resub_worklist_rounds") as usize,
        ..Default::default()
    };
    Ok((wr, report))
}

// ---------------------------------------------------------------------
// Worker op
// ---------------------------------------------------------------------

/// Handles one `sub` request (worker mode). Panics inside the sub-job
/// answer `"status":"failed"` on the same connection — the worker
/// survives, matching the coordinator's lease semantics (a failed lease
/// fails over; the worker slot stays usable).
pub fn handle_sub(request: &Json) -> Json {
    match run_sub(request) {
        Ok(response) => response,
        Err(msg) => Json::obj([("status", Json::str("error")), ("error", Json::str(msg))]),
    }
}

fn run_sub(request: &Json) -> Result<Json, String> {
    let lease = request
        .get("lease")
        .and_then(Json::as_u64)
        .ok_or("missing \"lease\"")?;
    let kind = match request.get("kind").and_then(Json::as_str) {
        Some(s) => SubKind::parse(s).ok_or_else(|| format!("unknown sub kind {s:?}"))?,
        None => SubKind::Extract,
    };
    let text = request
        .get("network")
        .and_then(Json::as_str)
        .ok_or("missing \"network\"")?;
    let base = read_network(text).map_err(|e| format!("bad network: {e}"))?;
    let targets: Vec<SignalId> = match request.get("targets") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                let name = v.as_str().ok_or("target must be a string")?;
                base.find(name)
                    .ok_or_else(|| format!("unknown target {name:?}"))
            })
            .collect::<Result<_, String>>()?,
        _ => return Err("missing \"targets\"".into()),
    };
    let mut extract = ExtractConfig::default();
    if let Some(k) = request.get("batch_rects").and_then(Json::as_u64) {
        if k == 0 {
            return Err("\"batch_rects\" must be at least 1".into());
        }
        extract.search.topk = k as usize;
    }
    if let Some(w) = request.get("tile_width").and_then(Json::as_u64) {
        extract.search.tile_width = w as usize;
    }
    if let Some(spec) = request.get("fault_plan").and_then(Json::as_str) {
        let seed = request
            .get("fault_seed")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let plan = FaultPlan::parse(spec, seed).map_err(|e| format!("bad fault_plan: {e}"))?;
        extract.ctl = extract.ctl.with_faults(Arc::new(plan));
    }
    let job = SubJob {
        lease,
        targets: Arc::new(targets),
        base: Arc::new(base),
        extract,
        kind,
    };
    match std::panic::catch_unwind(AssertUnwindSafe(|| execute_sub_job(&job))) {
        Ok((wr, report)) => Ok(encode_sub_result(&job, &wr, &report)),
        Err(payload) => Ok(Json::obj([
            ("status", Json::str("failed")),
            ("lease", Json::u64(lease)),
            ("error", Json::str(panic_message(payload))),
        ])),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "sub-job panicked".to_string()
    }
}

// ---------------------------------------------------------------------
// Remote transport
// ---------------------------------------------------------------------

/// [`DistTransport`] over TCP peers running in worker mode.
///
/// Each dispatch opens one connection on its own thread: the request
/// line goes out, the thread blocks on the response line (bounded by
/// `read_timeout`), and the parsed result comes back as a
/// [`DistEvent`]. Connect/read failures retry with the policy's
/// backoff on transient I/O errors ([`transient_io`]); a peer that
/// stays unreachable is marked dead and reported as
/// [`DistEvent::WorkerDied`], which fails its leases over.
pub struct RemoteTransport {
    peers: Vec<String>,
    alive: Vec<Arc<AtomicBool>>,
    tx: Sender<DistEvent>,
    rx: Mutex<Receiver<DistEvent>>,
    retry: RetryPolicy,
    read_timeout: Duration,
    faults: Option<(String, u64)>,
}

impl RemoteTransport {
    /// A transport over `peers` (worker-mode server addresses) with a
    /// 30 s per-dispatch read timeout and default retry policy.
    pub fn new(peers: Vec<String>) -> Self {
        let (tx, rx) = mpsc::channel();
        RemoteTransport {
            alive: peers
                .iter()
                .map(|_| Arc::new(AtomicBool::new(true)))
                .collect(),
            peers,
            tx,
            rx: Mutex::new(rx),
            retry: RetryPolicy::default(),
            read_timeout: Duration::from_secs(30),
            faults: None,
        }
    }

    /// Overrides the retry policy and per-dispatch read timeout.
    pub fn with_limits(mut self, retry: RetryPolicy, read_timeout: Duration) -> Self {
        self.retry = retry;
        self.read_timeout = read_timeout;
        self
    }

    /// Forwards a fault-plan spec + seed inside every sub request so
    /// the workers arm their execution checkpoints (chaos testing).
    pub fn forward_faults(mut self, spec: impl Into<String>, seed: u64) -> Self {
        self.faults = Some((spec.into(), seed));
        self
    }

    /// How many peers are currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::Acquire))
            .count()
    }
}

/// One request line → one response line, with a read timeout and
/// transient-error retry. Unlike [`crate::server::request_lines`] this
/// never blocks forever on a hung peer — the coordinator's lease
/// deadline needs dispatch threads to eventually finish.
fn request_one(
    addr: &str,
    line: &str,
    read_timeout: Duration,
    retry: &RetryPolicy,
) -> std::io::Result<String> {
    let mut attempt = 0u32;
    loop {
        match request_one_once(addr, line, read_timeout) {
            Err(e) if transient_io(&e) && attempt < retry.max_retries => {
                std::thread::sleep(retry.backoff(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

fn request_one_once(addr: &str, line: &str, read_timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed before answering",
        ));
    }
    Ok(response.trim_end().to_string())
}

impl DistTransport for RemoteTransport {
    fn workers(&self) -> usize {
        self.peers.len()
    }

    fn alive(&self, w: usize) -> bool {
        self.alive[w].load(Ordering::Acquire)
    }

    fn dispatch(&self, w: usize, job: SubJob) -> Result<(), String> {
        if !self.alive(w) {
            return Err(format!("peer {w} is down"));
        }
        let faults = self.faults.as_ref().map(|(s, seed)| (s.as_str(), *seed));
        let line = encode_sub_request(&job, faults).to_string();
        let addr = self.peers[w].clone();
        let tx = self.tx.clone();
        let alive = Arc::clone(&self.alive[w]);
        let retry = self.retry.clone();
        let read_timeout = self.read_timeout;
        std::thread::spawn(move || {
            let event = match request_one(&addr, &line, read_timeout, &retry) {
                Err(_) => {
                    // Unreachable past the retry budget: the peer (or
                    // the route to it) is gone. Its leases fail over.
                    alive.store(false, Ordering::Release);
                    DistEvent::WorkerDied { worker: w }
                }
                Ok(text) => match parse(&text) {
                    Err(e) => DistEvent::Failed {
                        lease: job.lease,
                        worker: w,
                        message: format!("unparseable worker response: {e}"),
                    },
                    Ok(response) => match response.get("status").and_then(Json::as_str) {
                        Some("ok") => match decode_sub_response(&response, &job) {
                            Ok((wr, report)) => DistEvent::Completed {
                                lease: job.lease,
                                worker: w,
                                result: Box::new(wr),
                                report: Box::new(report),
                            },
                            Err(msg) => DistEvent::Failed {
                                lease: job.lease,
                                worker: w,
                                message: msg,
                            },
                        },
                        _ => DistEvent::Failed {
                            lease: job.lease,
                            worker: w,
                            message: response
                                .get("error")
                                .and_then(Json::as_str)
                                .unwrap_or("worker rejected the sub-job")
                                .to_string(),
                        },
                    },
                },
            };
            // The coordinator may already be gone (degraded wind-down);
            // a dead receiver just drops the late event.
            let _ = tx.send(event);
        });
        Ok(())
    }

    fn poll(&self, timeout: Duration) -> Option<DistEvent> {
        match self.rx.lock().unwrap().recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator op
// ---------------------------------------------------------------------

/// Handles one `dist` request (coordinator). Runs the distributed
/// driver over in-process workers (`"workers": N`) or TCP peers
/// (`"peers": ["host:port", …]`), bills the run through the standard
/// submitted/accepted/completed counters, and folds the lease
/// statistics into the registry.
pub fn handle_dist(request: &Json, client: &Client) -> Json {
    client.metrics().submitted.inc();
    match run_dist(request, client) {
        Ok(response) => response,
        Err(msg) => {
            client.metrics().rejected_invalid.inc();
            Json::obj([
                ("status", Json::str("rejected")),
                ("reason", Json::str("invalid")),
                ("error", Json::str(msg)),
            ])
        }
    }
}

fn run_dist(request: &Json, client: &Client) -> Result<Json, String> {
    let workload = request
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("missing \"workload\"")?;
    let mut nw = crate::job::resolve_workload(workload)?;

    let mut cfg = DistConfig::default();
    if let Some(parts) = request.get("parts").and_then(Json::as_u64) {
        cfg.parts = usize::try_from(parts).map_err(|_| "\"parts\" out of range".to_string())?;
    }
    if let Some(r) = request.get("recovery").and_then(Json::as_bool) {
        cfg.recovery = r;
    }
    if let Some(s) = request.get("recovery_shards").and_then(Json::as_u64) {
        cfg.recovery_shards =
            usize::try_from(s).map_err(|_| "\"recovery_shards\" out of range".to_string())?;
    }
    if let Some(ms) = request.get("lease_timeout_ms").and_then(Json::as_u64) {
        cfg.lease_timeout = Duration::from_millis(ms);
    }
    let faults = match request.get("fault_plan").and_then(Json::as_str) {
        None => None,
        Some(spec) => {
            let seed = request
                .get("fault_seed")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            Some((spec.to_string(), seed))
        }
    };

    let peers: Vec<String> = match request.get("peers") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or("\"peers\" entries must be strings".to_string())
            })
            .collect::<Result<_, String>>()?,
        Some(_) => return Err("\"peers\" must be an array of addresses".into()),
    };

    let workers = match request.get("workers") {
        None => 2,
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or("\"workers\" must be a non-negative integer")?;
            usize::try_from(n)
                .ok()
                .filter(|&n| n <= 64)
                .ok_or("\"workers\" must be at most 64")?
        }
    };
    // Local chaos plans arm both planes: the transport's message /
    // pickup checkpoints and the sub-jobs' execution checkpoints.
    let plan = match &faults {
        None => None,
        Some((spec, seed)) => Some(Arc::new(
            FaultPlan::parse(spec, *seed).map_err(|e| format!("bad fault_plan: {e}"))?,
        )),
    };

    // Everything is validated; from here the run is accepted and must
    // land in exactly one outcome counter.
    client.metrics().accepted.inc();
    let (report, stats) = if peers.is_empty() {
        if let Some(p) = &plan {
            cfg.extract.ctl = cfg.extract.ctl.clone().with_faults(Arc::clone(p));
        }
        let transport = LocalTransport::with_faults(workers, plan, Duration::from_millis(100));
        pf_core::distributed_extract(&mut nw, &transport, &cfg)
    } else {
        let mut transport = RemoteTransport::new(peers);
        if let Some((spec, seed)) = &faults {
            transport = transport.forward_faults(spec.clone(), *seed);
        }
        pf_core::distributed_extract(&mut nw, &transport, &cfg)
    };

    if report.timed_out {
        client.metrics().timed_out.inc();
    } else {
        client.metrics().completed.inc();
    }
    client.metrics().record_dist(&stats);
    Ok(dist_response(&report, &stats))
}

/// The `dist` op's response body — also what `parafactor dist` prints,
/// so the CLI and the wire stay field-for-field identical.
pub fn dist_response(report: &pf_core::ExtractReport, stats: &DistStats) -> Json {
    Json::obj([
        ("status", Json::str("completed")),
        (
            "metrics",
            Json::obj([
                ("lc_before", Json::u64(report.lc_before as u64)),
                ("lc_after", Json::u64(report.lc_after as u64)),
                ("saved", Json::num(report.saved() as f64)),
                ("extractions", Json::u64(report.extractions as u64)),
                ("degraded", Json::Bool(report.degraded)),
                ("recovery_rects", Json::u64(report.recovery_rects as u64)),
                (
                    "resub_pairs_considered",
                    Json::u64(report.resub_pairs_considered as u64),
                ),
                (
                    "resub_pairs_divided",
                    Json::u64(report.resub_pairs_divided as u64),
                ),
                (
                    "resub_worklist_rounds",
                    Json::u64(report.resub_worklist_rounds as u64),
                ),
                ("run_us", Json::u64(report.elapsed.as_micros() as u64)),
                (
                    "phases",
                    Json::Obj(
                        report
                            .phases
                            .iter()
                            .map(|p| (p.name.to_string(), Json::u64(p.elapsed.as_micros() as u64)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "dist",
            Json::obj([
                ("leases_issued", Json::u64(stats.leases_issued)),
                ("leases_resolved", Json::u64(stats.leases_resolved)),
                ("leases_expired", Json::u64(stats.leases_expired)),
                ("leases_stolen", Json::u64(stats.leases_stolen)),
                ("failovers", Json::u64(stats.failovers)),
                ("degraded_jobs", Json::u64(stats.degraded_jobs)),
                ("recovery_rects", Json::u64(stats.recovery_rects)),
                ("recovery_conflicts", Json::u64(stats.recovery_conflicts)),
                ("stale_results", Json::u64(stats.stale_results)),
                ("balanced", Json::Bool(stats.balanced())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{request_lines, Server, ServerConfig};
    use crate::service::{Service, ServiceConfig};
    use pf_core::merge::merge_worker_results;
    use pf_network::sim::{equivalent_random, EquivConfig};
    use pf_network::Network;
    use pf_workloads::{generate, CircuitProfile};

    /// Re-applies a decoded worker result to a copy of the snapshot,
    /// proving the codec preserves semantics.
    fn apply_result(base: &Network, wr: WorkerResult) -> Network {
        let mut out = base.clone();
        merge_worker_results(&mut out, vec![wr]).expect("decoded result merges");
        out
    }

    /// Silences the default panic hook for injected faults so chaos
    /// tests don't spray backtraces into the output.
    fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let message = info
                    .payload()
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| info.payload().downcast_ref::<&str>().map(|s| s.to_string()));
                if message
                    .as_deref()
                    .is_some_and(|m| m.contains("fault injected"))
                {
                    return;
                }
                previous(info);
            }));
        });
    }

    fn test_network() -> Network {
        generate(&CircuitProfile::small("serve-dist", 7))
    }

    fn sample_job(lease: u64, targets: Vec<SignalId>, base: Network) -> SubJob {
        SubJob {
            lease,
            targets: Arc::new(targets),
            base: Arc::new(base),
            extract: ExtractConfig::default(),
            kind: SubKind::Extract,
        }
    }

    #[test]
    fn codec_round_trips_a_sub_job_result() {
        let nw = test_network();
        let targets: Vec<SignalId> = nw.node_ids().collect();
        let job = sample_job(3, targets, nw.clone());
        let (wr, report) = execute_sub_job(&job);
        assert!(report.extractions > 0, "workload must extract something");

        let encoded = encode_sub_result(&job, &wr, &report);
        let reparsed = parse(&encoded.to_string()).expect("wire round-trip");
        let (decoded, decoded_report) = decode_sub_response(&reparsed, &job).expect("decode");
        assert_eq!(decoded_report.extractions, report.extractions);
        assert_eq!(decoded_report.lc_after, report.lc_after);

        // Semantics survive the trip: applying the decoded diff gives a
        // network equivalent to applying the original one.
        let direct = apply_result(&nw, wr);
        let via_wire = apply_result(&nw, decoded);
        assert_eq!(direct.literal_count(), via_wire.literal_count());
        assert!(equivalent_random(&direct, &via_wire, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn sub_request_round_trips_through_the_worker_handler() {
        let nw = test_network();
        let lc_before = nw.literal_count();
        let targets: Vec<SignalId> = nw.node_ids().collect();
        let job = sample_job(9, targets, nw.clone());
        let request_line = encode_sub_request(&job, None).to_string();
        let request = parse(&request_line).unwrap();
        let response = handle_sub(&request);
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
        let (wr, _) = decode_sub_response(&response, &job).expect("decode");
        let merged = apply_result(&nw, wr);
        assert!(merged.literal_count() < lc_before, "extraction happened");
        assert!(merged.validate().is_ok());
        // New nodes landed in the lease's private name/id space.
        assert!(merged.node_ids().any(|n| merged.name(n).starts_with("d9_")));
    }

    #[test]
    fn worker_faults_forwarded_in_the_request_fail_the_sub_job() {
        let nw = test_network();
        let targets: Vec<SignalId> = nw.node_ids().collect();
        let job = sample_job(4, targets, nw);
        let request = encode_sub_request(&job, Some(("dist:work=panic", 7)));
        quiet_injected_panics();
        let response = handle_sub(&request);
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("failed")
        );
        assert_eq!(response.get("lease").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn malformed_sub_requests_answer_structured_errors() {
        for bad in [
            r#"{"op":"sub"}"#.to_string(),
            r#"{"op":"sub","lease":1,"network":"not a network","targets":[]}"#.to_string(),
            r#"{"op":"sub","lease":1,"network":"","targets":["nope"]}"#.to_string(),
        ] {
            let request = parse(&bad).unwrap();
            let response = handle_sub(&request);
            assert_eq!(
                response.get("status").and_then(Json::as_str),
                Some("error"),
                "{bad}"
            );
        }
    }

    fn start_worker_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind_with(
            "127.0.0.1:0",
            ServiceConfig::default(),
            ServerConfig {
                worker: true,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    }

    fn shutdown(addr: std::net::SocketAddr) {
        let _ = request_lines(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
    }

    #[test]
    fn remote_transport_extracts_over_tcp() {
        let (a0, h0) = start_worker_server();
        let (a1, h1) = start_worker_server();
        let mut nw = test_network();
        let original = nw.clone();
        let transport = RemoteTransport::new(vec![a0.to_string(), a1.to_string()]);
        let cfg = DistConfig {
            lease_timeout: Duration::from_secs(10),
            ..DistConfig::default()
        };
        let (report, stats) = pf_core::distributed_extract(&mut nw, &transport, &cfg);
        assert!(report.lc_after < report.lc_before);
        assert!(!report.degraded);
        assert!(report.recovery_rects > 0 || report.extractions > 0);
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(stats.leases_resolved, stats.leases_issued);
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        shutdown(a0);
        shutdown(a1);
        h0.join().unwrap();
        h1.join().unwrap();
    }

    #[test]
    fn dead_peer_fails_over_to_the_live_one() {
        // Reserve an address with no listener behind it: connects are
        // refused, the retry budget burns down, the peer is declared
        // dead, and its leases fail over to the live worker.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (live, h) = start_worker_server();
        let mut nw = test_network();
        let original = nw.clone();
        let transport = RemoteTransport::new(vec![dead_addr, live.to_string()]).with_limits(
            RetryPolicy {
                max_retries: 1,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                seed: 1,
            },
            Duration::from_secs(10),
        );
        let cfg = DistConfig {
            lease_timeout: Duration::from_secs(10),
            ..DistConfig::default()
        };
        let (report, stats) = pf_core::distributed_extract(&mut nw, &transport, &cfg);
        assert!(stats.failovers >= 1, "{stats:?}");
        assert!(stats.balanced(), "{stats:?}");
        assert!(!report.degraded);
        assert_eq!(transport.alive_count(), 1);
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        shutdown(live);
        h.join().unwrap();
    }

    #[test]
    fn dist_op_local_mode_completes_and_balances_the_books() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        let request = parse(r#"{"op":"dist","workload":"gen:misex3@0.05","workers":2}"#).unwrap();
        let response = handle_dist(&request, &client);
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("completed"),
            "{response}"
        );
        let dist = response.get("dist").unwrap();
        assert_eq!(dist.get("balanced").and_then(Json::as_bool), Some(true));
        assert!(dist.get("leases_issued").and_then(Json::as_u64).unwrap() >= 2);
        let m = client.metrics();
        assert!(m.balanced(), "registry identity holds after a dist run");
        assert_eq!(m.submitted.get(), 1);
        assert_eq!(m.completed.get(), 1);
        service.shutdown();
    }

    #[test]
    fn dist_op_rejects_garbage() {
        let service = Service::start(ServiceConfig::default());
        let client = service.client();
        for bad in [
            r#"{"op":"dist"}"#,
            r#"{"op":"dist","workload":"gen:nosuch@0.1"}"#,
            r#"{"op":"dist","workload":"gen:misex3@0.05","workers":65}"#,
            r#"{"op":"dist","workload":"gen:misex3@0.05","peers":"nope"}"#,
            r#"{"op":"dist","workload":"gen:misex3@0.05","fault_plan":"dist:work=wat"}"#,
        ] {
            let response = handle_dist(&parse(bad).unwrap(), &client);
            assert_eq!(
                response.get("status").and_then(Json::as_str),
                Some("rejected"),
                "{bad}"
            );
        }
        let m = client.metrics();
        assert!(m.balanced());
        assert_eq!(m.submitted.get(), m.rejected_invalid.get());
        service.shutdown();
    }
}
