//! JSON-lines-over-TCP front end (`std::net` only), hardened against
//! misbehaving peers.
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! → {"op":"ping"}
//! ← {"status":"ok"}
//! → {"op":"submit","algorithm":"lshaped","workload":"gen:misex3@0.1",
//!    "procs":2,"par_threads":4,"deadline_ms":5000}
//! ← {"id":1,"status":"completed","metrics":{"lc_before":…,"lc_after":…,
//!    "saved":…,"extractions":…,"queue_wait_us":…,"run_us":…,"phases":{…}}}
//! → {"op":"metrics"}
//! ← {"status":"ok","metrics":{…registry snapshot…}}
//! → {"op":"trace","n":5}        (last-N finished-job timelines; n defaults to 16)
//! ← {"status":"ok","jobs":[{"id":…,"algorithm":…,"status":…,"run_us":…,"phases":{…}},…]}
//! → {"op":"shutdown"}            ("mode":"now" aborts instead of draining)
//! ← {"status":"ok","metrics":{…final snapshot…}}
//! ```
//!
//! `submit` blocks its connection until the job is answered, so a client
//! gets backpressure for free by keeping a connection per in-flight job;
//! rejected jobs answer immediately with `"status":"rejected"` and a
//! machine-readable `"reason"`. The full grammar lives in
//! `docs/SERVICE.md`.
//!
//! Hardening (all knobs in [`ServerConfig`]):
//!
//! * request lines are read through a byte cap — an oversized line is
//!   answered `"status":"rejected","reason":"oversized"` and discarded
//!   up to its newline, the connection survives;
//! * bytes that are not valid UTF-8 answer a structured error instead
//!   of killing the connection;
//! * connections that sit idle past the timeout are answered and closed;
//! * an accept gate caps concurrent connections — excess peers get one
//!   `"status":"rejected","reason":"overloaded"` line and a close;
//! * nothing on the accept path `expect`s: listener-configuration and
//!   thread-spawn failures log and degrade instead of panicking.

use crate::error::ServeError;
use crate::job::{Algorithm, JobOutcome, JobSpec, Rejection};
use crate::json::{parse, Json};
use crate::service::{Client, Service, ServiceConfig};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Front-end (TCP) limits; the service behind it has its own
/// [`ServiceConfig`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Longest request line accepted, in bytes. Longer lines are
    /// rejected as `oversized` without buffering them.
    pub max_line_bytes: usize,
    /// Close connections that send nothing for this long. `None`
    /// disables the idle timer.
    pub idle_timeout: Option<Duration>,
    /// Concurrent-connection cap enforced at accept time.
    pub max_connections: usize,
    /// Whether this server answers the `sub` op (distributed-extraction
    /// worker mode). Off by default: a coordinator's sub requests carry
    /// whole network snapshots, so only servers started explicitly as
    /// workers (`parafactor serve --worker`) should execute them.
    pub worker: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_line_bytes: 1 << 20,
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: 256,
            worker: false,
        }
    }
}

/// Stop flag for the accept loop. When the listener could not be put in
/// non-blocking mode, `nudge` holds the listen address and `stop()`
/// makes one throwaway connection so a blocking `accept` wakes up.
#[derive(Debug, Default)]
struct StopSignal {
    flag: AtomicBool,
    nudge: Mutex<Option<SocketAddr>>,
}

impl StopSignal {
    fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(addr) = *self.nudge.lock() {
            let _ = TcpStream::connect(addr);
        }
    }

    fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// One slot under the accept gate; dropping it (thread exit, spawn
/// failure, anything) releases the slot.
struct ConnPermit<'a>(&'a AtomicUsize);

impl<'a> ConnPermit<'a> {
    fn acquire(active: &'a AtomicUsize) -> Self {
        active.fetch_add(1, Ordering::SeqCst);
        ConnPermit(active)
    }
}

impl Drop for ConnPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Service,
    cfg: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// worker pool, with default front-end limits.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> std::io::Result<Server> {
        Server::bind_with(addr, cfg, ServerConfig::default())
    }

    /// [`bind`](Server::bind) with explicit front-end limits.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        cfg: ServiceConfig,
        server_cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service: Service::start(cfg),
            cfg: server_cfg,
        })
    }

    /// The bound address (for ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// An in-process client for the same service the TCP front end uses.
    pub fn client(&self) -> Client {
        self.service.client()
    }

    /// Accepts and serves connections until a `shutdown` request
    /// arrives, then drains (or aborts, for `"mode":"now"`) and returns.
    /// The final metrics snapshot goes to the shutdown requester.
    pub fn run(self) {
        let stop = StopSignal::default();
        let client = self.service.client();
        if let Err(e) = self.listener.set_nonblocking(true) {
            // Degraded but alive: blocking accepts, woken by a nudge
            // connection when shutdown arrives.
            eprintln!(
                "pf-serve: {} — falling back to blocking accepts",
                ServeError::ListenerConfig {
                    what: "non-blocking mode",
                    source: e,
                }
            );
            if let Ok(addr) = self.listener.local_addr() {
                *stop.nudge.lock() = Some(addr);
            }
        }
        let active = AtomicUsize::new(0);
        let service = &self.service;
        let cfg = &self.cfg;
        let mut accept_errors = 0u32;
        std::thread::scope(|s| {
            while !stop.is_stopped() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        accept_errors = 0;
                        if stop.is_stopped() {
                            break; // likely the shutdown nudge
                        }
                        let open = active.load(Ordering::SeqCst);
                        if open >= cfg.max_connections {
                            client.metrics().conn_rejected.inc();
                            reject_stream(
                                stream,
                                &ServeError::Overloaded {
                                    active: open,
                                    max: cfg.max_connections,
                                },
                            );
                            continue;
                        }
                        let permit = ConnPermit::acquire(&active);
                        // Duplicate handle so a failed spawn can still
                        // answer the peer (the original moves into the
                        // connection closure).
                        let reject_handle = stream.try_clone().ok();
                        let spawned = std::thread::Builder::new()
                            .name("pf-serve-conn".to_string())
                            .spawn_scoped(s, {
                                let client = client.clone();
                                let stop = &stop;
                                move || {
                                    let _permit = permit;
                                    handle_connection(stream, &client, service, stop, cfg);
                                }
                            });
                        if let Err(e) = spawned {
                            // The closure (stream + permit) was dropped:
                            // slot released, peer told why.
                            let err = ServeError::Spawn {
                                what: "connection",
                                source: e,
                            };
                            eprintln!("pf-serve: {err}");
                            client.metrics().conn_rejected.inc();
                            if let Some(h) = reject_handle {
                                reject_stream(h, &err);
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        // Transient accept failures (e.g. ECONNABORTED)
                        // must not kill the server; persistent ones do.
                        accept_errors += 1;
                        if accept_errors >= 100 {
                            eprintln!("pf-serve: accept failing persistently, stopping: {e}");
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            // Scope join waits for connection threads; they exit once
            // their streams close (the shutdown handler has already
            // drained the service by the time stop is set).
        });
    }
}

/// Writes one rejection line to a doomed stream and drops it.
fn reject_stream(mut stream: TcpStream, err: &ServeError) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut text = err.to_wire().to_string();
    text.push('\n');
    let _ = stream.write_all(text.as_bytes());
    let _ = stream.flush();
}

/// What one bounded line read produced.
enum LineRead {
    /// A complete UTF-8 line (without its newline / trailing `\r`).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The read timeout expired with no (complete) line.
    Idle,
    /// The line exceeded the byte cap; input was discarded up to and
    /// including the next newline (or EOF).
    TooLong,
    /// The line's bytes are not valid UTF-8.
    NotUtf8,
    /// Any other I/O error.
    Failed,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `max` bytes of it.
fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineRead::Idle
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return if buf.is_empty() {
                LineRead::Eof
            } else {
                finish_line(buf)
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    reader.consume(pos + 1);
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return finish_line(buf);
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max {
                    reader.consume(len);
                    return drain_to_newline(reader);
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> LineRead {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => LineRead::Line(s),
        Err(_) => LineRead::NotUtf8,
    }
}

/// Discards input up to and including the next newline; the line was
/// already over budget.
fn drain_to_newline(reader: &mut impl BufRead) -> LineRead {
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineRead::Idle
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return LineRead::TooLong; // EOF ends the oversized line too
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return LineRead::TooLong;
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, json: &Json) -> std::io::Result<()> {
    let mut text = json.to_string();
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    client: &Client,
    service: &Service,
    stop: &StopSignal,
    cfg: &ServerConfig,
) {
    if let Some(t) = cfg.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, cfg.max_line_bytes) {
            LineRead::Line(l) => l,
            LineRead::Eof | LineRead::Failed => break,
            LineRead::Idle => {
                let _ = write_line(&mut writer, &ServeError::IdleTimeout.to_wire());
                break;
            }
            LineRead::TooLong => {
                let wire = ServeError::Oversized {
                    max_bytes: cfg.max_line_bytes,
                }
                .to_wire();
                if write_line(&mut writer, &wire).is_err() {
                    break;
                }
                continue;
            }
            LineRead::NotUtf8 => {
                if write_line(&mut writer, &ServeError::InvalidUtf8.to_wire()).is_err() {
                    break;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = handle_line(&line, client, service, stop, cfg);
        if write_line(&mut writer, &response).is_err() {
            break;
        }
        if is_shutdown {
            break;
        }
    }
}

/// Dispatches one request line; the bool says "this was a shutdown, stop
/// the server".
fn handle_line(
    line: &str,
    client: &Client,
    service: &Service,
    stop: &StopSignal,
    cfg: &ServerConfig,
) -> (Json, bool) {
    let request = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                Json::obj([
                    ("status", Json::str("error")),
                    ("error", Json::str(e.to_string())),
                ]),
                false,
            )
        }
    };
    match request.get("op").and_then(Json::as_str) {
        Some("ping") => (Json::obj([("status", Json::str("ok"))]), false),
        Some("metrics") => (
            Json::obj([
                ("status", Json::str("ok")),
                ("metrics", client.metrics_json()),
            ]),
            false,
        ),
        Some("submit") => (handle_submit(&request, client), false),
        Some("sub") => {
            if cfg.worker {
                (crate::dist::handle_sub(&request), false)
            } else {
                (
                    Json::obj([
                        ("status", Json::str("error")),
                        (
                            "error",
                            Json::str("worker mode is disabled (start with --worker)"),
                        ),
                    ]),
                    false,
                )
            }
        }
        Some("dist") => (crate::dist::handle_dist(&request, client), false),
        Some("trace") => {
            let n = request
                .get("n")
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .unwrap_or(16);
            (
                Json::obj([("status", Json::str("ok")), ("jobs", client.trace_json(n))]),
                false,
            )
        }
        Some("shutdown") => {
            // Drain (default) or abort, then answer with the final
            // snapshot. Setting `stop` afterwards keeps the snapshot
            // complete: every accepted job is already accounted.
            if request.get("mode").and_then(Json::as_str) == Some("now") {
                service.shutdown_now();
            } else {
                service.shutdown();
            }
            stop.stop();
            (
                Json::obj([
                    ("status", Json::str("ok")),
                    ("metrics", client.metrics_json()),
                ]),
                true,
            )
        }
        Some(other) => (
            Json::obj([
                ("status", Json::str("error")),
                ("error", Json::str(format!("unknown op {other:?}"))),
            ]),
            false,
        ),
        None => (
            Json::obj([
                ("status", Json::str("error")),
                ("error", Json::str("missing \"op\"")),
            ]),
            false,
        ),
    }
}

fn handle_submit(request: &Json, client: &Client) -> Json {
    let spec = match spec_from_json(request) {
        Ok(spec) => spec,
        Err(msg) => {
            // Count it like any other invalid submission.
            client.metrics().submitted.inc();
            client.metrics().rejected_invalid.inc();
            return Json::obj([
                ("status", Json::str("rejected")),
                ("reason", Json::str("invalid")),
                ("error", Json::str(msg)),
            ]);
        }
    };
    match client.submit(spec) {
        Err(rejection) => rejection_json(&rejection),
        Ok(ticket) => {
            let id = ticket.id;
            outcome_json(id, ticket.wait())
        }
    }
}

fn spec_from_json(request: &Json) -> Result<JobSpec, String> {
    let alg_name = request
        .get("algorithm")
        .and_then(Json::as_str)
        .ok_or("missing \"algorithm\"")?;
    let algorithm = Algorithm::from_wire(alg_name).ok_or_else(|| {
        format!("unknown algorithm {alg_name:?} (seq|replicated|independent|lshaped)")
    })?;
    let workload = request
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("missing \"workload\"")?
        .to_string();
    let procs = match request.get("procs") {
        None => 2,
        Some(v) => checked_count(v, "procs")?,
    };
    let par_threads = match request.get("par_threads") {
        None => 0,
        Some(v) => checked_count(v, "par_threads")?,
    };
    let batch_rects = match request.get("batch_rects") {
        None => 1,
        Some(v) => {
            let k = checked_count(v, "batch_rects")?;
            if k == 0 {
                return Err("\"batch_rects\" must be at least 1".into());
            }
            k
        }
    };
    let tile_width = match request.get("tile_width") {
        None => 0,
        Some(v) => checked_count(v, "tile_width")?,
    };
    let deadline = match request.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Duration::from_millis(
            v.as_u64().ok_or("\"deadline_ms\" must be an integer")?,
        )),
    };
    let delta_from = match request.get("delta_from") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or("\"delta_from\" must be a job fingerprint string")?
                .to_string(),
        ),
    };
    Ok(JobSpec {
        algorithm,
        workload,
        procs,
        par_threads,
        batch_rects,
        tile_width,
        deadline,
        delta_from,
    })
}

/// Parses a processor/thread count, range-checking *before* narrowing:
/// a bare `as usize` would silently truncate a large u64 on 32-bit
/// targets and then pass the service's clamp validation with a mangled
/// value. Out-of-range counts are answered `rejected_invalid` instead.
fn checked_count(v: &Json, field: &str) -> Result<usize, String> {
    let n = v
        .as_u64()
        .ok_or_else(|| format!("{field:?} must be a non-negative integer"))?;
    usize::try_from(n).map_err(|_| format!("{field:?} value {n} does not fit this platform"))
}

fn rejection_json(rejection: &Rejection) -> Json {
    let mut members = vec![
        ("status".to_string(), Json::str("rejected")),
        ("reason".to_string(), Json::str(rejection.reason())),
        ("error".to_string(), Json::str(rejection.to_string())),
    ];
    if let Rejection::QueueFull { capacity } = rejection {
        members.push(("capacity".to_string(), Json::u64(*capacity as u64)));
    }
    if let Rejection::Quarantined { strikes } = rejection {
        members.push(("strikes".to_string(), Json::u64(u64::from(*strikes))));
    }
    Json::Obj(members)
}

fn outcome_json(id: u64, outcome: JobOutcome) -> Json {
    match outcome {
        JobOutcome::Completed(jr) => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("completed")),
            ("metrics", jr.to_json()),
        ]),
        JobOutcome::TimedOut(jr) => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("timed_out")),
            ("error", Json::str("deadline expired")),
            ("metrics", jr.to_json()),
        ]),
        JobOutcome::Drained => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("drained")),
            ("error", Json::str("service shut down before the job ran")),
        ]),
        JobOutcome::Failed { message } => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("failed")),
            ("error", Json::str(message)),
        ]),
    }
}

/// Client-side helper: sends request lines over one connection and
/// returns the response for each (used by `parafactor submit` and the
/// integration tests).
pub fn request_lines(addr: impl ToSocketAddrs, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            break;
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}

/// Whether an I/O error is worth retrying: the connection-level
/// failures a restarting or briefly saturated peer produces. Anything
/// else (refused *permissions*, address errors, …) is terminal.
pub fn transient_io(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        ConnectionRefused
            | ConnectionReset
            | ConnectionAborted
            | BrokenPipe
            | TimedOut
            | WouldBlock
            | Interrupted
            | UnexpectedEof
    )
}

/// [`request_lines`] with the same backoff-and-retry treatment
/// [`crate::service::Client::submit_with_retry`] gives backpressure
/// rejections: transient connect/read failures ([`transient_io`]) sleep
/// the policy's jittered backoff and try the whole exchange again.
/// Retrying the *connection* is safe — `request_lines` opens a fresh
/// stream per call, and every request in the line protocol is answered
/// before the next is sent, so a failed exchange never half-applies.
pub fn request_lines_with_retry(
    addr: impl ToSocketAddrs + Clone,
    lines: &[String],
    policy: &crate::retry::RetryPolicy,
) -> std::io::Result<Vec<String>> {
    let mut attempt = 0u32;
    loop {
        match request_lines(addr.clone(), lines) {
            Err(e) if transient_io(&e) && attempt < policy.max_retries => {
                std::thread::sleep(policy.backoff(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_server(cfg: ServiceConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        start_server_with(cfg, ServerConfig::default())
    }

    fn start_server_with(
        cfg: ServiceConfig,
        server_cfg: ServerConfig,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind_with("127.0.0.1:0", cfg, server_cfg).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    }

    fn shutdown_server(addr: std::net::SocketAddr) {
        let _ = request_lines(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
    }

    #[test]
    fn ping_metrics_and_shutdown() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"ping"}"#.to_string(),
                r#"{"op":"metrics"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        assert_eq!(responses.len(), 3);
        let ping = parse(&responses[0]).unwrap();
        assert_eq!(ping.get("status").and_then(Json::as_str), Some("ok"));
        let metrics = parse(&responses[1]).unwrap();
        assert_eq!(
            metrics
                .get("metrics")
                .and_then(|m| m.get("submitted"))
                .and_then(Json::as_u64),
            Some(0)
        );
        handle.join().unwrap();
    }

    #[test]
    fn submit_over_tcp_completes() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        let r = parse(&responses[0]).unwrap();
        assert_eq!(r.get("status").and_then(Json::as_str), Some("completed"));
        let m = r.get("metrics").unwrap();
        assert!(m.get("lc_before").and_then(Json::as_u64).unwrap() > 0);
        assert!(m.get("run_us").is_some());
        handle.join().unwrap();
    }

    #[test]
    fn submit_with_par_threads_parses_and_completes() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                concat!(
                    r#"{"op":"submit","algorithm":"seq","#,
                    r#""workload":"gen:misex3@0.05","par_threads":2}"#
                )
                .to_string(),
                r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05","par_threads":"x"}"#
                    .to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        let ok = parse(&responses[0]).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("completed"));
        let bad = parse(&responses[1]).unwrap();
        assert_eq!(bad.get("status").and_then(Json::as_str), Some("rejected"));
        handle.join().unwrap();
    }

    #[test]
    fn submit_with_batch_rects_parses_and_completes() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                concat!(
                    r#"{"op":"submit","algorithm":"seq","#,
                    r#""workload":"gen:misex3@0.05","batch_rects":8}"#
                )
                .to_string(),
                r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05","batch_rects":0}"#
                    .to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        let ok = parse(&responses[0]).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("completed"));
        let bad = parse(&responses[1]).unwrap();
        assert_eq!(bad.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(bad.get("reason").and_then(Json::as_str), Some("invalid"));
        handle.join().unwrap();
    }

    #[test]
    fn trace_returns_last_n_job_timelines() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"trace"}"#.to_string(),
                r#"{"op":"submit","algorithm":"independent","workload":"gen:misex3@0.05","procs":2}"#
                    .to_string(),
                r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05"}"#.to_string(),
                r#"{"op":"trace","n":1}"#.to_string(),
                r#"{"op":"trace"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        // Empty before any job finished.
        let empty = parse(&responses[0]).unwrap();
        assert_eq!(empty.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(empty.get("jobs"), Some(&Json::Arr(Vec::new())));
        // n=1 keeps only the most recent job (the seq one).
        let one = parse(&responses[3]).unwrap();
        let Some(Json::Arr(jobs)) = one.get("jobs") else {
            panic!("jobs must be an array")
        };
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].get("algorithm").and_then(Json::as_str), Some("seq"));
        // Default n returns both, oldest first, with phase breakdowns.
        let both = parse(&responses[4]).unwrap();
        let Some(Json::Arr(jobs)) = both.get("jobs") else {
            panic!("jobs must be an array")
        };
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0].get("algorithm").and_then(Json::as_str),
            Some("independent")
        );
        assert_eq!(
            jobs[0].get("status").and_then(Json::as_str),
            Some("completed")
        );
        let phases = jobs[0].get("phases").expect("phases object");
        assert!(phases.get("partition").is_some());
        assert!(phases.get("merge").is_some());
        handle.join().unwrap();
    }

    #[test]
    fn delta_submit_over_tcp_completes_and_counts() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05"}"#.to_string(),
                concat!(
                    r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05","#,
                    r#""delta_from":"seq/gen:misex3@0.05"}"#
                )
                .to_string(),
                concat!(
                    r#"{"op":"submit","algorithm":"lshaped","workload":"gen:misex3@0.05","#,
                    r#""delta_from":"seq/gen:misex3@0.05"}"#
                )
                .to_string(),
                r#"{"op":"metrics"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        let cold = parse(&responses[0]).unwrap();
        assert_eq!(cold.get("status").and_then(Json::as_str), Some("completed"));
        let delta = parse(&responses[1]).unwrap();
        assert_eq!(
            delta.get("status").and_then(Json::as_str),
            Some("completed")
        );
        // delta_from is seq-only: any other algorithm is rejected.
        let bad = parse(&responses[2]).unwrap();
        assert_eq!(bad.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(bad.get("reason").and_then(Json::as_str), Some("invalid"));
        let m = parse(&responses[3]).unwrap();
        let metrics = m.get("metrics").unwrap();
        assert_eq!(metrics.get("delta_jobs").and_then(Json::as_u64), Some(1));
        assert!(metrics.get("cache_hits").and_then(Json::as_u64).unwrap() >= 1);
        handle.join().unwrap();
    }

    #[test]
    fn counts_beyond_the_platform_range_are_rejected_invalid() {
        // 2^53 is exactly representable in the wire's f64 numbers but
        // (on 32-bit targets) not in usize; either way it must answer a
        // structured rejection, never truncate.
        let (addr, handle) = start_server(ServiceConfig::default());
        let request = format!(
            "{{\"op\":\"submit\",\"algorithm\":\"seq\",\"workload\":\"gen:misex3@0.05\",\"procs\":{}}}",
            1u64 << 53
        );
        let responses = request_lines(addr, &[request, r#"{"op":"shutdown"}"#.to_string()])
            .expect("round-trip");
        let r = parse(&responses[0]).unwrap();
        // 2^53 fits 64-bit usize, so on this platform it is clamped and
        // completes; the invariant under test is "never mangled": the
        // response is either completed (clamped) or rejected as invalid.
        let status = r.get("status").and_then(Json::as_str).unwrap();
        assert!(
            status == "completed" || status == "rejected",
            "unexpected status {status}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn malformed_lines_answer_errors_and_keep_the_connection() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                "this is not json".to_string(),
                r#"{"op":"dance"}"#.to_string(),
                r#"{"nop":"submit"}"#.to_string(),
                r#"{"op":"submit","algorithm":"waltz","workload":"gen:misex3@0.05"}"#.to_string(),
                r#"{"op":"ping"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        assert_eq!(responses.len(), 6);
        for r in &responses[0..3] {
            let v = parse(r).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("error"), "{r}");
        }
        let bad_alg = parse(&responses[3]).unwrap();
        assert_eq!(
            bad_alg.get("status").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            bad_alg.get("reason").and_then(Json::as_str),
            Some("invalid")
        );
        assert_eq!(
            parse(&responses[4])
                .unwrap()
                .get("status")
                .and_then(Json::as_str),
            Some("ok")
        );
        handle.join().unwrap();
    }

    #[test]
    fn oversized_line_is_rejected_and_the_connection_survives() {
        let (addr, handle) = start_server_with(
            ServiceConfig::default(),
            ServerConfig {
                max_line_bytes: 64,
                ..ServerConfig::default()
            },
        );
        let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(512));
        let responses =
            request_lines(addr, &[huge, r#"{"op":"ping"}"#.to_string()]).expect("round-trip");
        assert_eq!(responses.len(), 2);
        let over = parse(&responses[0]).unwrap();
        assert_eq!(over.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(over.get("reason").and_then(Json::as_str), Some("oversized"));
        // Same connection, next line still works.
        assert_eq!(
            parse(&responses[1])
                .unwrap()
                .get("status")
                .and_then(Json::as_str),
            Some("ok")
        );
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn invalid_utf8_answers_a_structured_error() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"{\"op\":\"ping\xFF\xFE\"}\n")
            .expect("write");
        stream.flush().expect("flush");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let v = parse(line.trim_end()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("UTF-8"));
        // Connection still serves valid requests.
        stream.write_all(b"{\"op\":\"ping\"}\n").expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(
            parse(line.trim_end())
                .unwrap()
                .get("status")
                .and_then(Json::as_str),
            Some("ok")
        );
        // Close *both* halves (reader holds a clone) so the server's
        // connection thread exits before the join below.
        drop(stream);
        drop(reader);
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn accept_gate_rejects_excess_connections() {
        let (addr, handle) = start_server_with(
            ServiceConfig::default(),
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        );
        // First connection occupies the only slot (prove it's live).
        let held = TcpStream::connect(addr).expect("connect");
        let mut held_writer = held.try_clone().expect("clone");
        held_writer
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("write");
        let mut held_reader = BufReader::new(held);
        let mut line = String::new();
        held_reader.read_line(&mut line).expect("read");
        assert!(line.contains("\"ok\""));
        // Second connection is turned away with one structured line.
        let second = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(second);
        line.clear();
        reader.read_line(&mut line).expect("read");
        let v = parse(line.trim_end()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("overloaded"));
        // And the server closes it.
        line.clear();
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
        // Free the slot, then shut down (retry while the permit drains).
        drop(held_writer);
        drop(held_reader);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let responses =
                request_lines(addr, &[r#"{"op":"shutdown"}"#.to_string()]).expect("connect");
            if responses
                .first()
                .map(|r| r.contains("\"ok\""))
                .unwrap_or(false)
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "slot never freed");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.join().unwrap();
    }

    #[test]
    fn idle_connection_is_answered_and_closed() {
        let (addr, handle) = start_server_with(
            ServiceConfig::default(),
            ServerConfig {
                idle_timeout: Some(Duration::from_millis(50)),
                ..ServerConfig::default()
            },
        );
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream);
        // Send nothing; the server times the connection out.
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let v = parse(line.trim_end()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("idle"));
        line.clear();
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn abrupt_disconnect_mid_submit_does_not_unbalance_the_books() {
        let (addr, handle) = start_server(ServiceConfig::default());
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(
                    b"{\"op\":\"submit\",\"algorithm\":\"seq\",\"workload\":\"gen:misex3@0.1\"}\n",
                )
                .expect("write");
            stream.flush().expect("flush");
            // Hang up without reading the response.
        }
        // The job still runs to completion and is answered into the void;
        // the final snapshot must balance.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let responses =
                request_lines(addr, &[r#"{"op":"metrics"}"#.to_string()]).expect("round-trip");
            let v = parse(&responses[0]).unwrap();
            let m = v.get("metrics").unwrap();
            let completed = m.get("completed").and_then(Json::as_u64).unwrap();
            if completed == 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job never completed");
            std::thread::sleep(Duration::from_millis(10));
        }
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn sub_op_is_gated_behind_worker_mode() {
        // Default servers refuse sub-jobs; worker-mode servers run them.
        let (plain, h0) = start_server(ServiceConfig::default());
        let responses = request_lines(
            plain,
            &[
                r#"{"op":"sub","lease":1,"network":"","targets":[]}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("round-trip");
        let refused = parse(&responses[0]).unwrap();
        assert_eq!(refused.get("status").and_then(Json::as_str), Some("error"));
        assert!(refused
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("worker mode"));
        h0.join().unwrap();

        let (worker, h1) = start_server_with(
            ServiceConfig::default(),
            ServerConfig {
                worker: true,
                ..ServerConfig::default()
            },
        );
        // A malformed sub-job answers a structured error (not a refusal),
        // proving the op is live without shipping a whole network here.
        let responses = request_lines(
            worker,
            &[
                r#"{"op":"sub","lease":1,"network":"","targets":["x"]}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("round-trip");
        let err = parse(&responses[0]).unwrap();
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
        assert!(err
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("target"));
        h1.join().unwrap();
    }

    #[test]
    fn dist_op_over_tcp_completes_and_reports_lease_metrics() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"dist","workload":"gen:misex3@0.05","workers":2}"#.to_string(),
                r#"{"op":"metrics"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("round-trip");
        let r = parse(&responses[0]).unwrap();
        assert_eq!(r.get("status").and_then(Json::as_str), Some("completed"));
        let dist = r.get("dist").expect("dist stats");
        assert_eq!(dist.get("balanced").and_then(Json::as_bool), Some(true));
        let m = parse(&responses[1]).unwrap();
        let metrics = m.get("metrics").unwrap();
        assert!(metrics.get("leases_issued").and_then(Json::as_u64).unwrap() >= 2);
        assert_eq!(
            metrics.get("leases_issued").and_then(Json::as_u64),
            Some(
                metrics
                    .get("leases_resolved")
                    .and_then(Json::as_u64)
                    .unwrap()
                    + metrics
                        .get("leases_expired")
                        .and_then(Json::as_u64)
                        .unwrap()
            ),
        );
        handle.join().unwrap();
    }

    #[test]
    fn transient_io_classifies_retryable_kinds() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::ConnectionRefused,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::BrokenPipe,
            ErrorKind::TimedOut,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(transient_io(&Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [
            ErrorKind::PermissionDenied,
            ErrorKind::AddrNotAvailable,
            ErrorKind::InvalidInput,
        ] {
            assert!(!transient_io(&Error::new(kind, "x")), "{kind:?}");
        }
    }

    #[test]
    fn request_lines_with_retry_recovers_once_the_server_is_up() {
        use crate::retry::RetryPolicy;
        // Reserve a port, drop the listener, then bring a real server up
        // on it while a retrying client is already knocking.
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = probe.local_addr().expect("addr");
        drop(probe);
        let starter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let server =
                Server::bind(addr, ServiceConfig::default()).expect("rebind the probed port");
            server.run();
        });
        let policy = RetryPolicy {
            max_retries: 40,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(50),
            seed: 7,
        };
        let responses = request_lines_with_retry(
            addr,
            &[
                r#"{"op":"ping"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
            &policy,
        )
        .expect("retries ride out the startup gap");
        assert!(responses[0].contains("\"ok\""));
        starter.join().unwrap();
        // And a terminal error surfaces immediately: no listener will
        // ever appear on the re-dropped port, so the budgeted retries
        // exhaust and the last error comes back.
        let gone = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dead = gone.local_addr().expect("addr");
        drop(gone);
        let tight = RetryPolicy {
            max_retries: 1,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 7,
        };
        assert!(request_lines_with_retry(dead, &[r#"{"op":"ping"}"#.to_string()], &tight).is_err());
    }

    #[test]
    fn read_line_bounded_handles_split_and_crlf_lines() {
        let mut r = BufReader::with_capacity(4, &b"hello world\r\nnext\n"[..]);
        match read_line_bounded(&mut r, 64) {
            LineRead::Line(l) => assert_eq!(l, "hello world"),
            _ => panic!("expected a line"),
        }
        match read_line_bounded(&mut r, 64) {
            LineRead::Line(l) => assert_eq!(l, "next"),
            _ => panic!("expected a line"),
        }
        assert!(matches!(read_line_bounded(&mut r, 64), LineRead::Eof));
        // A line that is exactly the cap passes; one byte more fails.
        let mut r = BufReader::with_capacity(4, &b"abcd\nabcde\nok\n"[..]);
        assert!(matches!(read_line_bounded(&mut r, 4), LineRead::Line(_)));
        assert!(matches!(read_line_bounded(&mut r, 4), LineRead::TooLong));
        match read_line_bounded(&mut r, 4) {
            LineRead::Line(l) => assert_eq!(l, "ok"),
            _ => panic!("recovery line expected"),
        }
    }
}
