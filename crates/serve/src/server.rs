//! JSON-lines-over-TCP front end (`std::net` only).
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! → {"op":"ping"}
//! ← {"status":"ok"}
//! → {"op":"submit","algorithm":"lshaped","workload":"gen:misex3@0.1",
//!    "procs":2,"deadline_ms":5000}
//! ← {"id":1,"status":"completed","metrics":{"lc_before":…,"lc_after":…,
//!    "saved":…,"extractions":…,"queue_wait_us":…,"run_us":…,"phases":{…}}}
//! → {"op":"metrics"}
//! ← {"status":"ok","metrics":{…registry snapshot…}}
//! → {"op":"shutdown"}            ("mode":"now" aborts instead of draining)
//! ← {"status":"ok","metrics":{…final snapshot…}}
//! ```
//!
//! `submit` blocks its connection until the job is answered, so a client
//! gets backpressure for free by keeping a connection per in-flight job;
//! rejected jobs answer immediately with `"status":"rejected"` and a
//! machine-readable `"reason"`. The full grammar lives in
//! `docs/SERVICE.md`.

use crate::job::{Algorithm, JobOutcome, JobSpec, Rejection};
use crate::json::{parse, Json};
use crate::service::{Client, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Service,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// worker pool.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service: Service::start(cfg),
        })
    }

    /// The bound address (for ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// An in-process client for the same service the TCP front end uses.
    pub fn client(&self) -> Client {
        self.service.client()
    }

    /// Accepts and serves connections until a `shutdown` request
    /// arrives, then drains (or aborts, for `"mode":"now"`) and returns.
    /// The final metrics snapshot goes to the shutdown requester.
    pub fn run(self) {
        let stop = Arc::new(AtomicBool::new(false));
        let client = self.service.client();
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let service = &self.service;
        std::thread::scope(|s| {
            while !stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let client = client.clone();
                        let stop = Arc::clone(&stop);
                        // The scope joins connection threads on exit; no
                        // need to keep the handles.
                        std::thread::Builder::new()
                            .name("pf-serve-conn".to_string())
                            .spawn_scoped(s, move || {
                                handle_connection(stream, &client, service, &stop)
                            })
                            .expect("spawn connection thread");
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // Scope join waits for connection threads; they exit once
            // their streams close (the shutdown handler has already
            // drained the service by the time stop is set).
        });
    }
}

fn handle_connection(stream: TcpStream, client: &Client, service: &Service, stop: &AtomicBool) {
    let peer = stream.peer_addr().ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = handle_line(&line, client, service, stop);
        let mut text = response.to_string();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() {
            break;
        }
        let _ = writer.flush();
        if is_shutdown {
            break;
        }
    }
    let _ = peer;
}

/// Dispatches one request line; the bool says "this was a shutdown, stop
/// the server".
fn handle_line(line: &str, client: &Client, service: &Service, stop: &AtomicBool) -> (Json, bool) {
    let request = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                Json::obj([
                    ("status", Json::str("error")),
                    ("error", Json::str(e.to_string())),
                ]),
                false,
            )
        }
    };
    match request.get("op").and_then(Json::as_str) {
        Some("ping") => (Json::obj([("status", Json::str("ok"))]), false),
        Some("metrics") => (
            Json::obj([
                ("status", Json::str("ok")),
                ("metrics", client.metrics_json()),
            ]),
            false,
        ),
        Some("submit") => (handle_submit(&request, client), false),
        Some("shutdown") => {
            // Drain (default) or abort, then answer with the final
            // snapshot. Setting `stop` afterwards keeps the snapshot
            // complete: every accepted job is already accounted.
            if request.get("mode").and_then(Json::as_str) == Some("now") {
                service.shutdown_now();
            } else {
                service.shutdown();
            }
            stop.store(true, Ordering::SeqCst);
            (
                Json::obj([
                    ("status", Json::str("ok")),
                    ("metrics", client.metrics_json()),
                ]),
                true,
            )
        }
        Some(other) => (
            Json::obj([
                ("status", Json::str("error")),
                ("error", Json::str(format!("unknown op {other:?}"))),
            ]),
            false,
        ),
        None => (
            Json::obj([
                ("status", Json::str("error")),
                ("error", Json::str("missing \"op\"")),
            ]),
            false,
        ),
    }
}

fn handle_submit(request: &Json, client: &Client) -> Json {
    let spec = match spec_from_json(request) {
        Ok(spec) => spec,
        Err(msg) => {
            // Count it like any other invalid submission.
            client.metrics().submitted.inc();
            client.metrics().rejected_invalid.inc();
            return Json::obj([
                ("status", Json::str("rejected")),
                ("reason", Json::str("invalid")),
                ("error", Json::str(msg)),
            ]);
        }
    };
    match client.submit(spec) {
        Err(rejection) => rejection_json(&rejection),
        Ok(ticket) => {
            let id = ticket.id;
            outcome_json(id, ticket.wait())
        }
    }
}

fn spec_from_json(request: &Json) -> Result<JobSpec, String> {
    let alg_name = request
        .get("algorithm")
        .and_then(Json::as_str)
        .ok_or("missing \"algorithm\"")?;
    let algorithm = Algorithm::from_wire(alg_name).ok_or_else(|| {
        format!("unknown algorithm {alg_name:?} (seq|replicated|independent|lshaped)")
    })?;
    let workload = request
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("missing \"workload\"")?
        .to_string();
    let procs = match request.get("procs") {
        None => 2,
        Some(v) => v
            .as_u64()
            .ok_or("\"procs\" must be a non-negative integer")? as usize,
    };
    let deadline = match request.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Duration::from_millis(
            v.as_u64().ok_or("\"deadline_ms\" must be an integer")?,
        )),
    };
    Ok(JobSpec {
        algorithm,
        workload,
        procs,
        deadline,
    })
}

fn rejection_json(rejection: &Rejection) -> Json {
    let mut members = vec![
        ("status".to_string(), Json::str("rejected")),
        ("reason".to_string(), Json::str(rejection.reason())),
        ("error".to_string(), Json::str(rejection.to_string())),
    ];
    if let Rejection::QueueFull { capacity } = rejection {
        members.push(("capacity".to_string(), Json::u64(*capacity as u64)));
    }
    Json::Obj(members)
}

fn outcome_json(id: u64, outcome: JobOutcome) -> Json {
    match outcome {
        JobOutcome::Completed(jr) => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("completed")),
            ("metrics", jr.to_json()),
        ]),
        JobOutcome::TimedOut(jr) => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("timed_out")),
            ("error", Json::str("deadline expired")),
            ("metrics", jr.to_json()),
        ]),
        JobOutcome::Drained => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("drained")),
            ("error", Json::str("service shut down before the job ran")),
        ]),
        JobOutcome::Failed { message } => Json::obj([
            ("id", Json::u64(id)),
            ("status", Json::str("failed")),
            ("error", Json::str(message)),
        ]),
    }
}

/// Client-side helper: sends request lines over one connection and
/// returns the response for each (used by `parafactor submit` and the
/// integration tests).
pub fn request_lines(addr: impl ToSocketAddrs, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            break;
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_server(cfg: ServiceConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    }

    #[test]
    fn ping_metrics_and_shutdown() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"ping"}"#.to_string(),
                r#"{"op":"metrics"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        assert_eq!(responses.len(), 3);
        let ping = parse(&responses[0]).unwrap();
        assert_eq!(ping.get("status").and_then(Json::as_str), Some("ok"));
        let metrics = parse(&responses[1]).unwrap();
        assert_eq!(
            metrics
                .get("metrics")
                .and_then(|m| m.get("submitted"))
                .and_then(Json::as_u64),
            Some(0)
        );
        handle.join().unwrap();
    }

    #[test]
    fn submit_over_tcp_completes() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        let r = parse(&responses[0]).unwrap();
        assert_eq!(r.get("status").and_then(Json::as_str), Some("completed"));
        let m = r.get("metrics").unwrap();
        assert!(m.get("lc_before").and_then(Json::as_u64).unwrap() > 0);
        assert!(m.get("run_us").is_some());
        handle.join().unwrap();
    }

    #[test]
    fn malformed_lines_answer_errors_and_keep_the_connection() {
        let (addr, handle) = start_server(ServiceConfig::default());
        let responses = request_lines(
            addr,
            &[
                "this is not json".to_string(),
                r#"{"op":"dance"}"#.to_string(),
                r#"{"nop":"submit"}"#.to_string(),
                r#"{"op":"submit","algorithm":"waltz","workload":"gen:misex3@0.05"}"#.to_string(),
                r#"{"op":"ping"}"#.to_string(),
                r#"{"op":"shutdown"}"#.to_string(),
            ],
        )
        .expect("protocol round-trip");
        assert_eq!(responses.len(), 6);
        for r in &responses[0..3] {
            let v = parse(r).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("error"), "{r}");
        }
        let bad_alg = parse(&responses[3]).unwrap();
        assert_eq!(
            bad_alg.get("status").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            bad_alg.get("reason").and_then(Json::as_str),
            Some("invalid")
        );
        assert_eq!(
            parse(&responses[4])
                .unwrap()
                .get("status")
                .and_then(Json::as_str),
            Some("ok")
        );
        handle.join().unwrap();
    }
}
