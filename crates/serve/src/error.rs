//! Typed errors for the service/server layer.
//!
//! Everything that used to be an `expect()` on the accept or spawn path
//! is now a [`ServeError`]: loggable, non-fatal where possible, and
//! renderable as a structured JSON protocol line via
//! [`ServeError::to_wire`] so remote clients see a machine-readable
//! reason instead of a dropped connection.

use crate::json::Json;
use std::io;

/// A structured service-layer error.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Configuring the listener (e.g. non-blocking mode) failed; the
    /// server keeps running in a degraded mode.
    ListenerConfig {
        /// What was being configured.
        what: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Spawning a thread failed.
    Spawn {
        /// Which thread could not be spawned (`"worker"`,
        /// `"supervisor"`, `"connection"`).
        what: &'static str,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The accept gate turned a connection away: too many already open.
    Overloaded {
        /// Connections currently open.
        active: usize,
        /// The configured cap.
        max: usize,
    },
    /// A request line exceeded the configured byte cap.
    Oversized {
        /// The configured per-line cap.
        max_bytes: usize,
    },
    /// A request line was not valid UTF-8.
    InvalidUtf8,
    /// The connection sat idle past the configured timeout.
    IdleTimeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::ListenerConfig { what, source } => {
                write!(f, "listener configuration ({what}) failed: {source}")
            }
            ServeError::Spawn { what, source } => {
                write!(f, "cannot spawn {what} thread: {source}")
            }
            ServeError::Overloaded { active, max } => {
                write!(f, "too many connections ({active} open, cap {max})")
            }
            ServeError::Oversized { max_bytes } => {
                write!(f, "request line exceeds {max_bytes} bytes")
            }
            ServeError::InvalidUtf8 => write!(f, "request line is not valid UTF-8"),
            ServeError::IdleTimeout => write!(f, "connection idle past the timeout"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. }
            | ServeError::ListenerConfig { source, .. }
            | ServeError::Spawn { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ServeError {
    /// Stable machine-readable reason for rejection-shaped errors;
    /// `None` for errors that render as `"status":"error"`.
    pub fn reason(&self) -> Option<&'static str> {
        match self {
            ServeError::Overloaded { .. } | ServeError::Spawn { .. } => Some("overloaded"),
            ServeError::Oversized { .. } => Some("oversized"),
            _ => None,
        }
    }

    /// Renders the error as one JSON protocol line: resource-pressure
    /// errors become `"status":"rejected"` with a machine-readable
    /// `"reason"`, everything else `"status":"error"`.
    pub fn to_wire(&self) -> Json {
        match self.reason() {
            Some(reason) => Json::obj([
                ("status", Json::str("rejected")),
                ("reason", Json::str(reason)),
                ("error", Json::str(self.to_string())),
            ]),
            None => Json::obj([
                ("status", Json::str("error")),
                ("error", Json::str(self.to_string())),
            ]),
        }
    }
}

impl From<ServeError> for io::Error {
    fn from(e: ServeError) -> io::Error {
        match e {
            ServeError::Bind { source, .. }
            | ServeError::ListenerConfig { source, .. }
            | ServeError::Spawn { source, .. } => source,
            other => io::Error::other(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn overload_renders_as_a_structured_rejection() {
        let wire = ServeError::Overloaded { active: 9, max: 8 }
            .to_wire()
            .to_string();
        let v = parse(&wire).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("overloaded"));
        assert!(v.get("error").and_then(Json::as_str).unwrap().contains("9"));
    }

    #[test]
    fn oversized_and_utf8_render_with_the_documented_shapes() {
        let over = ServeError::Oversized { max_bytes: 64 }.to_wire();
        assert_eq!(over.get("reason").and_then(Json::as_str), Some("oversized"));
        let utf8 = ServeError::InvalidUtf8.to_wire();
        assert_eq!(utf8.get("status").and_then(Json::as_str), Some("error"));
    }

    #[test]
    fn io_conversion_preserves_the_source_where_there_is_one() {
        let e = ServeError::Spawn {
            what: "worker",
            source: io::Error::new(io::ErrorKind::WouldBlock, "no threads"),
        };
        assert!(std::error::Error::source(&e).is_some());
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::WouldBlock);
    }
}
