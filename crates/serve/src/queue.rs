//! A bounded MPMC job queue with backpressure and close-for-drain.
//!
//! `push` never blocks: a full queue is an immediate, structured
//! rejection (the service's backpressure signal). `pop` blocks on a
//! condvar until an item arrives or the queue is closed *and* empty —
//! which is exactly the graceful-drain contract: after `close()`,
//! producers are turned away but consumers keep draining what was
//! already accepted.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity.
    Full {
        /// The configured capacity.
        capacity: usize,
    },
    /// `close()` was called.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. Shared by reference (`Arc` it for threads).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Non-blocking enqueue; full or closed queues reject immediately.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue. Returns `None` only when the queue is closed
    /// and everything already accepted has been handed out.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            self.not_empty.wait(&mut s);
        }
    }

    /// Stops accepting new items; blocked `pop`s drain the remainder and
    /// then return `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether `close()` has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Empties the queue immediately (for abort-style shutdown),
    /// returning the items that never ran.
    pub fn drain_now(&self) -> Vec<T> {
        let mut s = self.state.lock();
        s.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_with_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full { capacity: 2 }));
        // Popping frees a slot.
        q.pop();
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7).unwrap();
        q.push(8).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7, 8]);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::<u64>::new(1024));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        let expected: u64 = (0..4u64)
            .map(|p| (0..100).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn drain_now_returns_the_leftovers() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.drain_now(), vec!["a", "b"]);
        assert_eq!(q.pop(), None);
    }
}
