//! Minimal JSON reader/writer for the line protocol.
//!
//! The build environment is offline, so no serde: this is a small,
//! dependency-free implementation of exactly what the wire format needs
//! — objects, arrays, strings, f64 numbers, booleans and null, with
//! `\uXXXX` escapes (including surrogate pairs) on input and standard
//! escaping on output. Object key order is preserved (insertion order),
//! which keeps responses byte-stable for tests and humans.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as f64; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, all are printed).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A `u64` carried as a JSON number (exact below 2^53).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset + message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request() {
        let line = r#"{"op":"submit","algorithm":"lshaped","procs":4,"deadline_ms":250,"verify":false,"tags":["a","b"],"x":null}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("procs").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("verify").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("line\nwith \"quotes\" \\ and\tcontrol\u{1}");
        let printed = v.to_string();
        assert_eq!(parse(&printed).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Json::str("é😀"));
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::u64(1_000_000).to_string(), "1000000");
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":{"b":[1,{"c":true}]}}"#).unwrap();
        let b = v.get("a").unwrap().get("b").unwrap();
        match b {
            Json::Arr(items) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[1].get("c").and_then(Json::as_bool), Some(true));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
