//! Property tests for the k-way partitioner: exhaustive assignment,
//! balance (up to the heaviest vertex), determinism, and cut-size
//! consistency between graph and partition.

use pf_network::Network;
use pf_partition::{partition_network, CircuitGraph, PartitionConfig};
use pf_sop::{Cube, Lit, Sop};
use proptest::prelude::*;

fn arb_network(n_inputs: usize, n_nodes: usize) -> impl Strategy<Value = Network> {
    let cube = prop::collection::btree_set(0u32..64, 1..=3usize);
    let node = prop::collection::vec(cube, 1..=4usize);
    prop::collection::vec(node, 1..=n_nodes).prop_map(move |specs| {
        let mut nw = Network::new();
        let inputs: Vec<u32> = (0..n_inputs)
            .map(|i| nw.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut nodes: Vec<u32> = Vec::new();
        for (k, spec) in specs.into_iter().enumerate() {
            let cubes: Vec<Cube> = spec
                .into_iter()
                .map(|srcs| {
                    Cube::from_lits(srcs.into_iter().map(|s| {
                        let pool = inputs.len() + nodes.len();
                        let idx = (s as usize) % pool;
                        if idx < inputs.len() {
                            Lit::pos(inputs[idx])
                        } else {
                            Lit::pos(nodes[idx - inputs.len()])
                        }
                    }))
                })
                .collect();
            let id = nw
                .add_node(format!("n{k}"), Sop::from_cubes(cubes))
                .unwrap();
            nodes.push(id);
        }
        let fo = nw.fanout_map();
        for &n in &nodes {
            if fo[n as usize].is_empty() {
                nw.mark_output(n).unwrap();
            }
        }
        nw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_node_in_exactly_one_part(nw in arb_network(6, 12), k in 1usize..6) {
        let p = partition_network(&nw, k, &PartitionConfig::default());
        let mut seen = std::collections::HashSet::new();
        for q in 0..k {
            for s in p.part_nodes(q) {
                prop_assert!(seen.insert(s), "node {s} assigned twice");
            }
        }
        prop_assert_eq!(seen.len(), nw.node_ids().count());
    }

    #[test]
    fn balance_up_to_heaviest_vertex(nw in arb_network(6, 12), k in 2usize..6) {
        let cfg = PartitionConfig::default();
        let p = partition_network(&nw, k, &cfg);
        let w = p.part_weights();
        let total: u64 = w.iter().sum();
        let heaviest = (0..p.graph.len()).map(|v| p.graph.weight(v)).max().unwrap_or(0);
        let cap = ((total as f64 / k as f64) * (1.0 + cfg.tolerance)).ceil() as u64;
        for x in w {
            prop_assert!(x <= cap.max(heaviest), "{x} > {} (heaviest {heaviest})", cap);
        }
    }

    #[test]
    fn deterministic(nw in arb_network(6, 10), k in 1usize..5) {
        let cfg = PartitionConfig::default();
        let a = partition_network(&nw, k, &cfg);
        let b = partition_network(&nw, k, &cfg);
        prop_assert_eq!(a.assignment, b.assignment);
        prop_assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn reported_cut_matches_graph(nw in arb_network(6, 10), k in 1usize..5) {
        let p = partition_network(&nw, k, &PartitionConfig::default());
        prop_assert_eq!(p.cut, p.graph.cut_size(&p.assignment));
        if k == 1 {
            prop_assert_eq!(p.cut, 0);
        }
    }

    #[test]
    fn graph_edges_are_symmetric(nw in arb_network(6, 10)) {
        let g = CircuitGraph::from_network(&nw);
        for v in 0..g.len() {
            for &(u, w) in g.neighbors(v) {
                prop_assert!(
                    g.neighbors(u).iter().any(|&(x, wx)| x == v && wx == w),
                    "edge {v}-{u} not mirrored"
                );
            }
        }
    }

    #[test]
    fn more_passes_never_hurt(nw in arb_network(6, 12)) {
        let zero = partition_network(&nw, 2, &PartitionConfig {
            max_passes: 0, ..PartitionConfig::default()
        });
        let many = partition_network(&nw, 2, &PartitionConfig::default());
        prop_assert!(many.cut <= zero.cut);
    }
}
