//! Direct k-way Fiduccia–Mattheyses-style partitioning.
//!
//! The classic iterative-improvement loop: start from a balanced seed
//! assignment, then run passes in which every vertex is moved at most
//! once to its best admissible destination (largest cut gain, balance
//! respected), recording the cumulative gain; at the end of a pass roll
//! back to the best prefix. Repeat while a pass improves the cut. This
//! is the single-move k-way generalization Sanchis describes, minus the
//! level-gain refinement (the level-1 gains used here are what SIS-era
//! partitioners shipped with).

use crate::graph::CircuitGraph;
use pf_network::{Network, SignalId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Options for [`partition_network`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Allowed imbalance: part weight may reach `(1 + tolerance)` times
    /// the perfectly balanced share.
    pub tolerance: f64,
    /// Maximum improvement passes.
    pub max_passes: usize,
    /// Seed for the randomized initial assignment (results are
    /// deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            tolerance: 0.25,
            max_passes: 12,
            seed: 0xC1C_0FFEE,
        }
    }
}

/// A k-way partition of a network's internal nodes.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Number of parts.
    pub k: usize,
    /// Part of each graph vertex.
    pub assignment: Vec<usize>,
    /// The graph that was partitioned.
    pub graph: CircuitGraph,
    /// Final cut size.
    pub cut: u64,
}

impl Partition {
    /// The nodes (signal ids) of one part.
    pub fn part_nodes(&self, p: usize) -> Vec<SignalId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == p)
            .map(|(v, _)| self.graph.signal(v))
            .collect()
    }

    /// The part of a node, if it is a graph vertex.
    pub fn part_of(&self, s: SignalId) -> Option<usize> {
        self.graph.vertex(s).map(|v| self.assignment[v])
    }

    /// Literal-count weight of each part.
    pub fn part_weights(&self) -> Vec<u64> {
        let mut w = vec![0u64; self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            w[p] += self.graph.weight(v);
        }
        w
    }
}

/// Partitions the internal nodes of `nw` into `k` parts minimizing the
/// fanin/fanout cut, with literal-count balance.
///
/// `k = 1` returns the trivial partition; `k` larger than the node count
/// leaves the surplus parts empty (they simply get no work), mirroring
/// how the paper runs 6 processors on small circuits.
pub fn partition_network(nw: &Network, k: usize, cfg: &PartitionConfig) -> Partition {
    assert!(k >= 1, "k must be positive");
    let graph = CircuitGraph::from_network(nw);
    let n = graph.len();
    if k == 1 || n <= 1 {
        let assignment = vec![0usize; n];
        let cut = graph.cut_size(&assignment);
        return Partition {
            k,
            assignment,
            graph,
            cut,
        };
    }

    // --- Seed: randomized greedy bin packing by descending weight. ---
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    order.shuffle(&mut rng);
    order.sort_by_key(|&v| std::cmp::Reverse(graph.weight(v)));
    let mut assignment = vec![0usize; n];
    let mut part_w = vec![0u64; k];
    for &v in &order {
        let p = (0..k).min_by_key(|&p| part_w[p]).unwrap();
        assignment[v] = p;
        part_w[p] += graph.weight(v);
    }

    let total = graph.total_weight();
    let max_part = ((total as f64 / k as f64) * (1.0 + cfg.tolerance)).ceil() as u64;

    // --- FM passes. ---
    for _ in 0..cfg.max_passes {
        let improved = fm_pass(&graph, k, &mut assignment, &mut part_w, max_part);
        if !improved {
            break;
        }
    }

    let cut = graph.cut_size(&assignment);
    Partition {
        k,
        assignment,
        graph,
        cut,
    }
}

/// One FM pass; returns whether the cut improved.
fn fm_pass(
    graph: &CircuitGraph,
    k: usize,
    assignment: &mut [usize],
    part_w: &mut [u64],
    max_part: u64,
) -> bool {
    let n = graph.len();
    let mut locked = vec![false; n];
    // Move log for rollback: (vertex, from, to, gain).
    let mut log: Vec<(usize, usize, usize, i64)> = Vec::with_capacity(n);
    let mut cum = 0i64;
    let mut best_cum = 0i64;
    let mut best_len = 0usize;

    // Connectivity of v to each part (edge-weight sums), maintained
    // incrementally as moves are applied.
    let mut conn = vec![0i64; n * k];
    for v in 0..n {
        for &(u, w) in graph.neighbors(v) {
            conn[v * k + assignment[u]] += w as i64;
        }
    }

    for _ in 0..n {
        // Best admissible move across all unlocked vertices.
        let mut best: Option<(i64, usize, usize)> = None; // (gain, v, to)
        for v in 0..n {
            if locked[v] {
                continue;
            }
            let from = assignment[v];
            // Don't empty a part that still has exactly this vertex?
            // Allowed — empty parts are legal (k > n case).
            for to in 0..k {
                if to == from {
                    continue;
                }
                if part_w[to] + graph.weight(v) > max_part {
                    continue;
                }
                let gain = conn[v * k + to] - conn[v * k + from];
                match best {
                    Some((g, _, _)) if g >= gain => {}
                    _ => best = Some((gain, v, to)),
                }
            }
        }
        let Some((gain, v, to)) = best else { break };
        let from = assignment[v];
        // Apply the move.
        assignment[v] = to;
        part_w[from] -= graph.weight(v);
        part_w[to] += graph.weight(v);
        for &(u, w) in graph.neighbors(v) {
            conn[u * k + from] -= w as i64;
            conn[u * k + to] += w as i64;
        }
        locked[v] = true;
        cum += gain;
        log.push((v, from, to, gain));
        if cum > best_cum {
            best_cum = cum;
            best_len = log.len();
        }
    }

    // Roll back past the best prefix.
    for &(v, from, to, _) in log[best_len..].iter().rev() {
        assignment[v] = from;
        part_w[to] -= graph.weight(v);
        part_w[from] += graph.weight(v);
    }
    best_cum > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::Network;
    use pf_sop::{Cube, Lit, Sop};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    /// Two 4-node "clusters" joined by one edge — the obvious min cut.
    fn two_clusters() -> Network {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        // Cluster 1: n0..n3 chained densely.
        let n0 = nw.add_node("n0", sop_of(&[&[a]])).unwrap();
        let n1 = nw.add_node("n1", sop_of(&[&[n0, a], &[n0]])).unwrap();
        let n2 = nw.add_node("n2", sop_of(&[&[n0, n1], &[n1]])).unwrap();
        let n3 = nw.add_node("n3", sop_of(&[&[n1, n2], &[n0]])).unwrap();
        // Bridge: m0 references n3 once.
        let m0 = nw.add_node("m0", sop_of(&[&[n3, a]])).unwrap();
        let m1 = nw.add_node("m1", sop_of(&[&[m0], &[m0, a]])).unwrap();
        let m2 = nw.add_node("m2", sop_of(&[&[m0, m1], &[m1]])).unwrap();
        let m3 = nw.add_node("m3", sop_of(&[&[m1, m2], &[m0]])).unwrap();
        nw.mark_output(n3).unwrap();
        nw.mark_output(m3).unwrap();
        nw
    }

    #[test]
    fn bisection_finds_the_bridge() {
        let nw = two_clusters();
        let p = partition_network(&nw, 2, &PartitionConfig::default());
        assert_eq!(p.cut, 1, "the single bridge edge is the min cut");
        // n-cluster together, m-cluster together.
        let part_n0 = p.part_of(nw.find("n0").unwrap()).unwrap();
        for name in ["n1", "n2", "n3"] {
            assert_eq!(p.part_of(nw.find(name).unwrap()).unwrap(), part_n0);
        }
        let part_m0 = p.part_of(nw.find("m0").unwrap()).unwrap();
        assert_ne!(part_m0, part_n0);
        for name in ["m1", "m2", "m3"] {
            assert_eq!(p.part_of(nw.find(name).unwrap()).unwrap(), part_m0);
        }
    }

    #[test]
    fn trivial_k1() {
        let nw = two_clusters();
        let p = partition_network(&nw, 1, &PartitionConfig::default());
        assert_eq!(p.cut, 0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn balance_respected() {
        let nw = two_clusters();
        let cfg = PartitionConfig::default();
        for k in [2usize, 3, 4] {
            let p = partition_network(&nw, k, &cfg);
            let total: u64 = p.part_weights().iter().sum();
            let max_allowed = ((total as f64 / k as f64) * (1.0 + cfg.tolerance)).ceil() as u64;
            for (i, w) in p.part_weights().iter().enumerate() {
                assert!(
                    *w <= max_allowed,
                    "part {i} weight {w} exceeds {max_allowed} for k={k}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let nw = two_clusters();
        let cfg = PartitionConfig::default();
        let p1 = partition_network(&nw, 3, &cfg);
        let p2 = partition_network(&nw, 3, &cfg);
        assert_eq!(p1.assignment, p2.assignment);
    }

    #[test]
    fn k_larger_than_nodes_leaves_empty_parts() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        nw.mark_output(f).unwrap();
        let p = partition_network(&nw, 6, &PartitionConfig::default());
        assert_eq!(p.k, 6);
        assert_eq!(p.part_nodes(p.assignment[0]).len(), 1);
        let nonempty: usize = (0..6).filter(|&q| !p.part_nodes(q).is_empty()).count();
        assert_eq!(nonempty, 1);
    }

    #[test]
    fn all_nodes_assigned_exactly_once() {
        let nw = two_clusters();
        let p = partition_network(&nw, 3, &PartitionConfig::default());
        let mut seen = std::collections::HashSet::new();
        for q in 0..3 {
            for s in p.part_nodes(q) {
                assert!(seen.insert(s));
            }
        }
        assert_eq!(seen.len(), nw.node_ids().count());
    }

    #[test]
    fn cut_never_worse_than_seed() {
        // The FM passes only roll back to prefixes with non-negative
        // cumulative gain, so the final cut ≤ the seed cut. Verify via
        // a one-pass-only config vs many passes.
        let nw = two_clusters();
        let one = partition_network(
            &nw,
            2,
            &PartitionConfig {
                max_passes: 0,
                ..PartitionConfig::default()
            },
        );
        let many = partition_network(&nw, 2, &PartitionConfig::default());
        assert!(many.cut <= one.cut);
    }
}
