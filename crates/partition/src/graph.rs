//! The circuit graph: internal nodes as vertices, fanin/fanout relations
//! between node pairs as weighted edges.
//!
//! Primary inputs do not become vertices (they are replicated freely in
//! any partition); an edge `u — v` exists when node `u`'s function
//! references node `v` or vice versa, with weight equal to the number of
//! such references. Vertex weight is the node's literal count, so
//! balanced partitions give each processor comparable factorization
//! work.

use pf_network::{Network, SignalId, SignalKind};
use pf_sop::fx::FxHashMap;

/// An undirected weighted graph over the internal nodes of a network.
#[derive(Clone, Debug)]
pub struct CircuitGraph {
    /// The network signal behind each vertex.
    nodes: Vec<SignalId>,
    /// Vertex index by signal id.
    index: FxHashMap<SignalId, usize>,
    /// Adjacency: `(neighbor vertex, edge weight)`, sorted by neighbor.
    adj: Vec<Vec<(usize, u32)>>,
    /// Vertex weights (literal counts, min 1).
    weights: Vec<u64>,
}

impl CircuitGraph {
    /// Builds the graph of a network.
    pub fn from_network(nw: &Network) -> Self {
        let nodes: Vec<SignalId> = nw.node_ids().collect();
        let index: FxHashMap<SignalId, usize> =
            nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut edge_w: FxHashMap<(usize, usize), u32> = FxHashMap::default();
        for (vi, &n) in nodes.iter().enumerate() {
            // One unit of edge weight per literal reference, so nodes
            // that share many cubes are held together more strongly.
            for cube in nw.func(n).iter() {
                for lit in cube.iter() {
                    let fi = lit.var().index();
                    if fi as usize >= nw.num_signals() || nw.kind(fi) != SignalKind::Node {
                        continue;
                    }
                    let Some(&ui) = index.get(&fi) else { continue };
                    if ui == vi {
                        continue;
                    }
                    let key = (vi.min(ui), vi.max(ui));
                    *edge_w.entry(key).or_insert(0) += 1;
                }
            }
        }
        let mut adj = vec![Vec::new(); nodes.len()];
        for (&(a, b), &w) in &edge_w {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        let weights = nodes
            .iter()
            .map(|&n| nw.func(n).literal_count().max(1) as u64)
            .collect();
        CircuitGraph {
            nodes,
            index,
            adj,
            weights,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The signal id of a vertex.
    pub fn signal(&self, v: usize) -> SignalId {
        self.nodes[v]
    }

    /// The vertex of a signal id, if it is an internal node.
    pub fn vertex(&self, s: SignalId) -> Option<usize> {
        self.index.get(&s).copied()
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, u32)] {
        &self.adj[v]
    }

    /// The weight (literal count) of a vertex.
    pub fn weight(&self, v: usize) -> u64 {
        self.weights[v]
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// The cut size of an assignment: total weight of edges whose
    /// endpoints lie in different parts.
    pub fn cut_size(&self, assignment: &[usize]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.len() {
            for &(u, w) in &self.adj[v] {
                if u > v && assignment[u] != assignment[v] {
                    cut += w as u64;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sop::{Cube, Lit, Sop};

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    fn chain() -> (Network, Vec<SignalId>) {
        // a → n0 → n1 → n2 (a PI feeding a chain of 3 nodes)
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let n0 = nw.add_node("n0", sop_of(&[&[a]])).unwrap();
        let n1 = nw.add_node("n1", sop_of(&[&[n0, a]])).unwrap();
        let n2 = nw.add_node("n2", sop_of(&[&[n1]])).unwrap();
        nw.mark_output(n2).unwrap();
        (nw, vec![n0, n1, n2])
    }

    #[test]
    fn builds_edges_from_fanin_relations() {
        let (nw, ids) = chain();
        let g = CircuitGraph::from_network(&nw);
        assert_eq!(g.len(), 3);
        let v0 = g.vertex(ids[0]).unwrap();
        let v1 = g.vertex(ids[1]).unwrap();
        let v2 = g.vertex(ids[2]).unwrap();
        assert_eq!(g.neighbors(v0), &[(v1, 1)]);
        assert_eq!(g.neighbors(v1), &[(v0, 1), (v2, 1)]);
        assert_eq!(g.neighbors(v2), &[(v1, 1)]);
    }

    #[test]
    fn pi_connections_ignored() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, b]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let cg = CircuitGraph::from_network(&nw);
        // f and g share PIs but no node-to-node edge.
        assert_eq!(cg.len(), 2);
        assert!(cg.neighbors(0).is_empty());
        assert!(cg.neighbors(1).is_empty());
    }

    #[test]
    fn multiple_references_accumulate_weight() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        // f references g in two cubes → edge weight 2.
        let f = nw.add_node("f", sop_of(&[&[g, a], &[g, b]])).unwrap();
        nw.mark_output(f).unwrap();
        let cg = CircuitGraph::from_network(&nw);
        let vf = cg.vertex(f).unwrap();
        let vg = cg.vertex(g).unwrap();
        assert_eq!(cg.neighbors(vf), &[(vg, 2)]);
    }

    #[test]
    fn cut_size_counts_cross_edges() {
        let (nw, ids) = chain();
        let g = CircuitGraph::from_network(&nw);
        let v = |s| g.vertex(s).unwrap();
        let mut assignment = vec![0usize; 3];
        assignment[v(ids[2])] = 1;
        assert_eq!(g.cut_size(&assignment), 1);
        assignment[v(ids[1])] = 1;
        assert_eq!(g.cut_size(&assignment), 1);
        let all_same = vec![0usize; 3];
        assert_eq!(g.cut_size(&all_same), 0);
    }

    #[test]
    fn vertex_weights_are_literal_counts() {
        let (nw, ids) = chain();
        let g = CircuitGraph::from_network(&nw);
        assert_eq!(g.weight(g.vertex(ids[1]).unwrap()), 2);
        assert_eq!(g.total_weight(), 4);
    }
}
