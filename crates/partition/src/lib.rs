#![warn(missing_docs)]

//! # pf-partition — min-cut circuit partitioning
//!
//! The paper's Algorithms I and L both start from a min-cut partition of
//! the circuit: "The circuit is mapped to a graph, by transforming the
//! nodes to vertices and the fanin-fanout relation between node pairs
//! into edges. We apply a min cut based graph partitioning algorithm [6]
//! to partition the circuit into n parts" (§4, citing Sanchis).
//!
//! This crate reimplements that substrate: a [`graph::CircuitGraph`]
//! built from a [`pf_network::Network`], and a direct k-way
//! Fiduccia–Mattheyses-style iterative-improvement partitioner
//! ([`kway`]) with vertex locking, per-pass rollback to the best prefix,
//! and literal-count balance constraints — the same family of heuristics
//! as Sanchis's multiple-way network partitioning.

pub mod graph;
pub mod kway;

pub use graph::CircuitGraph;
pub use kway::{partition_network, Partition, PartitionConfig};
