//! Cross-driver invariants for phase accounting and tracing.
//!
//! Every driver's `ExtractReport.phases` must cover `elapsed`: the
//! per-phase durations are measured against the same monotonic clock and
//! the last phase absorbs the remainder, so their sum stays within a
//! small tolerance of the reported wall-clock time. The tolerance only
//! exists because `elapsed` is sampled once more after the final phase
//! checkpoint.

use pf_core::{
    extract_common_cubes, extract_kernels, independent_extract, independent_extract_cubes,
    iterative_extract, lshaped_extract, lshaped_extract_cubes, replicated_extract,
    CubeExtractConfig, ExtractConfig, ExtractReport, IndependentConfig, IterativeConfig,
    LShapedConfig, LShapedCxConfig, ReplicatedConfig, RunCtl, Tracer,
};
use pf_network::example::example_1_1;
use pf_partition::PartitionConfig;
use std::time::Duration;

/// Phase sums are compared against `elapsed` with a slack that covers the
/// final `Instant::now()` call and summation rounding only.
const SLACK: Duration = Duration::from_millis(2);

fn assert_phases_cover(report: &ExtractReport, expect_names: &[&str], who: &str) {
    let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
    assert_eq!(names, expect_names, "{who}: phase vocabulary");
    let sum = report.phases_total();
    assert!(
        sum <= report.elapsed + SLACK,
        "{who}: phases sum {sum:?} exceeds elapsed {:?}",
        report.elapsed
    );
    assert!(
        sum + SLACK >= report.elapsed,
        "{who}: phases sum {sum:?} does not cover elapsed {:?}",
        report.elapsed
    );
}

#[test]
fn seq_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());
    assert_phases_cover(&report, &["matrix", "pool", "cover"], "seq");
}

#[test]
fn seq_expired_deadline_still_reports_phases() {
    let (mut nw, _) = example_1_1();
    let cfg = ExtractConfig {
        ctl: RunCtl::with_deadline(Duration::ZERO),
        ..ExtractConfig::default()
    };
    let report = extract_kernels(&mut nw, &[], &cfg);
    assert!(report.timed_out);
    assert_phases_cover(&report, &["matrix", "pool", "cover"], "seq early-return");
}

#[test]
fn replicated_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = replicated_extract(&mut nw, &ReplicatedConfig::default());
    assert_phases_cover(&report, &["replicate", "cover"], "replicated");
}

#[test]
fn independent_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = independent_extract(&mut nw, &IndependentConfig::default());
    assert_phases_cover(&report, &["partition", "extract", "merge"], "independent");
}

#[test]
fn lshaped_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = lshaped_extract(&mut nw, &LShapedConfig::default());
    assert_phases_cover(&report, &["setup", "extract", "merge"], "lshaped");
}

#[test]
fn cx_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = extract_common_cubes(&mut nw, &[], &CubeExtractConfig::default());
    assert_phases_cover(&report, &["matrix", "cover"], "cx");
}

#[test]
fn independent_cx_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = independent_extract_cubes(
        &mut nw,
        2,
        &CubeExtractConfig::default(),
        &PartitionConfig::default(),
    );
    assert_phases_cover(
        &report,
        &["partition", "extract", "merge"],
        "independent-cx",
    );
}

#[test]
fn lshaped_cx_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = lshaped_extract_cubes(&mut nw, &LShapedCxConfig::default());
    assert_phases_cover(&report, &["setup", "extract", "merge"], "lshaped-cx");
}

#[test]
fn iterative_phases_cover_elapsed() {
    let (mut nw, _) = example_1_1();
    let report = iterative_extract(&mut nw, &IterativeConfig::default());
    assert_phases_cover(&report, &["extract", "cleanup"], "iterative");
}

/// An armed tracer threaded through a driver records the same span names
/// as the report's phases, plus the per-pass search/apply spans, and the
/// phase spans cover ≥95% of `elapsed` — the invariant the `parafactor
/// profile` subcommand's output rests on.
#[test]
fn armed_trace_spans_cover_report_elapsed() {
    let (mut nw, _) = example_1_1();
    let cfg = ExtractConfig {
        trace: Tracer::armed(),
        ..ExtractConfig::default()
    };
    let report = extract_kernels(&mut nw, &[], &cfg);
    let trace = cfg.trace.take();
    assert_eq!(trace.dropped, 0);

    let covered = trace.span_ns("matrix") + trace.span_ns("cover");
    let elapsed_ns = report.elapsed.as_nanos() as u64;
    assert!(
        covered as f64 >= elapsed_ns as f64 * 0.95,
        "phase spans cover {covered} of {elapsed_ns} ns"
    );

    // One search span per cover pass (successful or final empty one),
    // each carrying the SearchStats counters; one apply per extraction.
    let searches: Vec<_> = trace.events.iter().filter(|e| e.name == "search").collect();
    assert_eq!(searches.len(), report.extractions + 1);
    for s in &searches {
        let keys: Vec<&str> = s.args.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"visited") && keys.contains(&"pruned"));
        assert!(keys.contains(&"bound_updates"));
    }
    let applies = trace.events.iter().filter(|e| e.name == "apply").count();
    assert_eq!(applies, report.extractions);
}

/// Parallel drivers share one tracer across all worker lanes; every
/// worker's spans land in the merged timeline with distinct lane ids.
#[test]
fn parallel_drivers_record_per_worker_lanes() {
    let (mut nw, _) = example_1_1();
    let cfg = IndependentConfig {
        procs: 2,
        extract: ExtractConfig {
            trace: Tracer::armed(),
            ..ExtractConfig::default()
        },
        ..IndependentConfig::default()
    };
    let report = independent_extract(&mut nw, &cfg);
    let trace = cfg.extract.trace.take();
    assert!(trace.lanes.iter().any(|l| l == "independent"));
    assert!(
        trace.lanes.iter().any(|l| l.starts_with("p0_")),
        "worker lanes present: {:?}",
        trace.lanes
    );
    assert!(trace.events.iter().any(|e| e.name == "partition"));
    assert!(trace.events.iter().any(|e| e.name == "merge"));
    let applies = trace.events.iter().filter(|e| e.name == "apply").count();
    assert_eq!(applies, report.extractions);
}
