//! Release-mode guard that a disarmed trace hook stays branch-cheap.
//!
//! The tracing contract (see `pf_core::trace` and `docs/OBSERVABILITY.md`)
//! is that a span start/end pair on a disarmed [`pf_core::Tracer`]
//! compiles down to one inlined `Option` test each — the same deal
//! [`pf_core::RunCtl::fault_point`] makes. This test prices a disarmed
//! span pair against that accepted baseline; if someone accidentally
//! makes the disarmed path allocate, read the clock, or run the lazy
//! args closure, the pair blows past the budget and CI fails.
//!
//! Ignored by default (it is timing-sensitive and only meaningful in
//! release mode); the bench-smoke CI job runs it with
//! `cargo test --release -p pf-core --test trace_overhead -- --ignored`.

use pf_core::{RunCtl, Tracer};
use std::hint::black_box;
use std::time::{Duration, Instant};

#[test]
#[ignore = "timing-sensitive; run in release via the CI bench-smoke job"]
fn disarmed_span_pair_is_branch_cheap() {
    const N: u32 = 5_000_000;

    // Baseline: the accepted zero-cost hook (a disarmed fault point is
    // one pointer-null branch). Warm up once, then time.
    let ctl = RunCtl::new();
    for _ in 0..N / 10 {
        black_box(&ctl).fault_point(black_box("seq:cover"));
    }
    let t0 = Instant::now();
    for _ in 0..N {
        black_box(&ctl).fault_point(black_box("seq:cover"));
    }
    let baseline = t0.elapsed();

    let tracer = Tracer::disarmed();
    let mut lane = tracer.lane("guard");
    for _ in 0..N / 10 {
        let s = black_box(&lane).start(black_box("cover"));
        lane.end_with(s, || vec![("value", 1)]);
    }
    let t1 = Instant::now();
    for _ in 0..N {
        let s = black_box(&lane).start(black_box("cover"));
        lane.end_with(s, || vec![("value", 1)]);
        lane.event(black_box("search"), || vec![("visited", 100)]);
    }
    let hooks = t1.elapsed();

    // Budget: three disarmed hooks (start + end_with + event) may cost
    // at most 10x one fault_point branch, plus a 10ns-per-iteration
    // floor to absorb timer jitter on slow CI machines. A regression
    // that allocates the args vec or reads the clock costs >50ns per
    // hook and lands far outside this.
    let budget = baseline * 10 + Duration::from_nanos(10) * N;
    assert!(
        hooks <= budget,
        "disarmed trace hooks are no longer branch-cheap: \
         {N} iterations took {hooks:?} (budget {budget:?}, \
         fault_point baseline {baseline:?})"
    );

    // And they really recorded nothing.
    drop(lane);
    assert!(tracer.take().events.is_empty());
}
