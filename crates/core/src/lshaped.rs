//! Algorithm L — kernel extraction with L-shaped partitioning and
//! interactions (paper §5, the paper's main contribution).
//!
//! Pipeline:
//!
//! 1. **Partition** the circuit `p` ways (min cut), one processor per
//!    part; processor `i` generates the kernels of its own nodes into a
//!    local matrix `B_i`, labeling rows/columns from `i · offset + 1`
//!    (§5.2) so identities are globally consistent.
//! 2. **Distribute cube ownership** greedily: a kernel cube belongs to
//!    the first processor (in id order) whose matrix contains it — no
//!    two processors search for kernels made of the same cubes.
//! 3. **Exchange** the overlapping blocks: `B_ij`, the entries of `B_i`
//!    in columns owned by `j`, is *copied* to `B_j`. Processor `i` keeps
//!    its full rows, so the off-diagonal blocks are replicated — the
//!    vertical leg of the "L" — and concurrent evaluation of the same
//!    cubes becomes possible.
//! 4. **Extract concurrently.** Each processor repeatedly finds its best
//!    rectangle, valuing cubes through the shared FREE/COVERED/DIVIDED
//!    table (Table 5): a cube covered by another processor's best
//!    rectangle is worth 0 to everyone else but keeps its `trueval` for
//!    the owner. Committing a rectangle claims its cubes; if the
//!    post-claim value collapses (Example 5.2's race) the claims are
//!    released and the search retried. Rows of *foreign* nodes in a
//!    committed rectangle are shipped to the owning processor, which
//!    applies the §5.3 kernel-cost-zero re-check before dividing: if the
//!    partial rectangle is still profitable with the kernel for free, it
//!    re-adds the (Boolean-redundant) covered cubes and divides; else it
//!    divides the node's existing representation algebraically.
//!
//! The same worker logic runs in two modes: `sequential = true` steps
//! the processors round-robin on the calling thread (deterministic —
//! Table 4's single-processor L-shaped results), otherwise each
//! processor is a real thread (Table 6).

use crate::ctl::StopReason;
use crate::merge::{merge_worker_results, NewNode, WorkerResult};
use crate::report::{ExtractReport, PhaseTiming};
use crate::seq::ExtractConfig;
use crate::trace::Lane;
use parking_lot::Mutex;
use pf_kcmatrix::registry::ConcurrentCubeStates;
use pf_kcmatrix::{
    best_rectangles_pooled, best_rectangles_seeded, select_nonconflicting, CeilingUpdate, CubeId,
    CubeRegistry, CubeState, KcMatrix, LabelGen, ProcId, Rectangle, SearchConfig, SearchPool,
};
use pf_network::{Network, SignalId};
use pf_partition::{partition_network, PartitionConfig};
use pf_sop::fx::FxHashMap;
use pf_sop::{divide, Cube, Sop};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Options for [`lshaped_extract`].
#[derive(Clone, Debug)]
pub struct LShapedConfig {
    /// Number of partitions / processors.
    pub procs: usize,
    /// Extraction options (name prefix extended per processor).
    pub extract: ExtractConfig,
    /// Partitioner options.
    pub partition: PartitionConfig,
    /// Run the processors round-robin on one thread (deterministic;
    /// paper Table 4) instead of as real threads (Table 6).
    pub sequential: bool,
    /// Row/column label block size (the paper prints 100 000).
    pub label_offset: u64,
    /// Enable the Table 5 consistency protocol (value/trueval/owner
    /// claims). Disabling it reproduces Example 5.2's double-counted
    /// savings — ablation only, never for production runs.
    pub consistency_protocol: bool,
    /// Enable the §5.3 kernel-cost-zero re-check on shipped partial
    /// rectangles. Disabling it always re-adds the covered cubes before
    /// dividing — the naive behaviour the paper improves on.
    pub division_recheck: bool,
}

impl Default for LShapedConfig {
    fn default() -> Self {
        LShapedConfig {
            procs: 2,
            extract: ExtractConfig::default(),
            partition: PartitionConfig::default(),
            sequential: false,
            label_offset: LabelGen::DEFAULT_OFFSET,
            consistency_protocol: true,
            division_recheck: true,
        }
    }
}

/// The shared FREE/COVERED/DIVIDED table — the lock-free chunked
/// variant, because the rectangle search reads a cube value per matrix
/// entry and per-read locking would serialize the processors.
type SharedStates = ConcurrentCubeStates;

/// Result of one extraction attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepOutcome {
    /// A rectangle was committed.
    Extracted,
    /// The claim race was lost; the search must be retried.
    Conflicted,
    /// No positive rectangle exists right now.
    Nothing,
}

/// One row of a cross-partition rectangle, shipped to the node's owner.
#[derive(Clone, Debug)]
struct ShippedRow {
    node: SignalId,
    cokernel: Cube,
    /// The covered cubes of this row: interned id + the cube itself.
    covered: Vec<(CubeId, Cube)>,
}

/// A partial rectangle shipped to another processor (§5.3).
#[derive(Clone, Debug)]
struct ShippedRect {
    /// Who extracted the rectangle (claims are in this processor's name).
    initiator: ProcId,
    /// The extracted node's variable in the initiator's id block.
    x_var: u32,
    /// The kernel that was extracted.
    kernel: Sop,
    rows: Vec<ShippedRow>,
}

/// Mailboxes + termination counters shared by all processors.
struct Transport {
    queues: Vec<Mutex<VecDeque<ShippedRect>>>,
    sent: AtomicUsize,
    processed: AtomicUsize,
    idle: AtomicUsize,
    /// Bumped whenever a processor releases claimed cubes. Divides and
    /// claims only ever *lower* the values other processors see, so a
    /// worker whose last search found nothing need not re-search until a
    /// release (or local change) happens — this is what lets idle
    /// workers actually sleep instead of re-running fruitless searches.
    releases: AtomicUsize,
}

impl Transport {
    fn new(p: usize) -> Self {
        Transport {
            queues: (0..p).map(|_| Mutex::new(VecDeque::new())).collect(),
            sent: AtomicUsize::new(0),
            processed: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            releases: AtomicUsize::new(0),
        }
    }

    fn send(&self, to: ProcId, rect: ShippedRect) {
        self.sent.fetch_add(1, Ordering::SeqCst);
        self.queues[to as usize].lock().push_back(rect);
    }

    fn try_recv(&self, me: ProcId) -> Option<ShippedRect> {
        let msg = self.queues[me as usize].lock().pop_front();
        if msg.is_some() {
            self.processed.fetch_add(1, Ordering::SeqCst);
        }
        msg
    }

    fn all_drained(&self) -> bool {
        self.sent.load(Ordering::SeqCst) == self.processed.load(Ordering::SeqCst)
    }
}

/// Per-processor worker state.
struct Worker<'a> {
    pid: ProcId,
    matrix: KcMatrix,
    row_labels: LabelGen,
    col_labels: LabelGen,
    /// Functions of the nodes this processor owns (originals of its part
    /// plus the nodes it extracted), in worker id space.
    funcs: FxHashMap<u32, Sop>,
    /// Which original nodes belong to which processor.
    node_owner: &'a FxHashMap<SignalId, ProcId>,
    registry: &'a CubeRegistry,
    states: &'a SharedStates,
    transport: &'a Transport,
    weights: Vec<u32>,
    cfg: &'a LShapedConfig,
    /// Base of this worker's new-node id block.
    id_base: u32,
    new_nodes: Vec<(u32, String)>,
    rewritten: Vec<SignalId>,
    /// Set when the local matrix changed since the last fruitless
    /// search; cleared (with the observed release epoch) on Nothing.
    dirty: bool,
    /// Release epoch observed at the last fruitless search.
    seen_releases: usize,
    extractions: usize,
    total_value: i64,
    shipped: usize,
    budget_exhausted: bool,
    /// Search passes this worker ran (empty-handed ones included).
    passes: usize,
    /// Batch bookkeeping: candidates returned by the plural searches,
    /// and how conflict selection / claim races split them.
    batch_candidates: usize,
    batch_accepted: usize,
    batch_rejected: usize,
    /// Rectangle committed by this worker's previous extraction —
    /// re-validated against the current matrix to seed the next search.
    prev_best: Option<Rectangle>,
    /// Persistent search executor (present iff `par_threads ≥ 1`),
    /// reusing parked workers and scratch across this worker's passes.
    /// Cross-pass ceilings stay **off** here: `CubeStates::release`
    /// (COVERED → FREE) can *raise* cube values between passes, which
    /// would make a remembered upper bound unsound.
    pool: Option<SearchPool>,
    /// This processor's trace lane (`L<pid>`); inert when disarmed.
    lane: Lane,
}

impl Worker<'_> {
    /// Whether this worker owns (may mutate) the given worker-space id.
    fn owns(&self, id: u32) -> bool {
        if let Some(&owner) = self.node_owner.get(&id) {
            return owner == self.pid;
        }
        // Extracted nodes live in their creator's id block.
        self.funcs.contains_key(&id)
    }

    fn refresh_weights(&mut self) {
        self.registry.extend_weights(&mut self.weights);
        self.states.ensure(self.weights.len());
    }

    /// Re-kernelizes one owned node after its function changed.
    fn rebuild_node_rows(&mut self, node: u32) {
        self.matrix.remove_node_rows(node);
        let func = self.funcs[&node].clone();
        self.matrix.add_node_kernels(
            node,
            &func,
            &self.cfg.extract.kernel,
            self.registry,
            &mut self.row_labels,
            &mut self.col_labels,
        );
        self.refresh_weights();
        self.dirty = true;
    }

    /// Processes one shipped partial rectangle (§5.3).
    fn apply_shipped(&mut self, rect: ShippedRect) {
        for row in &rect.rows {
            debug_assert!(self.owns(row.node));
            let Some(f) = self.funcs.get(&row.node).cloned() else {
                continue;
            };
            // Kernel-cost-zero profitability (§5.3): a cube counts its
            // true value only if it is still part of the node's current
            // representation and is not banked by a *third* processor
            // (the initiator's own claims are this rectangle's) nor
            // already divided out. Everything else is worth 0 — that is
            // exactly how Example 5.2's false saving is avoided.
            let mut gain0: i64 = -(row.cokernel.len() as i64 + 1);
            let mut present: Vec<&Cube> = Vec::new();
            for (id, cube) in &row.covered {
                let spent = match self.states.state(*id) {
                    CubeState::Divided => true,
                    CubeState::Covered(owner) => owner != rect.initiator,
                    CubeState::Free => false,
                };
                if f.contains_cube(cube) {
                    present.push(cube);
                    if !spent {
                        gain0 += cube.len() as i64;
                    }
                }
            }
            let x_cube = Cube::single(pf_sop::Var::new(rect.x_var).lit());
            let changed = if gain0 > 0 || !self.cfg.division_recheck {
                // Profitable at kernel cost zero: (re-)complete the row
                // and divide — net effect: drop what is present, add
                // cokernel·x.
                let replacement = row
                    .cokernel
                    .product(&x_cube)
                    .expect("fresh extraction variable");
                let f_new = Sop::from_cubes(
                    f.iter()
                        .filter(|c| !present.contains(c))
                        .cloned()
                        .chain(std::iter::once(replacement)),
                );
                self.funcs.insert(row.node, f_new);
                true
            } else if present.is_empty() && self.cfg.division_recheck {
                // The initiator's view was completely stale — nothing of
                // this partial rectangle survives in the node. Dividing
                // anyway would only churn (incidental quotients keep
                // re-structuring the node); drop it.
                false
            } else {
                // Divide the existing representation instead.
                let div = divide(&f, &rect.kernel);
                if div.quotient.is_zero() {
                    false
                } else {
                    // The quotient may cover more cubes than the shipped
                    // rectangle did; mark all of them DIVIDED so stale
                    // rows on other processors stop valuing them (they
                    // would otherwise keep triggering worthless
                    // extractions of long-gone cubes).
                    for cube in div.quotient.product(&rect.kernel).iter() {
                        if let Some(id) = self.registry.lookup(row.node, cube) {
                            self.states.mark_divided(id);
                        }
                    }
                    let xq = div.quotient.product_cube(&x_cube);
                    self.funcs.insert(row.node, xq.sum(&div.remainder));
                    true
                }
            };
            for (id, _) in &row.covered {
                self.states.mark_divided(*id);
            }
            if changed {
                if self.node_owner.contains_key(&row.node) {
                    self.rewritten.push(row.node);
                }
                self.rebuild_node_rows(row.node);
            }
        }
    }

    /// One extraction attempt.
    fn try_extract(&mut self) -> StepOutcome {
        if self.extractions >= self.cfg.extract.max_extractions {
            return StepOutcome::Nothing;
        }
        // Nothing can have appeared since the last fruitless search
        // unless the local matrix changed or some processor released
        // cubes (divides/claims only lower values).
        let releases_now = self.transport.releases.load(Ordering::SeqCst);
        if !self.dirty && releases_now == self.seen_releases {
            return StepOutcome::Nothing;
        }
        let search_cfg = SearchConfig {
            ..self.cfg.extract.search.clone()
        };
        let weights = &self.weights;
        let states = self.states;
        let pid = self.pid;
        let value_of = move |id: CubeId| {
            let w = weights.get(id as usize).copied().unwrap_or(0);
            states.value_for(id, w, pid)
        };
        let pass = self.lane.start("search");
        // Plural search: the canonical top `search.topk` (the classic
        // single winner when `topk ≤ 1` — the singular entry points are
        // thin wrappers over the same plural engine).
        let (rects, stats) = match self.pool.as_mut() {
            Some(pool) => best_rectangles_pooled(
                &self.matrix,
                &value_of,
                &search_cfg,
                self.prev_best.as_ref(),
                pool,
                CeilingUpdate::Off,
            ),
            None => best_rectangles_seeded(
                &self.matrix,
                &value_of,
                &search_cfg,
                self.prev_best.as_ref(),
            ),
        };
        self.passes += 1;
        self.budget_exhausted |= stats.budget_exhausted;
        crate::seq::end_search_span(&mut self.lane, pass, rects.first(), &stats);
        if rects.is_empty() {
            self.dirty = false;
            self.seen_releases = releases_now;
            return StepOutcome::Nothing;
        }

        // Local conflict-free selection (trivially the single winner
        // when `topk ≤ 1`): node- and column-disjoint members keep their
        // row/column indices and values valid across each other's
        // commits, so they can be claimed and committed back-to-back
        // without an intervening search.
        let remaining = self
            .cfg
            .extract
            .max_extractions
            .saturating_sub(self.extractions);
        let selected = select_nonconflicting(&self.matrix, &rects, remaining);
        self.batch_candidates += rects.len();
        self.batch_rejected += rects.len() - selected.len();

        let mut committed = 0usize;
        let mut conflicted = false;
        let selected_len = selected.len();
        for rect in selected {
            // A claim race on any member aborts the rest of the batch:
            // the rectangle landscape has shifted and must be
            // re-searched before trusting the remaining members.
            if self.try_commit(rect) {
                committed += 1;
                self.batch_accepted += 1;
            } else {
                conflicted = true;
                break;
            }
        }
        // Members lost to the claim race (and the rest of an aborted
        // batch) count as rejected, so candidates = accepted + rejected.
        self.batch_rejected += selected_len - committed;
        if committed > 0 {
            StepOutcome::Extracted
        } else if conflicted {
            StepOutcome::Conflicted
        } else {
            StepOutcome::Nothing
        }
    }

    /// Claims, re-validates and commits one rectangle. Returns whether
    /// it was committed (`false` = lost a claim race — Example 5.2).
    fn try_commit(&mut self, rect: Rectangle) -> bool {
        // Claim every covered cube (speculative cover, Table 5).
        let mut ids: Vec<CubeId> = Vec::new();
        for &r in &rect.rows {
            let row = &self.matrix.rows()[r];
            for &c in &rect.cols {
                ids.push(row.entry(c).expect("rectangle entry"));
            }
        }
        ids.sort_unstable();
        ids.dedup();
        let claimed: Vec<CubeId> = if self.cfg.consistency_protocol {
            ids.iter()
                .copied()
                .filter(|&id| self.states.claim(id, self.pid))
                .collect()
        } else {
            Vec::new()
        };
        // Re-validate under the claims actually held: cubes another
        // processor banked meanwhile are worth 0 now.
        let revalue = if self.cfg.consistency_protocol {
            self.revalue(&rect)
        } else {
            rect.value
        };
        if revalue <= 0 {
            for &id in &claimed {
                self.states.release(id, self.pid);
            }
            if !claimed.is_empty() {
                self.transport.releases.fetch_add(1, Ordering::SeqCst);
            }
            // Another processor banked some of these cubes between the
            // search and the claim (Example 5.2's race). Not idle — the
            // rectangle landscape has changed and must be re-searched.
            return false;
        }

        self.extract(rect, revalue);
        true
    }

    /// Exact current value of a rectangle for this processor.
    fn revalue(&self, rect: &Rectangle) -> i64 {
        let mut seen: Vec<CubeId> = Vec::new();
        let mut total: i64 = -rect
            .cols
            .iter()
            .map(|&c| self.matrix.cols()[c].cube.len() as i64)
            .sum::<i64>();
        for &r in &rect.rows {
            let row = &self.matrix.rows()[r];
            total -= row.cokernel.len() as i64 + 1;
            for &c in &rect.cols {
                let id = row.entry(c).expect("rectangle entry");
                if !seen.contains(&id) {
                    seen.push(id);
                    let w = self.weights.get(id as usize).copied().unwrap_or(0);
                    total += self.states.value_for(id, w, self.pid) as i64;
                }
            }
        }
        total
    }

    /// Commits a claimed rectangle: creates the kernel node, divides own
    /// rows, ships foreign rows to their owners.
    fn extract(&mut self, rect: Rectangle, value: i64) {
        let apply_span = self.lane.start("apply");
        self.prev_best = Some(rect.clone());
        let kernel = rect.kernel(&self.matrix);
        let x_var = self.id_base + self.new_nodes.len() as u32;
        let name = format!(
            "L{}_{}{}",
            self.pid,
            self.cfg.extract.name_prefix,
            self.new_nodes.len()
        );
        self.new_nodes.push((x_var, name));
        self.funcs.insert(x_var, kernel.clone());
        let x_cube = Cube::single(pf_sop::Var::new(x_var).lit());

        // Partition the rectangle's rows: mine vs. per-foreign-owner.
        let mut mine: FxHashMap<u32, (Vec<Cube>, Vec<Cube>)> = FxHashMap::default();
        let mut foreign: FxHashMap<ProcId, Vec<ShippedRow>> = FxHashMap::default();
        let mut own_covered_ids: Vec<CubeId> = Vec::new();
        let mut used_foreign_rows: Vec<usize> = Vec::new();
        for &r in &rect.rows {
            let row = &self.matrix.rows()[r];
            let covered: Vec<(CubeId, Cube)> = rect
                .cols
                .iter()
                .map(|&c| {
                    let id = row.entry(c).expect("rectangle entry");
                    let cube = row
                        .cokernel
                        .product(&self.matrix.cols()[c].cube)
                        .expect("disjoint");
                    (id, cube)
                })
                .collect();
            if self.owns(row.node) {
                let e = mine.entry(row.node).or_default();
                for (id, cube) in covered {
                    own_covered_ids.push(id);
                    e.0.push(cube);
                }
                e.1.push(row.cokernel.product(&x_cube).expect("fresh var"));
            } else {
                let owner = self.node_owner[&row.node];
                foreign.entry(owner).or_default().push(ShippedRow {
                    node: row.node,
                    cokernel: row.cokernel.clone(),
                    covered,
                });
                used_foreign_rows.push(r);
            }
        }
        // A foreign row is one-shot: once shipped, the owner divides (or
        // discards) that node and our copy is obsolete — keeping it
        // would only produce further stale partial rectangles.
        for r in used_foreign_rows {
            self.matrix.tombstone_row(r);
        }

        // Divide my own rows immediately.
        let my_nodes: Vec<u32> = mine.keys().copied().collect();
        for (node, (covered, additions)) in mine {
            let f = self.funcs[&node].clone();
            let f_new = Sop::from_cubes(
                f.iter()
                    .filter(|c| !covered.contains(c))
                    .cloned()
                    .chain(additions),
            );
            self.funcs.insert(node, f_new);
            if self.node_owner.contains_key(&node) {
                self.rewritten.push(node);
            }
        }
        for &id in &own_covered_ids {
            self.states.mark_divided(id);
        }
        for node in my_nodes {
            self.rebuild_node_rows(node);
        }

        // Ship partial rectangles to the owners of foreign rows.
        for (owner, rows) in foreign {
            self.shipped += rows.len();
            self.transport.send(
                owner,
                ShippedRect {
                    initiator: self.pid,
                    x_var,
                    kernel: kernel.clone(),
                    rows,
                },
            );
        }

        // The new node joins this processor's search space.
        if self.cfg.extract.extract_from_new {
            self.matrix.add_node_kernels(
                x_var,
                &kernel,
                &self.cfg.extract.kernel,
                self.registry,
                &mut self.row_labels,
                &mut self.col_labels,
            );
            self.refresh_weights();
        }

        self.extractions += 1;
        self.total_value += value;
        self.dirty = true;
        self.lane.end_with(apply_span, || vec![("value", value)]);
    }

    /// Drains the mailbox; returns whether anything was processed.
    fn drain_queue(&mut self) -> bool {
        let mut any = false;
        while let Some(rect) = self.transport.try_recv(self.pid) {
            self.apply_shipped(rect);
            any = true;
        }
        any
    }

    /// Final result for the merge phase.
    fn into_result(mut self) -> WorkerDone {
        self.rewritten.sort_unstable();
        self.rewritten.dedup();
        let rewritten = self
            .rewritten
            .iter()
            .map(|&n| (n, self.funcs[&n].clone()))
            .collect();
        let new_nodes = self
            .new_nodes
            .iter()
            .map(|(id, name)| NewNode {
                worker_id: *id,
                name: name.clone(),
                func: self.funcs[id].clone(),
            })
            .collect();
        (
            WorkerResult {
                rewritten,
                new_nodes,
            },
            self.extractions,
            self.total_value,
            self.shipped,
            self.budget_exhausted,
            [
                self.passes,
                self.batch_candidates,
                self.batch_accepted,
                self.batch_rejected,
            ],
        )
    }
}

/// Builds the per-processor L-shaped matrices: local kernels, greedy
/// cube-ownership, `B_ij` exchange. Returns the workers (without
/// transport wiring) plus the ownership map for inspection.
fn setup<'a>(
    nw: &Network,
    parts: &[Vec<SignalId>],
    node_owner: &'a FxHashMap<SignalId, ProcId>,
    registry: &'a CubeRegistry,
    states: &'a SharedStates,
    transport: &'a Transport,
    cfg: &'a LShapedConfig,
) -> Vec<Worker<'a>> {
    let p = parts.len();
    let block = 1_000_000u32;
    let id_base0 = (nw.num_signals() as u32 / block + 1) * block;

    // Per-part matrix generation is independent — run it on threads (the
    // paper's processors generate their own B_i concurrently too; the
    // §5.2 label offsets keep identities consistent regardless of
    // interleaving).
    type BuiltPart = (usize, LabelGen, LabelGen, KcMatrix, FxHashMap<u32, Sop>);
    let built: Vec<BuiltPart> = {
        let out = Mutex::new(Vec::with_capacity(p));
        std::thread::scope(|s| {
            for (pid, part) in parts.iter().enumerate() {
                let out = &out;
                s.spawn(move || {
                    let mut row_labels = LabelGen::new(pid as u16, cfg.label_offset);
                    let mut col_labels = LabelGen::new(pid as u16, cfg.label_offset);
                    let mut matrix = KcMatrix::new();
                    let mut funcs = FxHashMap::default();
                    for &node in part {
                        funcs.insert(node, nw.func(node).clone());
                        matrix.add_node_kernels(
                            node,
                            nw.func(node),
                            &cfg.extract.kernel,
                            registry,
                            &mut row_labels,
                            &mut col_labels,
                        );
                    }
                    out.lock()
                        .push((pid, row_labels, col_labels, matrix, funcs));
                });
            }
        });
        let mut v = out.into_inner();
        v.sort_by_key(|(pid, ..)| *pid);
        v
    };

    let mut workers: Vec<Worker> = Vec::with_capacity(p);
    for (pid, row_labels, col_labels, matrix, funcs) in built {
        workers.push(Worker {
            pid: pid as ProcId,
            matrix,
            row_labels,
            col_labels,
            funcs,
            node_owner,
            registry,
            states,
            transport,
            weights: Vec::new(),
            cfg,
            id_base: id_base0 + pid as u32 * block,
            new_nodes: Vec::new(),
            rewritten: Vec::new(),
            dirty: true,
            seen_releases: 0,
            extractions: 0,
            total_value: 0,
            shipped: 0,
            budget_exhausted: false,
            passes: 0,
            batch_candidates: 0,
            batch_accepted: 0,
            batch_rejected: 0,
            prev_best: None,
            pool: {
                let mut pool = (cfg.extract.search.par_threads >= 1).then(SearchPool::new);
                if let Some(p) = pool.as_mut() {
                    p.warm(cfg.extract.search.par_threads);
                }
                pool
            },
            lane: cfg.extract.trace.lane(&format!("L{pid}")),
        });
    }

    // Distribute cube ownership greedily over processors in id order.
    let mut cube_owner: FxHashMap<Cube, ProcId> = FxHashMap::default();
    for (pid, w) in workers.iter().enumerate() {
        for col in w.matrix.cols() {
            cube_owner.entry(col.cube.clone()).or_insert(pid as ProcId);
        }
    }

    // Exchange the B_ij blocks: entries of B_i in columns owned by j are
    // copied to B_j (B_i keeps them — the replicated overlap).
    type RawRow = (u64, u32, Cube, Vec<(Cube, CubeId)>);
    let mut shipments: Vec<Vec<RawRow>> = vec![Vec::new(); p];
    for (i, w) in workers.iter().enumerate() {
        for row in w.matrix.rows() {
            let mut per_owner: FxHashMap<ProcId, Vec<(Cube, CubeId)>> = FxHashMap::default();
            for &(c, id) in &row.entries {
                let cube = &w.matrix.cols()[c].cube;
                let owner = cube_owner[cube];
                if owner as usize != i {
                    per_owner.entry(owner).or_default().push((cube.clone(), id));
                }
            }
            for (owner, entries) in per_owner {
                shipments[owner as usize].push((
                    row.label,
                    row.node,
                    row.cokernel.clone(),
                    entries,
                ));
            }
        }
    }
    for (j, rows) in shipments.into_iter().enumerate() {
        let w = &mut workers[j];
        for (label, node, cokernel, entries) in rows {
            w.matrix
                .add_row_with_entries(label, node, cokernel, entries, &mut w.col_labels);
        }
    }

    states.ensure(registry.len());
    for w in &mut workers {
        w.refresh_weights();
    }
    workers
}

/// Runs Algorithm L on the network, in place.
pub fn lshaped_extract(nw: &mut Network, cfg: &LShapedConfig) -> ExtractReport {
    let mut lane = cfg.extract.trace.lane("lshaped");
    let start = Instant::now();
    let p = cfg.procs.max(1);
    let lc_before = nw.literal_count();

    let setup_span = lane.start("setup");
    let partition = partition_network(nw, p, &cfg.partition);
    let parts: Vec<Vec<SignalId>> = (0..p).map(|q| partition.part_nodes(q)).collect();
    let node_owner: FxHashMap<SignalId, ProcId> = parts
        .iter()
        .enumerate()
        .flat_map(|(pid, ns)| ns.iter().map(move |&n| (n, pid as ProcId)))
        .collect();

    let registry = CubeRegistry::new();
    let states = SharedStates::new();
    let transport = Transport::new(p);
    let workers = setup(nw, &parts, &node_owner, &registry, &states, &transport, cfg);
    lane.end_with(setup_span, || vec![("parts", p as i64)]);
    let setup_elapsed = start.elapsed();

    let extract_span = lane.start("extract");
    let (results, stopped) = if cfg.sequential {
        run_sequential(workers, &transport)
    } else {
        run_threaded(workers, &transport, p)
    };
    lane.end_with(extract_span, || vec![("parts", p as i64)]);
    let extract_elapsed = start.elapsed().saturating_sub(setup_elapsed);

    let mut extractions = 0;
    let mut total_value = 0;
    let mut shipped = 0;
    let mut exhausted = false;
    let mut passes = 0usize;
    let mut batch_counts = [0usize; 3];
    let mut worker_results = Vec::new();
    for (wr, e, v, s, b, [ps, bc, ba, br]) in results {
        worker_results.push(wr);
        extractions += e;
        total_value += v;
        shipped += s;
        exhausted |= b;
        passes += ps;
        batch_counts[0] += bc;
        batch_counts[1] += ba;
        batch_counts[2] += br;
    }
    let merge_span = lane.start("merge");
    let created = merge_worker_results(nw, worker_results).expect("L-shaped merge");
    // A kernel node whose cross-partition divisions all came up empty is
    // dead logic; SIS's scripts would sweep it, we do it here.
    crate::merge::remove_dead_nodes(nw, &created);
    lane.end(merge_span);

    // `stopped` is what the workers actually observed; the reason comes
    // from the control handle (re-read here, after the fact, which is
    // fine: neither flag can un-set itself).
    let (timed_out, cancelled) = if stopped {
        match cfg.extract.ctl.stop_reason() {
            Some(StopReason::Cancelled) => (false, true),
            _ => (true, false),
        }
    } else {
        (false, false)
    };
    let elapsed = start.elapsed();
    let merge_elapsed = elapsed.saturating_sub(setup_elapsed + extract_elapsed);

    ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        budget_exhausted: exhausted,
        shipped_rectangles: shipped,
        timed_out,
        cancelled,
        degraded: false,
        recovery_rects: 0,
        passes,
        batch_candidates: batch_counts[0],
        batch_accepted: batch_counts[1],
        batch_rejected: batch_counts[2],
        resub_pairs_considered: 0,
        resub_pairs_divided: 0,
        resub_worklist_rounds: 0,
        setup: setup_elapsed,
        phases: vec![
            PhaseTiming::new("setup", setup_elapsed),
            PhaseTiming::new("extract", extract_elapsed),
            PhaseTiming::new("merge", merge_elapsed),
        ],
    }
}

/// Deterministic round-robin driver (Table 4 mode). The second return
/// is whether the run was stopped early by its [`RunCtl`](crate::ctl::RunCtl).
/// Per-worker completion record: the worker's result plus its
/// extraction count, value, shipped-rectangle count, budget flag, and
/// `[passes, batch_candidates, batch_accepted, batch_rejected]`.
type WorkerDone = (WorkerResult, usize, i64, usize, bool, [usize; 4]);

fn run_sequential(mut workers: Vec<Worker<'_>>, transport: &Transport) -> (Vec<WorkerDone>, bool) {
    let mut stopped = false;
    loop {
        if let Some(w) = workers.first() {
            w.cfg.extract.ctl.fault_point("lshaped:step");
        }
        if workers
            .first()
            .is_some_and(|w| w.cfg.extract.ctl.should_stop())
        {
            stopped = true;
            break;
        }
        let mut progress = false;
        for w in &mut workers {
            progress |= w.drain_queue();
            // Conflicts cannot happen round-robin (claims are never held
            // across steps), so Extracted is the only progress signal.
            progress |= w.try_extract() == StepOutcome::Extracted;
        }
        if !progress && transport.all_drained() {
            break;
        }
    }
    (
        workers.into_iter().map(Worker::into_result).collect(),
        stopped,
    )
}

/// Threaded driver (Table 6 mode). The second return is whether the run
/// was stopped early by its [`RunCtl`](crate::ctl::RunCtl).
fn run_threaded(
    workers: Vec<Worker<'_>>,
    _transport: &Transport,
    p: usize,
) -> (Vec<WorkerDone>, bool) {
    let out: Mutex<Vec<(usize, WorkerDone)>> = Mutex::new(Vec::new());
    let any_stopped = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for mut w in workers {
            let out = &out;
            let any_stopped = &any_stopped;
            s.spawn(move || {
                let pid = w.pid as usize;
                let mut is_idle = false;
                loop {
                    // Stop check first: every worker shares the handle,
                    // so all of them break here together and the
                    // idle-count termination protocol is never left
                    // waiting on a departed thread. Fault site: latency
                    // and cancel are safe here; a panic would leave the
                    // idle-count protocol waiting on a departed thread.
                    w.cfg.extract.ctl.fault_point("lshaped:step");
                    if w.cfg.extract.ctl.should_stop() {
                        any_stopped.store(true, Ordering::SeqCst);
                        break;
                    }
                    let drained_any = w.drain_queue();
                    let outcome = w.try_extract();
                    if drained_any || outcome == StepOutcome::Extracted {
                        if is_idle {
                            is_idle = false;
                            w.transport.idle.fetch_sub(1, Ordering::SeqCst);
                        }
                        continue;
                    }
                    if outcome == StepOutcome::Conflicted {
                        // Work remains but another processor holds the
                        // cubes; back off (staggered by pid) and retry
                        // without ever counting as idle.
                        if is_idle {
                            is_idle = false;
                            w.transport.idle.fetch_sub(1, Ordering::SeqCst);
                        }
                        std::thread::sleep(std::time::Duration::from_micros(50 * (pid as u64 + 1)));
                        continue;
                    }
                    if !is_idle {
                        is_idle = true;
                        w.transport.idle.fetch_add(1, Ordering::SeqCst);
                    }
                    if w.transport.idle.load(Ordering::SeqCst) == p && w.transport.all_drained() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                out.lock().push((pid, w.into_result()));
            });
        }
    });
    let mut v = out.into_inner();
    v.sort_by_key(|(pid, _)| *pid);
    (
        v.into_iter().map(|(_, r)| r).collect(),
        any_stopped.load(Ordering::SeqCst),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::extract_kernels;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    fn seq_cfg(procs: usize) -> LShapedConfig {
        LShapedConfig {
            procs,
            sequential: true,
            ..LShapedConfig::default()
        }
    }

    #[test]
    fn single_proc_sequential_matches_baseline() {
        let (mut a, _) = example_1_1();
        let (mut b, _) = example_1_1();
        let rep_l = lshaped_extract(&mut a, &seq_cfg(1));
        let rep_s = extract_kernels(&mut b, &[], &ExtractConfig::default());
        assert_eq!(rep_l.lc_after, rep_s.lc_after);
        assert_eq!(rep_l.shipped_rectangles, 0);
    }

    #[test]
    fn two_way_sequential_quality_close_to_sis() {
        // Table 4's claim: L-shaped partitioning degrades quality only
        // negligibly versus the full sequential run.
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let report = lshaped_extract(&mut nw, &seq_cfg(2));
        assert_eq!(report.lc_before, 33);
        assert!(report.lc_after <= 25, "lc_after = {}", report.lc_after);
        assert!(report.lc_after >= 21);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn ctl_cancel_stops_both_driver_modes() {
        for sequential in [true, false] {
            let (mut nw, _) = example_1_1();
            let cfg = LShapedConfig {
                procs: 2,
                sequential,
                ..LShapedConfig::default()
            };
            cfg.extract.ctl.cancel();
            let report = lshaped_extract(&mut nw, &cfg);
            assert!(report.cancelled, "sequential={sequential}");
            assert!(!report.timed_out);
            assert_eq!(report.extractions, 0, "sequential={sequential}");
            assert!(nw.validate().is_ok());
        }
    }

    #[test]
    fn phases_setup_extract_merge() {
        let (mut nw, _) = example_1_1();
        let report = lshaped_extract(&mut nw, &seq_cfg(2));
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["setup", "extract", "merge"]);
        assert_eq!(report.phase("setup"), Some(report.setup));
    }

    #[test]
    fn sequential_mode_is_deterministic() {
        let run = || {
            let (mut nw, _) = example_1_1();
            let r = lshaped_extract(&mut nw, &seq_cfg(2));
            (r.lc_after, r.extractions, r.shipped_rectangles)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn threaded_mode_preserves_function() {
        for procs in [2usize, 3, 4] {
            let (mut nw, _) = example_1_1();
            let original = nw.clone();
            let report = lshaped_extract(
                &mut nw,
                &LShapedConfig {
                    procs,
                    sequential: false,
                    ..LShapedConfig::default()
                },
            );
            assert!(report.lc_after <= report.lc_before);
            assert!(
                equivalent_random(&original, &nw, &EquivConfig::default()).unwrap(),
                "procs={procs}"
            );
            assert!(nw.validate().is_ok());
        }
    }

    #[test]
    fn quality_at_least_as_good_as_independent_on_average_case() {
        // The L-shape sees cross-partition rectangles that Algorithm I
        // cannot; on the paper's example it must not do worse.
        use crate::independent::{independent_extract, IndependentConfig};
        let (mut l, _) = example_1_1();
        lshaped_extract(&mut l, &seq_cfg(2));
        let (mut i, _) = example_1_1();
        independent_extract(
            &mut i,
            &IndependentConfig {
                procs: 2,
                ..IndependentConfig::default()
            },
        );
        assert!(
            l.literal_count() <= i.literal_count(),
            "L {} vs I {}",
            l.literal_count(),
            i.literal_count()
        );
    }

    #[test]
    fn cross_partition_rectangles_are_shipped() {
        // Force the partition that separates F from {G, H}: the a+b
        // rectangle spans both parts, so at least one partial rectangle
        // must travel (unless the partitioner found the other split —
        // then the overlap is still exercised through ownership).
        let (mut nw, _) = example_1_1();
        let report = lshaped_extract(&mut nw, &seq_cfg(2));
        // The example is tiny; just assert the machinery ran and the
        // result is sane. Ship count is partition-dependent.
        assert!(report.extractions >= 1);
    }

    #[test]
    fn paper_label_offsets_in_figure_4_setup() {
        // Example 5.1: processor 1's first kernel row is labeled 100001
        // when the paper's offset is used.
        let (nw, _) = example_1_1();
        let cfg = LShapedConfig {
            procs: 2,
            sequential: true,
            label_offset: LabelGen::PAPER_OFFSET,
            ..LShapedConfig::default()
        };
        let partition = partition_network(&nw, 2, &cfg.partition);
        let parts: Vec<Vec<SignalId>> = (0..2).map(|q| partition.part_nodes(q)).collect();
        let node_owner: FxHashMap<SignalId, ProcId> = parts
            .iter()
            .enumerate()
            .flat_map(|(pid, ns)| ns.iter().map(move |&n| (n, pid as ProcId)))
            .collect();
        let registry = CubeRegistry::new();
        let states = SharedStates::new();
        let transport = Transport::new(2);
        let workers = setup(
            &nw,
            &parts,
            &node_owner,
            &registry,
            &states,
            &transport,
            &cfg,
        );
        assert!(workers[1]
            .matrix
            .rows()
            .iter()
            .all(|r| r.label > 100_000 || !parts[1].contains(&r.node)));
        // Worker 0's matrix contains shipped rows from worker 1 (or vice
        // versa): at least one matrix has rows from both id spaces
        // unless no cube overlap exists (not the case for Eq. 1).
        let mixed = workers.iter().any(|w| {
            let has_own = w.matrix.rows().iter().any(|r| r.label < 100_000);
            let has_foreign = w.matrix.rows().iter().any(|r| r.label > 100_000);
            has_own && has_foreign
        });
        assert!(mixed, "the L-shape must mix rows of both processors");
    }

    #[test]
    fn b_ij_blocks_are_identical_on_both_processors() {
        // §5.2: "the overlapping portions, i.e. the non-diagonal blocks
        // B_ij, have to be same in all of them." For every worker i and
        // every entry of B_i whose kernel cube is owned by j ≠ i, worker
        // j must hold a row with the same label containing the same
        // (kernel cube, interned cube id) entry.
        let (nw, _) = example_1_1();
        for procs in [2usize, 3] {
            let cfg = LShapedConfig {
                procs,
                sequential: true,
                ..LShapedConfig::default()
            };
            let partition = partition_network(&nw, procs, &cfg.partition);
            let parts: Vec<Vec<SignalId>> = (0..procs).map(|q| partition.part_nodes(q)).collect();
            let node_owner: FxHashMap<SignalId, ProcId> = parts
                .iter()
                .enumerate()
                .flat_map(|(pid, ns)| ns.iter().map(move |&n| (n, pid as ProcId)))
                .collect();
            let registry = CubeRegistry::new();
            let states = SharedStates::new();
            let transport = Transport::new(procs);
            let workers = setup(
                &nw,
                &parts,
                &node_owner,
                &registry,
                &states,
                &transport,
                &cfg,
            );
            // Recompute greedy first-seen cube ownership the way setup
            // does: over each worker's *own* columns in processor order.
            // Own columns are exactly the kernels of its part nodes.
            let mut cube_owner: FxHashMap<Cube, usize> = FxHashMap::default();
            for (pid, part) in parts.iter().enumerate() {
                for &n in part {
                    for pair in pf_sop::kernels(nw.func(n)) {
                        for kc in pair.kernel.iter() {
                            cube_owner.entry(kc.clone()).or_insert(pid);
                        }
                    }
                }
            }
            for (i, wi) in workers.iter().enumerate() {
                for row in wi.matrix.rows() {
                    // Only this worker's own rows (its part's nodes).
                    if node_owner.get(&row.node) != Some(&(i as ProcId)) {
                        continue;
                    }
                    for &(c, id) in &row.entries {
                        let cube = &wi.matrix.cols()[c].cube;
                        let j = cube_owner[cube];
                        if j == i {
                            continue;
                        }
                        let wj = &workers[j];
                        let found = wj.matrix.rows().iter().any(|rj| {
                            rj.label == row.label
                                && rj.node == row.node
                                && rj.entries.iter().any(|&(cj, idj)| {
                                    idj == id && &wj.matrix.cols()[cj].cube == cube
                                })
                        });
                        assert!(
                            found,
                            "procs={procs}: B_{i}{j} entry (row {}, cube {cube}) \
                             missing on processor {j}",
                            row.label
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_lshaped_keeps_quality_and_counts() {
        // Batched L-shaped workers pull top-K per search and commit the
        // non-conflicting subset via claim/revalue, so quality must stay
        // within tolerance of the one-per-pass run and the batch
        // counters must balance (candidates = accepted + rejected).
        let profile = pf_workloads::CircuitProfile::small("lbatch", 13);
        let base = pf_workloads::generate(&profile);

        let mut classic_nw = base.clone();
        let classic = lshaped_extract(&mut classic_nw, &seq_cfg(2));
        assert!(classic.extractions >= 1);

        for topk in [4usize, 16] {
            let mut nw = base.clone();
            let original = nw.clone();
            let mut cfg = seq_cfg(2);
            cfg.extract.search.topk = topk;
            let report = lshaped_extract(&mut nw, &cfg);
            assert!(nw.validate().is_ok(), "topk={topk}");
            assert!(
                equivalent_random(&original, &nw, &EquivConfig::default()).unwrap(),
                "topk={topk}"
            );
            assert!(report.passes >= 1, "topk={topk}");
            assert_eq!(
                report.batch_candidates,
                report.batch_accepted + report.batch_rejected,
                "topk={topk}"
            );
            assert!(
                report.batch_accepted >= report.extractions.min(1),
                "topk={topk}"
            );
            // Quality tolerance: within 1% of the one-per-pass L-shaped run.
            let tol = classic.lc_after + classic.lc_after.div_ceil(100);
            assert!(
                report.lc_after <= tol,
                "topk={topk}: lc {} vs classic {}",
                report.lc_after,
                classic.lc_after
            );
        }
    }
}
