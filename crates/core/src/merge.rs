//! Merging per-processor results back into the main network.
//!
//! Both partitioned algorithms (I and L) let each worker create new
//! nodes under its own id space (a clone's tail ids for Algorithm I, a
//! per-processor id block for Algorithm L). [`merge_worker_results`]
//! folds everything back into one dense network: new nodes are added
//! first with placeholder functions so the variable map is complete,
//! then every function — new or rewritten — is remapped through that
//! map. Order does not matter because the network allows forward
//! references until validation.

use pf_network::{Network, NetworkError, SignalId};
use pf_sop::fx::FxHashMap;
use pf_sop::{Cube, Lit, Sop, Var};

/// A new node created by a worker, in the worker's id space.
#[derive(Clone, Debug)]
pub struct NewNode {
    /// The id the worker used for this node's variable.
    pub worker_id: u32,
    /// Unique name (workers prefix with their processor id).
    pub name: String,
    /// Function, possibly referencing other worker ids.
    pub func: Sop,
}

/// One worker's contribution: rewritten original nodes and new nodes.
#[derive(Clone, Debug, Default)]
pub struct WorkerResult {
    /// `(original node, its new function)` — may reference worker ids.
    pub rewritten: Vec<(SignalId, Sop)>,
    /// Nodes the worker created, any order.
    pub new_nodes: Vec<NewNode>,
}

/// Rewrites a function through the worker-id → main-id map. Ids not in
/// the map are passed through (original network signals).
pub fn remap_sop(f: &Sop, map: &FxHashMap<u32, u32>) -> Sop {
    Sop::from_cubes(f.iter().map(|cube| {
        Cube::from_lits(cube.iter().map(|l| {
            let idx = l.var().index();
            let idx = map.get(&idx).copied().unwrap_or(idx);
            Lit::new(Var::new(idx), l.is_negated())
        }))
    }))
}

/// Merges every worker's result into `nw`. Returns the ids of the newly
/// created nodes.
pub fn merge_worker_results(
    nw: &mut Network,
    results: Vec<WorkerResult>,
) -> Result<Vec<SignalId>, NetworkError> {
    let mut map: FxHashMap<u32, u32> = FxHashMap::default();
    let mut created = Vec::new();
    // Pass 1: declare all new nodes so the id map is total.
    for r in &results {
        for n in &r.new_nodes {
            let id = nw.add_node(n.name.clone(), Sop::zero())?;
            map.insert(n.worker_id, id);
            created.push(id);
        }
    }
    // Pass 2: install remapped functions.
    for r in &results {
        for n in &r.new_nodes {
            let id = map[&n.worker_id];
            nw.set_func(id, remap_sop(&n.func, &map))?;
        }
        for (node, func) in &r.rewritten {
            nw.set_func(*node, remap_sop(func, &map))?;
        }
    }
    nw.validate()?;
    Ok(created)
}

/// Zeroes out extracted nodes that ended up with no fanouts (a shipped
/// partial rectangle whose receiver's division came up empty leaves its
/// kernel node dead). Iterates to a fixpoint — a dead node's removal can
/// orphan the nodes it referenced. Returns how many nodes were cleared.
pub fn remove_dead_nodes(nw: &mut Network, candidates: &[SignalId]) -> usize {
    let mut removed = 0usize;
    loop {
        let fo = nw.fanout_map();
        let mut changed = false;
        for &c in candidates {
            if nw.outputs().contains(&c) || nw.func(c).is_zero() {
                continue;
            }
            if fo[c as usize].iter().all(|&u| nw.func(u).is_zero()) {
                nw.set_func(c, Sop::zero()).expect("candidate is a node");
                removed += 1;
                changed = true;
            }
        }
        if !changed {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    #[test]
    fn remap_changes_only_mapped_vars() {
        let mut map = FxHashMap::default();
        map.insert(100u32, 3u32);
        let f = sop_of(&[&[100, 1], &[2]]);
        assert_eq!(remap_sop(&f, &map), sop_of(&[&[3, 1], &[2]]));
    }

    #[test]
    fn remap_preserves_phase() {
        let mut map = FxHashMap::default();
        map.insert(50u32, 7u32);
        let f = Sop::from_cube(Cube::from_lits([Lit::neg(50)]));
        let r = remap_sop(&f, &map);
        assert_eq!(r, Sop::from_cube(Cube::from_lits([Lit::neg(7)])));
    }

    #[test]
    fn merge_two_workers_with_cross_references() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, b]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[a], &[b]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();

        // Worker 0 created node id 1000 (X = a + b) and rewrote f = X·?…
        let w0 = WorkerResult {
            rewritten: vec![(f, sop_of(&[&[1000]]))],
            new_nodes: vec![NewNode {
                worker_id: 1000,
                name: "p0_x".into(),
                func: sop_of(&[&[a, b]]),
            }],
        };
        // Worker 1 created id 2000 referencing worker 0's id 1000.
        let w1 = WorkerResult {
            rewritten: vec![(g, sop_of(&[&[2000]]))],
            new_nodes: vec![NewNode {
                worker_id: 2000,
                name: "p1_y".into(),
                func: sop_of(&[&[1000], &[a]]),
            }],
        };
        let created = merge_worker_results(&mut nw, vec![w0, w1]).unwrap();
        assert_eq!(created.len(), 2);
        assert!(nw.validate().is_ok());
        let x = nw.find("p0_x").unwrap();
        let y = nw.find("p1_y").unwrap();
        assert!(nw.fanins(y).contains(&x), "cross-worker reference remapped");
        assert_eq!(nw.fanins(f), vec![x]);
        assert_eq!(nw.fanins(g), vec![y]);
    }

    #[test]
    fn merge_empty_results_is_noop() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        nw.mark_output(f).unwrap();
        let lc = nw.literal_count();
        let created = merge_worker_results(&mut nw, vec![WorkerResult::default()]).unwrap();
        assert!(created.is_empty());
        assert_eq!(nw.literal_count(), lc);
    }

    #[test]
    fn duplicate_new_node_names_rejected() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a]])).unwrap();
        nw.mark_output(f).unwrap();
        let mk = |wid: u32| WorkerResult {
            rewritten: vec![],
            new_nodes: vec![NewNode {
                worker_id: wid,
                name: "dup".into(),
                func: sop_of(&[&[a]]),
            }],
        };
        assert!(merge_worker_results(&mut nw, vec![mk(1000), mk(2000)]).is_err());
    }

    use pf_network::Network;
}
