//! Algorithm L applied to **cube extraction** — the paper's concluding
//! generality claim, completed.
//!
//! §6: "Thus we have successfully developed parallel algorithms for the
//! minimum-weighted rectangle cover problem", applicable to any
//! optimization formulated as a rectangle cover. Kernel extraction
//! covers the co-kernel cube matrix; *cube* extraction covers the
//! cube–literal matrix. This module transplants the L-shaped scheme onto
//! the second formulation:
//!
//! * rows = network cubes, owned by the processor owning the node;
//! * columns = literals; ownership is distributed greedily first-seen,
//!   exactly like kernel-cube ownership in §5.1;
//! * the overlap: each processor keeps its own rows and receives the
//!   foreign rows that contain literals it owns (restricted to those
//!   literals it can see in full rows — the cube itself travels, the
//!   search is limited to common cubes within owned literals);
//! * concurrent extraction uses the same FREE/COVERED/DIVIDED protocol
//!   over *row cubes*: a processor speculatively covers the rows of its
//!   best common cube; rows covered by another processor are worth 0;
//! * cross-partition rows are shipped to their owner, which rewrites
//!   the cube `c → (c \ C)·X` if the cube is still present (the analogue
//!   of the §5.3 re-check: a vanished cube is simply dropped).

use crate::merge::{merge_worker_results, NewNode, WorkerResult};
use crate::report::{ExtractReport, PhaseTiming};
use parking_lot::Mutex;
use pf_kcmatrix::registry::ConcurrentCubeStates;
use pf_kcmatrix::{CubeLitMatrix, CubeRegistry, ProcId};
use pf_network::{Network, SignalId};
use pf_partition::{partition_network, PartitionConfig};
use pf_sop::fx::FxHashMap;
use pf_sop::{Cube, Lit, Sop};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Options for [`lshaped_extract_cubes`].
#[derive(Clone, Debug)]
pub struct LShapedCxConfig {
    /// Number of partitions / processors.
    pub procs: usize,
    /// Partitioner options.
    pub partition: PartitionConfig,
    /// Pairwise candidate budget per search.
    pub max_pairs: usize,
    /// Hard cap on extractions per processor.
    pub max_extractions: usize,
    /// Run round-robin on the calling thread (deterministic) instead of
    /// threaded.
    pub sequential: bool,
}

impl Default for LShapedCxConfig {
    fn default() -> Self {
        LShapedCxConfig {
            procs: 2,
            partition: PartitionConfig::default(),
            max_pairs: 1 << 20,
            max_extractions: usize::MAX,
            sequential: false,
        }
    }
}

/// A row shipped to the owner of its node: rewrite `cube` to
/// `(cube \ common)·x` if still present.
#[derive(Clone, Debug)]
struct ShippedCubeRow {
    node: SignalId,
    cube: Cube,
}

#[derive(Clone, Debug)]
struct ShippedCommonCube {
    x_var: u32,
    common: Cube,
    rows: Vec<ShippedCubeRow>,
}

struct CxTransport {
    queues: Vec<Mutex<VecDeque<ShippedCommonCube>>>,
    sent: AtomicUsize,
    processed: AtomicUsize,
    idle: AtomicUsize,
}

impl CxTransport {
    fn new(p: usize) -> Self {
        CxTransport {
            queues: (0..p).map(|_| Mutex::new(VecDeque::new())).collect(),
            sent: AtomicUsize::new(0),
            processed: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
        }
    }

    fn send(&self, to: ProcId, msg: ShippedCommonCube) {
        self.sent.fetch_add(1, Ordering::SeqCst);
        self.queues[to as usize].lock().push_back(msg);
    }

    fn try_recv(&self, me: ProcId) -> Option<ShippedCommonCube> {
        let msg = self.queues[me as usize].lock().pop_front();
        if msg.is_some() {
            self.processed.fetch_add(1, Ordering::SeqCst);
        }
        msg
    }

    fn all_drained(&self) -> bool {
        self.sent.load(Ordering::SeqCst) == self.processed.load(Ordering::SeqCst)
    }
}

struct CxWorker<'a> {
    pid: ProcId,
    /// Node functions this worker owns (part nodes + its new nodes).
    funcs: FxHashMap<u32, Sop>,
    /// Foreign rows visible through the L-shape overlap: `(node, cube)`
    /// of cubes containing literals this worker owns.
    foreign_rows: Vec<(SignalId, Cube)>,
    node_owner: &'a FxHashMap<SignalId, ProcId>,
    registry: &'a CubeRegistry,
    states: &'a ConcurrentCubeStates,
    transport: &'a CxTransport,
    cfg: &'a LShapedCxConfig,
    id_base: u32,
    new_nodes: Vec<(u32, String)>,
    rewritten: Vec<SignalId>,
    extractions: usize,
    total_value: i64,
    shipped: usize,
    dirty: bool,
}

impl CxWorker<'_> {
    fn owns(&self, node: u32) -> bool {
        match self.node_owner.get(&node) {
            Some(&o) => o == self.pid,
            None => self.funcs.contains_key(&node),
        }
    }

    /// Builds this worker's current cube–literal matrix: own rows plus
    /// the still-live foreign overlap rows.
    fn build_matrix(&self) -> (CubeLitMatrix, Vec<(SignalId, Cube)>) {
        let mut m = CubeLitMatrix::new();
        let mut row_src: Vec<(SignalId, Cube)> = Vec::new();
        for (&node, func) in &self.funcs {
            for cube in func.iter() {
                if cube.len() < 2 {
                    continue;
                }
                m.add_node(node, &Sop::from_cube(cube.clone()));
                row_src.push((node, cube.clone()));
            }
        }
        for (node, cube) in &self.foreign_rows {
            let id = self.registry.lookup(*node, cube);
            let alive = id
                .is_none_or(|id| !matches!(self.states.state(id), pf_kcmatrix::CubeState::Divided));
            if alive {
                m.add_node(*node, &Sop::from_cube(cube.clone()));
                row_src.push((*node, cube.clone()));
            }
        }
        (m, row_src)
    }

    fn drain_queue(&mut self) -> bool {
        let mut any = false;
        while let Some(msg) = self.transport.try_recv(self.pid) {
            self.apply_shipped(msg);
            any = true;
        }
        any
    }

    fn apply_shipped(&mut self, msg: ShippedCommonCube) {
        let x_cube = Cube::single(pf_sop::Var::new(msg.x_var).lit());
        for row in &msg.rows {
            debug_assert!(self.owns(row.node));
            let Some(f) = self.funcs.get(&row.node).cloned() else {
                continue;
            };
            // §5.3 analogue: only rewrite what is still present.
            if !f.contains_cube(&row.cube) {
                continue;
            }
            let rewritten = row
                .cube
                .quotient(&msg.common)
                .and_then(|rest| rest.product(&x_cube));
            let Some(new_cube) = rewritten else { continue };
            let f_new = Sop::from_cubes(
                f.iter()
                    .filter(|c| *c != &row.cube)
                    .cloned()
                    .chain(std::iter::once(new_cube)),
            );
            self.funcs.insert(row.node, f_new);
            if self.node_owner.contains_key(&row.node) {
                self.rewritten.push(row.node);
            }
            if let Some(id) = self.registry.lookup(row.node, &row.cube) {
                self.states.mark_divided(id);
            }
            self.dirty = true;
        }
    }

    fn try_extract(&mut self) -> bool {
        if self.extractions >= self.cfg.max_extractions || !self.dirty {
            return false;
        }
        let (m, row_src) = self.build_matrix();
        // Value rows through the shared states: rows covered or divided
        // elsewhere are worthless. The CubeLitMatrix search itself is
        // state-blind, so filter afterwards and re-validate.
        let Some(best) = m.best_common_cube(self.cfg.max_pairs) else {
            self.dirty = false;
            return false;
        };
        // Claim the rows (by interned cube id); drop rows we cannot get.
        let mut kept: Vec<usize> = Vec::new();
        let mut claimed: Vec<pf_kcmatrix::CubeId> = Vec::new();
        for &r in &best.rows {
            let (node, cube) = &row_src[r];
            let id = self.registry.intern(*node, cube);
            self.states.ensure(self.registry.len());
            if self.states.claim(id, self.pid) {
                kept.push(r);
                claimed.push(id);
            }
        }
        let value = kept.len() as i64 * (best.cube.len() as i64 - 1) - best.cube.len() as i64;
        if value <= 0 {
            for id in claimed {
                self.states.release(id, self.pid);
            }
            // Another processor holds the overlap; try again later.
            return false;
        }

        // Commit: create X = common cube, rewrite own rows, ship others.
        let x_var = self.id_base + self.new_nodes.len() as u32;
        let name = format!("Lcx{}_{}", self.pid, self.new_nodes.len());
        self.new_nodes.push((x_var, name));
        self.funcs.insert(x_var, Sop::from_cube(best.cube.clone()));
        let x_cube = Cube::single(pf_sop::Var::new(x_var).lit());

        let mut foreign: FxHashMap<ProcId, Vec<ShippedCubeRow>> = FxHashMap::default();
        for (&r, &id) in kept.iter().zip(claimed.iter()) {
            let (node, cube) = row_src[r].clone();
            if self.owns(node) {
                let f = self.funcs[&node].clone();
                if !f.contains_cube(&cube) {
                    continue;
                }
                let Some(new_cube) = cube
                    .quotient(&best.cube)
                    .and_then(|rest| rest.product(&x_cube))
                else {
                    continue;
                };
                let f_new = Sop::from_cubes(
                    f.iter()
                        .filter(|c| *c != &cube)
                        .cloned()
                        .chain(std::iter::once(new_cube)),
                );
                self.funcs.insert(node, f_new);
                if self.node_owner.contains_key(&node) {
                    self.rewritten.push(node);
                }
                self.states.mark_divided(id);
            } else {
                let owner = self.node_owner[&node];
                foreign
                    .entry(owner)
                    .or_default()
                    .push(ShippedCubeRow { node, cube });
            }
        }
        // One-shot foreign rows, exactly like the kernel variant.
        self.foreign_rows.retain(|(node, cube)| {
            !foreign
                .values()
                .flatten()
                .any(|r| r.node == *node && &r.cube == cube)
        });
        for (owner, rows) in foreign {
            self.shipped += rows.len();
            self.transport.send(
                owner,
                ShippedCommonCube {
                    x_var,
                    common: best.cube.clone(),
                    rows,
                },
            );
        }
        self.extractions += 1;
        self.total_value += value;
        self.dirty = true;
        true
    }

    fn into_result(mut self) -> (WorkerResult, usize, i64, usize) {
        self.rewritten.sort_unstable();
        self.rewritten.dedup();
        let rewritten = self
            .rewritten
            .iter()
            .map(|&n| (n, self.funcs[&n].clone()))
            .collect();
        let new_nodes = self
            .new_nodes
            .iter()
            .map(|(id, name)| NewNode {
                worker_id: *id,
                name: name.clone(),
                func: self.funcs[id].clone(),
            })
            .collect();
        (
            WorkerResult {
                rewritten,
                new_nodes,
            },
            self.extractions,
            self.total_value,
            self.shipped,
        )
    }
}

/// Runs L-shaped parallel cube extraction on the network, in place.
pub fn lshaped_extract_cubes(nw: &mut Network, cfg: &LShapedCxConfig) -> ExtractReport {
    let start = Instant::now();
    let p = cfg.procs.max(1);
    let lc_before = nw.literal_count();

    let partition = partition_network(nw, p, &cfg.partition);
    let parts: Vec<Vec<SignalId>> = (0..p).map(|q| partition.part_nodes(q)).collect();
    let node_owner: FxHashMap<SignalId, ProcId> = parts
        .iter()
        .enumerate()
        .flat_map(|(pid, ns)| ns.iter().map(move |&n| (n, pid as ProcId)))
        .collect();

    // Literal ownership: greedy first-seen over processors in order —
    // the distribute_cube_ownership of §5.1, with literals as columns.
    let mut lit_owner: FxHashMap<Lit, ProcId> = FxHashMap::default();
    for (pid, part) in parts.iter().enumerate() {
        for &n in part {
            for cube in nw.func(n).iter() {
                for l in cube.iter() {
                    lit_owner.entry(l).or_insert(pid as ProcId);
                }
            }
        }
    }

    let registry = CubeRegistry::new();
    let states = ConcurrentCubeStates::new();
    states.ensure(1);
    let transport = CxTransport::new(p);
    let block = 1_000_000u32;
    let id_base0 = (nw.num_signals() as u32 / block + 1) * block;

    let mut workers: Vec<CxWorker> = Vec::with_capacity(p);
    for (pid, part) in parts.iter().enumerate() {
        let mut funcs = FxHashMap::default();
        for &n in part {
            funcs.insert(n, nw.func(n).clone());
        }
        workers.push(CxWorker {
            pid: pid as ProcId,
            funcs,
            foreign_rows: Vec::new(),
            node_owner: &node_owner,
            registry: &registry,
            states: &states,
            transport: &transport,
            cfg,
            id_base: id_base0 + pid as u32 * block,
            new_nodes: Vec::new(),
            rewritten: Vec::new(),
            extractions: 0,
            total_value: 0,
            shipped: 0,
            dirty: true,
        });
    }
    // Exchange: a cube containing a literal owned by processor j is
    // visible to j as an overlap row (the vertical leg).
    let mut overlaps: Vec<Vec<(SignalId, Cube)>> = vec![Vec::new(); p];
    for (pid, part) in parts.iter().enumerate() {
        for &n in part {
            for cube in nw.func(n).iter() {
                if cube.len() < 2 {
                    continue;
                }
                let mut sent_to: Vec<ProcId> = Vec::new();
                for l in cube.iter() {
                    let owner = lit_owner[&l];
                    if owner as usize != pid && !sent_to.contains(&owner) {
                        sent_to.push(owner);
                        overlaps[owner as usize].push((n, cube.clone()));
                    }
                }
            }
        }
    }
    for (w, rows) in workers.iter_mut().zip(overlaps) {
        w.foreign_rows = rows;
    }
    let setup_elapsed = start.elapsed();

    let results: Vec<(WorkerResult, usize, i64, usize)> = if cfg.sequential {
        loop {
            let mut progress = false;
            for w in &mut workers {
                progress |= w.drain_queue();
                progress |= w.try_extract();
            }
            if !progress && transport.all_drained() {
                break;
            }
        }
        workers.into_iter().map(CxWorker::into_result).collect()
    } else {
        type Done = (WorkerResult, usize, i64, usize);
        let out: Mutex<Vec<(usize, Done)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for mut w in workers {
                let out = &out;
                s.spawn(move || {
                    let pid = w.pid as usize;
                    let mut is_idle = false;
                    loop {
                        let progress = w.drain_queue() | w.try_extract();
                        if progress {
                            if is_idle {
                                is_idle = false;
                                w.transport.idle.fetch_sub(1, Ordering::SeqCst);
                            }
                            continue;
                        }
                        if !is_idle {
                            is_idle = true;
                            w.transport.idle.fetch_add(1, Ordering::SeqCst);
                        }
                        if w.transport.idle.load(Ordering::SeqCst) == p && w.transport.all_drained()
                        {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    out.lock().push((pid, w.into_result()));
                });
            }
        });
        let mut v = out.into_inner();
        v.sort_by_key(|(pid, _)| *pid);
        v.into_iter().map(|(_, r)| r).collect()
    };
    let extract_elapsed = start.elapsed().saturating_sub(setup_elapsed);

    let mut extractions = 0;
    let mut total_value = 0;
    let mut shipped = 0;
    let mut worker_results = Vec::new();
    for (wr, e, v, s) in results {
        worker_results.push(wr);
        extractions += e;
        total_value += v;
        shipped += s;
    }
    let created = merge_worker_results(nw, worker_results).expect("L-cx merge");
    crate::merge::remove_dead_nodes(nw, &created);
    let elapsed = start.elapsed();
    let merge_elapsed = elapsed.saturating_sub(setup_elapsed + extract_elapsed);

    ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        shipped_rectangles: shipped,
        setup: setup_elapsed,
        phases: vec![
            PhaseTiming::new("setup", setup_elapsed),
            PhaseTiming::new("extract", extract_elapsed),
            PhaseTiming::new("merge", merge_elapsed),
        ],
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    #[test]
    fn sequential_mode_extracts_shared_cubes() {
        // The example network shares the cube "de" across F and H.
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let r = lshaped_extract_cubes(
            &mut nw,
            &LShapedCxConfig {
                procs: 2,
                sequential: true,
                ..LShapedCxConfig::default()
            },
        );
        assert!(r.lc_after <= r.lc_before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn threaded_mode_preserves_function() {
        for procs in [2usize, 3] {
            let (mut nw, _) = example_1_1();
            let original = nw.clone();
            let r = lshaped_extract_cubes(
                &mut nw,
                &LShapedCxConfig {
                    procs,
                    sequential: false,
                    ..LShapedCxConfig::default()
                },
            );
            assert!(r.lc_after <= r.lc_before, "procs={procs}");
            assert!(
                equivalent_random(&original, &nw, &EquivConfig::default()).unwrap(),
                "procs={procs}"
            );
        }
    }

    #[test]
    fn single_proc_matches_plain_cube_extraction_quality() {
        let (mut a, _) = example_1_1();
        let ra = lshaped_extract_cubes(
            &mut a,
            &LShapedCxConfig {
                procs: 1,
                sequential: true,
                ..LShapedCxConfig::default()
            },
        );
        let (mut b, _) = example_1_1();
        let rb =
            crate::cx::extract_common_cubes(&mut b, &[], &crate::cx::CubeExtractConfig::default());
        assert_eq!(ra.lc_after, rb.lc_after);
    }

    #[test]
    fn cross_partition_cubes_are_found() {
        // Two nodes in different parts share the 3-literal cube abc; the
        // L overlap must still find it (Algorithm I on this matrix could
        // not — each part sees only one row).
        use pf_sop::Lit;
        let sop_of = |cubes: &[&[u32]]| {
            Sop::from_cubes(
                cubes
                    .iter()
                    .map(|cs| Cube::from_lits(cs.iter().map(|&v| Lit::pos(v)))),
            )
        };
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let d = nw.add_input("d").unwrap();
        let e = nw.add_input("e").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, b, c, d]])).unwrap();
        let g = nw.add_node("g", sop_of(&[&[a, b, c, e], &[f, d]])).unwrap();
        nw.mark_output(g).unwrap();
        nw.mark_output(f).unwrap();
        let original = nw.clone();
        let r = lshaped_extract_cubes(
            &mut nw,
            &LShapedCxConfig {
                procs: 2,
                sequential: true,
                ..LShapedCxConfig::default()
            },
        );
        // abc in 2 rows: value = 2·2 − 3 = 1 ⇒ extracted.
        assert!(r.extractions >= 1, "cross-partition cube missed");
        assert!(r.lc_after < r.lc_before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }
}
