//! Span/event tracing for the extraction drivers.
//!
//! The paper's argument is built on *where time goes* (Table 1's 61%
//! figure, Tables 2–4's per-algorithm breakdowns); this module records
//! exactly that, cheaply enough to leave compiled in everywhere.
//!
//! Design mirrors [`crate::ctl::RunCtl::fault_point`]: a [`Tracer`]
//! wraps `Option<Arc<..>>`, so every hook on a **disarmed** tracer is a
//! single pointer-null branch — proved by the `trace_plane` microbench
//! next to `fault_plane`. When armed, each worker thread opens a
//! [`Lane`]: a plain owned ring buffer written without any
//! synchronisation on the hot path (lock-free by construction — the
//! shared registry is locked only at lane open/flush). Lanes flush into
//! the shared trace on drop; [`Tracer::take`] collects the merged,
//! time-sorted event list.
//!
//! Span names are stable and machine-readable. Phase spans reuse the
//! exact [`crate::report::PhaseTiming`] names (`matrix`, `cover`,
//! `replicate`, `partition`, `extract`, `merge`, `setup`); per-pass
//! spans are `search` / `apply` with the chosen rectangle's
//! value/rows/cols and the [`pf_kcmatrix::SearchStats`] counters
//! (`visited`, `pruned`, `bound_updates`) as integer args. See
//! `docs/OBSERVABILITY.md` for the full vocabulary.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Events kept per lane before the ring wraps (most recent win).
pub const DEFAULT_LANE_CAPACITY: usize = 8192;

/// One completed span (or instantaneous event, `dur_ns == 0`).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Stable span name (phase names, `search`, `apply`, …).
    pub name: &'static str,
    /// Lane (≈ thread) the event was recorded on.
    pub lane: u32,
    /// Start, as nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// Small integer payload, e.g. `("value", 8)`, `("visited", 152)`.
    pub args: Vec<(&'static str, i64)>,
}

/// A finished trace: every flushed event, time-sorted, plus loss info.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All events, sorted by `start_ns` (ties broken by lane).
    pub events: Vec<TraceEvent>,
    /// Lane labels, indexed by lane id (`events[i].lane`).
    pub lanes: Vec<String>,
    /// Events lost to ring-buffer wrap-around across all lanes.
    pub dropped: u64,
}

impl Trace {
    /// Total nanoseconds covered by events named `name`.
    pub fn span_ns(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur_ns)
            .sum()
    }
}

struct TraceShared {
    epoch: Instant,
    lane_capacity: usize,
    next_lane: AtomicU32,
    dropped: AtomicU64,
    /// Flushed lane buffers; locked only at lane registration/flush.
    done: Mutex<DoneState>,
}

#[derive(Default)]
struct DoneState {
    events: Vec<TraceEvent>,
    labels: Vec<(u32, String)>,
}

/// Cheap cloneable handle; `None` inside = disarmed (the default).
///
/// Stored on `ExtractConfig`, so cloning a config (replicated workers,
/// independent partitions, nested drivers) shares one trace.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceShared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("armed", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// The disarmed tracer: every hook is a single branch.
    pub fn disarmed() -> Self {
        Tracer { inner: None }
    }

    /// An armed tracer with the default per-lane ring capacity.
    pub fn armed() -> Self {
        Self::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// An armed tracer keeping at most `lane_capacity` events per lane
    /// (the most recent win; older events count into `Trace::dropped`).
    pub fn with_capacity(lane_capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TraceShared {
                epoch: Instant::now(),
                lane_capacity: lane_capacity.max(1),
                next_lane: AtomicU32::new(0),
                dropped: AtomicU64::new(0),
                done: Mutex::new(DoneState::default()),
            })),
        }
    }

    /// Whether any hook will record. One branch — callers may also just
    /// call the hooks unconditionally.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a lane (one per recording thread). Disarmed tracers hand
    /// out inert lanes for free; armed lane registration takes the
    /// shared lock once (cold).
    #[inline]
    pub fn lane(&self, label: &str) -> Lane {
        match &self.inner {
            None => Lane {
                shared: None,
                id: 0,
                buf: Vec::new(),
                write: 0,
                wrapped: false,
            },
            Some(shared) => Self::lane_slow(shared, label),
        }
    }

    #[cold]
    fn lane_slow(shared: &Arc<TraceShared>, label: &str) -> Lane {
        let id = shared.next_lane.fetch_add(1, Relaxed);
        shared
            .done
            .lock()
            .expect("trace registry poisoned")
            .labels
            .push((id, label.to_string()));
        Lane {
            shared: Some(Arc::clone(shared)),
            id,
            buf: Vec::new(),
            write: 0,
            wrapped: false,
        }
    }

    /// Collects everything flushed so far into a time-sorted [`Trace`].
    /// Lanes still open keep their buffered events; flush them first by
    /// dropping them (drivers do — their lanes die before they return).
    pub fn take(&self) -> Trace {
        let Some(shared) = &self.inner else {
            return Trace::default();
        };
        let mut done = shared.done.lock().expect("trace registry poisoned");
        let mut events = std::mem::take(&mut done.events);
        let labels = std::mem::take(&mut done.labels);
        drop(done);
        events.sort_by_key(|e| (e.start_ns, e.lane));
        let nlanes = labels.iter().map(|&(id, _)| id + 1).max().unwrap_or(0);
        let mut lanes = vec![String::new(); nlanes as usize];
        for (id, label) in labels {
            lanes[id as usize] = label;
        }
        Trace {
            events,
            lanes,
            dropped: shared.dropped.swap(0, Relaxed),
        }
    }
}

/// An in-flight span: name plus armed-only start instant. Finish it
/// with [`Lane::end`] / [`Lane::end_with`]; dropping it records
/// nothing.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// One thread's event ring. The hot path (`start`/`end`/`end_with`)
/// touches only owned memory — no locks, no atomics; disarmed lanes
/// reduce every call to a branch on `shared`.
pub struct Lane {
    shared: Option<Arc<TraceShared>>,
    id: u32,
    buf: Vec<TraceEvent>,
    /// Next ring slot once `buf` is at capacity.
    write: usize,
    wrapped: bool,
}

impl Lane {
    /// Starts a span. Disarmed: one branch, no clock read.
    #[inline]
    pub fn start(&self, name: &'static str) -> Span {
        Span {
            name,
            start: if self.shared.is_some() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Ends a span with no args.
    #[inline]
    pub fn end(&mut self, span: Span) {
        if let Some(start) = span.start {
            self.push_slow(span.name, start, Instant::now(), Vec::new());
        }
    }

    /// Ends a span with args built lazily — the closure never runs on a
    /// disarmed lane, so arg construction costs nothing when tracing is
    /// off.
    #[inline]
    pub fn end_with<F>(&mut self, span: Span, args: F)
    where
        F: FnOnce() -> Vec<(&'static str, i64)>,
    {
        if let Some(start) = span.start {
            // Sample the end first so arg construction (allocation) does
            // not inflate the span.
            let end = Instant::now();
            let args = args();
            self.push_slow(span.name, start, end, args);
        }
    }

    /// Records an instantaneous event (duration 0), args built lazily.
    #[inline]
    pub fn event<F>(&mut self, name: &'static str, args: F)
    where
        F: FnOnce() -> Vec<(&'static str, i64)>,
    {
        if self.shared.is_some() {
            let args = args();
            let now = Instant::now();
            self.push_slow(name, now, now, args);
        }
    }

    #[cold]
    fn push_slow(
        &mut self,
        name: &'static str,
        start: Instant,
        end: Instant,
        args: Vec<(&'static str, i64)>,
    ) {
        let shared = self.shared.as_ref().expect("armed lane");
        let start_ns = start.saturating_duration_since(shared.epoch).as_nanos() as u64;
        let end_ns = end.saturating_duration_since(shared.epoch).as_nanos() as u64;
        let ev = TraceEvent {
            name,
            lane: self.id,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            args,
        };
        if self.buf.len() < shared.lane_capacity {
            self.buf.push(ev);
        } else {
            // Ring wrap: keep the most recent events, count the loss.
            self.buf[self.write] = ev;
            self.write = (self.write + 1) % self.buf.len();
            self.wrapped = true;
            shared.dropped.fetch_add(1, Relaxed);
        }
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        let Some(shared) = &self.shared else {
            return;
        };
        if self.buf.is_empty() {
            return;
        }
        let mut done = shared.done.lock().expect("trace registry poisoned");
        if self.wrapped {
            // Rotate so the flushed slice is chronological.
            done.events.extend_from_slice(&self.buf[self.write..]);
            done.events.extend_from_slice(&self.buf[..self.write]);
        } else {
            done.events.append(&mut self.buf);
        }
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_lane_records_nothing() {
        let t = Tracer::disarmed();
        let mut lane = t.lane("x");
        let s = lane.start("matrix");
        lane.end(s);
        lane.event("search", || panic!("args closure must not run disarmed"));
        drop(lane);
        let trace = t.take();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn armed_lane_records_spans_and_events() {
        let t = Tracer::armed();
        let mut lane = t.lane("seq");
        let s = lane.start("cover");
        std::thread::sleep(std::time::Duration::from_millis(1));
        lane.end_with(s, || vec![("value", 8), ("rows", 4)]);
        lane.event("apply", || vec![("value", 8)]);
        drop(lane);
        let trace = t.take();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.lanes, vec!["seq".to_string()]);
        let cover = &trace.events[0];
        assert_eq!(cover.name, "cover");
        assert!(cover.dur_ns >= 1_000_000);
        assert_eq!(cover.args, vec![("value", 8), ("rows", 4)]);
        let apply = &trace.events[1];
        assert_eq!(apply.name, "apply");
        assert_eq!(apply.dur_ns, 0);
        // Events are time-sorted.
        assert!(trace.events[0].start_ns <= trace.events[1].start_ns);
    }

    #[test]
    fn ring_wraps_keep_most_recent_and_count_drops() {
        let t = Tracer::with_capacity(4);
        let mut lane = t.lane("w");
        for _ in 0..10 {
            let s = lane.start("search");
            lane.end(s);
        }
        drop(lane);
        let trace = t.take();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
        // Chronological even after wrap.
        for pair in trace.events.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns);
        }
    }

    #[test]
    fn lanes_merge_across_threads() {
        let t = Tracer::armed();
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    let mut lane = t.lane(&format!("p{i}"));
                    let sp = lane.start("extract");
                    lane.end(sp);
                });
            }
        });
        let trace = t.take();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.lanes.len(), 4);
        let mut lanes: Vec<u32> = trace.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 4, "each thread got its own lane");
    }

    #[test]
    fn take_drains_and_second_take_is_empty() {
        let t = Tracer::armed();
        let mut lane = t.lane("a");
        let s = lane.start("setup");
        lane.end(s);
        drop(lane);
        assert_eq!(t.take().events.len(), 1);
        assert!(t.take().events.is_empty());
    }
}
