//! Cache-aware extraction entry points.
//!
//! These wrap the drivers with a [`pf_cache::ExtractionCache`]: an exact
//! hit replays the memoized factored network (byte-identical to the cold
//! run — the stored value *is* the cold run's output), a near hit
//! warm-starts the engine from the previous run's first-pass hints, and
//! completed cold runs are admitted for the next submission. Callers own
//! the key: it must cover everything that affects the result (algorithm,
//! network content, target restriction, any non-default extraction
//! options) — [`pf_kcmatrix::network_digest`] plus
//! [`pf_kcmatrix::Digest::combine`] is the intended toolkit.

use crate::report::{ExtractReport, PhaseTiming};
use crate::seq::{extract_kernels_pooled, extract_kernels_warm, ExtractConfig};
use crate::trace::Tracer;
use pf_cache::{delta, CachedResult, ExtractionCache, WarmStart};
use pf_kcmatrix::{Digest, SearchPool};
use pf_network::{Network, SignalId};
use std::time::Instant;

/// A borrowed cache plus this job's keys and admission decision.
pub struct CacheHandle<'a> {
    /// The shared cache.
    pub cache: &'a ExtractionCache,
    /// Exact-hit key: must cover everything result-affecting (the
    /// algorithm, the network content digest, structural options).
    pub key: Digest,
    /// Warm-start key: the network content digest alone, so hints flow
    /// between configurations that share the same initial matrix.
    pub warm_key: Digest,
    /// Whether a completed result may be admitted. Callers clear this
    /// for quarantined (previously faulting) jobs so a poisoned
    /// fingerprint can never serve future submissions from the cache.
    pub admit: bool,
}

/// What the cache did for one job — the worker folds these into the
/// service metrics (`cache_lookups == cache_hits + cache_misses`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheEvents {
    /// Exact-key lookups performed (0 or 1 per job).
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real run.
    pub misses: u64,
    /// Entries evicted by this job's insert.
    pub evicted: u64,
    /// Whether warm-start hints were found and seeded (0 or 1).
    pub warm: u64,
    /// Whether this job's result was admitted (0 or 1).
    pub inserted: u64,
}

impl CacheEvents {
    fn looked_up() -> Self {
        CacheEvents {
            lookups: 1,
            ..Default::default()
        }
    }
}

/// Serves a hit: swaps in the memoized network and builds a well-formed
/// report — non-empty `phases` (one `cache` phase absorbing the whole
/// elapsed time, so the phases-sum-to-elapsed invariant holds) and the
/// cold run's quality numbers.
fn replay(nw: &mut Network, trace: &Tracer, hit: &CachedResult, start: Instant) -> ExtractReport {
    let mut lane = trace.lane("cache");
    let span = lane.start("cache");
    *nw = hit.network.clone();
    lane.end_with(span, || {
        vec![
            ("lc_before", hit.lc_before as i64),
            ("lc_after", hit.lc_after as i64),
            ("extractions", hit.extractions as i64),
        ]
    });
    let elapsed = start.elapsed();
    ExtractReport {
        lc_before: hit.lc_before,
        lc_after: hit.lc_after,
        extractions: hit.extractions,
        total_value: hit.total_value,
        elapsed,
        phases: vec![PhaseTiming::new("cache", elapsed)],
        ..Default::default()
    }
}

fn admit(
    h: &CacheHandle<'_>,
    nw: &Network,
    report: &ExtractReport,
    cone_digests: std::collections::HashMap<String, Digest>,
    warm: Option<WarmStart>,
    events: &mut CacheEvents,
) {
    events.inserted = 1;
    events.evicted = h.cache.insert(
        h.key,
        h.warm_key,
        CachedResult {
            network: nw.clone(),
            lc_before: report.lc_before,
            lc_after: report.lc_after,
            extractions: report.extractions,
            total_value: report.total_value,
            cone_digests,
        },
        warm,
    );
}

/// [`extract_kernels_pooled`] behind a cache: exact hits replay, misses
/// run cold — warm-started when hints for this content are resident —
/// and completed, admissible results are memoized together with their
/// first-pass warm hints.
pub fn extract_kernels_cached(
    nw: &mut Network,
    targets: &[SignalId],
    cfg: &ExtractConfig,
    pool: &mut Option<SearchPool>,
    handle: Option<&CacheHandle<'_>>,
) -> (ExtractReport, CacheEvents) {
    let Some(h) = handle else {
        let report = extract_kernels_pooled(nw, targets, cfg, pool);
        return (report, CacheEvents::default());
    };
    let start = Instant::now();
    let mut events = CacheEvents::looked_up();
    if let Some(hit) = h.cache.lookup(&h.key) {
        events.hits = 1;
        return (replay(nw, &cfg.trace, &hit, start), events);
    }
    events.misses = 1;
    let warm = h.cache.warm_hints(&h.warm_key);
    events.warm = warm.is_some() as u64;
    // Cone digests must describe the pre-extraction network; capture
    // them before the run mutates it.
    let digests = h.admit.then(|| delta::cone_digests(nw));
    let mut capture = None;
    let report = extract_kernels_warm(nw, targets, cfg, pool, warm.as_deref(), Some(&mut capture));
    if let Some(cone_digests) = digests.filter(|_| report.completed()) {
        admit(h, nw, &report, cone_digests, capture, &mut events);
    }
    (report, events)
}

/// Serves an exact hit if one is resident, without running anything on a
/// miss. The service's delta-submit path uses this to answer "already
/// cached?" before resolving its base network.
pub fn try_replay(
    nw: &mut Network,
    trace: &Tracer,
    handle: &CacheHandle<'_>,
) -> Option<ExtractReport> {
    let start = Instant::now();
    let hit = handle.cache.lookup(&handle.key)?;
    Some(replay(nw, trace, &hit, start))
}

/// Cache wrapper for the parallel drivers (any `run` closure producing
/// an [`ExtractReport`]): exact hits replay, misses run the driver and
/// admit completed results. No warm seeding — the parallel drivers
/// manage their own engines — but their memoized results still serve
/// future exact hits.
pub fn run_cached(
    nw: &mut Network,
    trace: &Tracer,
    handle: Option<&CacheHandle<'_>>,
    run: impl FnOnce(&mut Network) -> ExtractReport,
) -> (ExtractReport, CacheEvents) {
    let Some(h) = handle else {
        return (run(nw), CacheEvents::default());
    };
    let start = Instant::now();
    let mut events = CacheEvents::looked_up();
    if let Some(hit) = h.cache.lookup(&h.key) {
        events.hits = 1;
        return (replay(nw, trace, &hit, start), events);
    }
    events.misses = 1;
    let digests = h.admit.then(|| delta::cone_digests(nw));
    let report = run(nw);
    if let Some(cone_digests) = digests.filter(|_| report.completed()) {
        admit(h, nw, &report, cone_digests, None, &mut events);
    }
    (report, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_cache::CacheConfig;
    use pf_kcmatrix::network_digest;
    use pf_network::example::example_1_1;

    fn dump(n: &Network) -> Vec<String> {
        let mut v: Vec<String> = n
            .node_ids()
            .map(|id| format!("{}={:?}", n.name(id), n.func(id)))
            .collect();
        v.sort();
        v
    }

    fn handle<'a>(cache: &'a ExtractionCache, nw: &Network, admit: bool) -> CacheHandle<'a> {
        let content = network_digest(nw);
        CacheHandle {
            cache,
            key: Digest::of_str("seq").combine(content),
            warm_key: content,
            admit,
        }
    }

    #[test]
    fn exact_hit_replays_byte_identically_with_cache_phase() {
        let cache = ExtractionCache::new(CacheConfig::default());
        let (mut cold, _) = example_1_1();
        let h = handle(&cache, &cold, true);
        let cfg = ExtractConfig::default();
        let mut pool = None;
        let (cold_report, ev) = extract_kernels_cached(&mut cold, &[], &cfg, &mut pool, Some(&h));
        assert_eq!((ev.hits, ev.misses, ev.inserted), (0, 1, 1));

        let (mut warm, _) = example_1_1();
        let h2 = handle(&cache, &warm, true);
        let (hit_report, ev2) = extract_kernels_cached(&mut warm, &[], &cfg, &mut pool, Some(&h2));
        assert_eq!((ev2.hits, ev2.misses, ev2.inserted), (1, 0, 0));
        assert_eq!(dump(&warm), dump(&cold), "replay is byte-identical");
        assert_eq!(hit_report.lc_before, cold_report.lc_before);
        assert_eq!(hit_report.lc_after, cold_report.lc_after);
        assert_eq!(hit_report.extractions, cold_report.extractions);
        assert_eq!(hit_report.total_value, cold_report.total_value);
        // Satellite 2: a cache-served job still emits a well-formed
        // report — a non-empty phase list summing to elapsed.
        assert_eq!(hit_report.phases.len(), 1);
        assert_eq!(hit_report.phases[0].name, "cache");
        assert_eq!(hit_report.phases_total(), hit_report.elapsed);
    }

    #[test]
    fn warm_start_after_eviction_matches_cold_run() {
        // Capacity 1: filling a second entry evicts the first's result
        // but its warm hints survive — the resubmission takes the
        // warm-started cold path and must still match a plain cold run.
        let cache = ExtractionCache::new(CacheConfig {
            entries: 1,
            ttl: None,
        });
        let mut cfg = ExtractConfig::default();
        cfg.search.par_threads = 2; // pooled → ceilings exist
        let mut pool = None;

        let (mut first, _) = example_1_1();
        let h = handle(&cache, &first, true);
        let warm_key = h.warm_key;
        extract_kernels_cached(&mut first, &[], &cfg, &mut pool, Some(&h));

        // Evict the result entry with an unrelated insert.
        cache.insert(
            Digest::of_str("other"),
            Digest::of_str("other-warm"),
            CachedResult {
                network: Network::new(),
                lc_before: 0,
                lc_after: 0,
                extractions: 0,
                total_value: 0,
                cone_digests: Default::default(),
            },
            None,
        );
        assert!(cache.warm_hints(&warm_key).is_some(), "hints survive");

        let (mut resub, _) = example_1_1();
        let h2 = handle(&cache, &resub, true);
        let (report, ev) = extract_kernels_cached(&mut resub, &[], &cfg, &mut pool, Some(&h2));
        assert_eq!((ev.hits, ev.misses, ev.warm), (0, 1, 1));
        assert_eq!(dump(&resub), dump(&first), "warm run is byte-identical");
        assert_eq!(report.lc_after, 21);
        assert!(!report.phases.is_empty());
    }

    #[test]
    fn non_admissible_results_are_never_inserted() {
        let cache = ExtractionCache::new(CacheConfig::default());
        let (mut nw, _) = example_1_1();
        let h = handle(&cache, &nw, false);
        let cfg = ExtractConfig::default();
        let mut pool = None;
        let (_, ev) = extract_kernels_cached(&mut nw, &[], &cfg, &mut pool, Some(&h));
        assert_eq!(ev.inserted, 0);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn run_cached_serves_parallel_drivers() {
        use crate::replicated::{replicated_extract, ReplicatedConfig};
        let cache = ExtractionCache::new(CacheConfig::default());
        let tracer = Tracer::disarmed();
        let rcfg = ReplicatedConfig::default();

        let (mut cold, _) = example_1_1();
        let content = network_digest(&cold);
        let key = Digest::of_str("replicated")
            .combine(content)
            .combine(Digest::of_bytes(&(rcfg.procs as u64).to_le_bytes()));
        let h = CacheHandle {
            cache: &cache,
            key,
            warm_key: content,
            admit: true,
        };
        let (cold_report, ev) = run_cached(&mut cold, &tracer, Some(&h), |nw| {
            replicated_extract(nw, &rcfg)
        });
        assert_eq!(ev.misses, 1);
        assert_eq!(ev.inserted, 1);

        let (mut again, _) = example_1_1();
        let (hit_report, ev2) = run_cached(&mut again, &tracer, Some(&h), |nw| {
            replicated_extract(nw, &rcfg)
        });
        assert_eq!(ev2.hits, 1);
        assert_eq!(dump(&again), dump(&cold));
        assert_eq!(hit_report.lc_after, cold_report.lc_after);
        assert_eq!(hit_report.phases[0].name, "cache");
    }
}
