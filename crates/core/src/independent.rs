//! Algorithm I — kernel extraction on independent circuit partitions
//! (paper §4).
//!
//! A min-cut partitioner slices the circuit into `p` parts — row-wise
//! slices of the conceptual global KC matrix (Figure 2). Each worker
//! extracts kernels from its own part with **no interaction**: rectangles
//! spanning two parts are invisible, and the same kernel may be
//! extracted separately in several parts (Example 4.1's duplicated
//! `a + b`). In exchange the search spaces shrink super-linearly, which
//! is where the paper's super-linear speedups (16.3× on ex1010) come
//! from.

use crate::merge::{merge_worker_results, NewNode, WorkerResult};
use crate::report::{ExtractReport, PhaseTiming};
use crate::seq::{extract_kernels, ExtractConfig};
use pf_network::{Network, SignalId};
use pf_partition::{partition_network, PartitionConfig};
use std::sync::Mutex;
use std::time::Instant;

/// Options for [`independent_extract`].
#[derive(Clone, Debug)]
pub struct IndependentConfig {
    /// Number of partitions / workers.
    pub procs: usize,
    /// Extraction options per worker (the name prefix is extended with
    /// the worker id automatically).
    pub extract: ExtractConfig,
    /// Partitioner options.
    pub partition: PartitionConfig,
}

impl Default for IndependentConfig {
    fn default() -> Self {
        IndependentConfig {
            procs: 2,
            extract: ExtractConfig::default(),
            partition: PartitionConfig::default(),
        }
    }
}

/// Runs Algorithm I on the network, in place.
pub fn independent_extract(nw: &mut Network, cfg: &IndependentConfig) -> ExtractReport {
    // Driver-level lane: partition and merge happen here; the per-worker
    // extract spans come from each worker's nested `extract_kernels`
    // (whose config — and therefore the shared Tracer — is cloned).
    // Opened before the clock so registration cost stays out of phases.
    let mut lane = cfg.extract.trace.lane("independent");
    let start = Instant::now();
    let p = cfg.procs.max(1);
    let lc_before = nw.literal_count();
    let n0 = nw.num_signals() as u32;

    let partition_span = lane.start("partition");
    let partition = partition_network(nw, p, &cfg.partition);
    let parts: Vec<Vec<SignalId>> = (0..p).map(|q| partition.part_nodes(q)).collect();
    lane.end_with(partition_span, || vec![("parts", p as i64)]);
    let partition_elapsed = start.elapsed();

    let results: Mutex<Vec<(WorkerResult, ExtractReport)>> = Mutex::new(Vec::new());
    let nw_ref: &Network = nw;
    // Driver-level extract span: brackets spawn + all workers + join, so
    // it matches the report's `extract` phase (worker lanes carry their
    // own nested matrix/cover spans).
    let extract_span = lane.start("extract");
    std::thread::scope(|s| {
        for (pid, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let results = &results;
            let cfg = &cfg;
            s.spawn(move || {
                // Each worker optimizes a full clone but only targets its
                // own part — exactly "each processor independently
                // creates its own KC matrix and performs kernel
                // extraction" on a row slice.
                let mut local = nw_ref.clone();
                let worker_cfg = ExtractConfig {
                    name_prefix: format!("p{pid}_{}", cfg.extract.name_prefix),
                    ..cfg.extract.clone()
                };
                // With `search.par_threads ≥ 1` the nested run owns a
                // persistent SearchPool for its whole cover loop (one
                // pool per worker, warmed in the run's pool phase).
                let report = extract_kernels(&mut local, part, &worker_cfg);
                // Every clone allocates new-node ids from the same point
                // (`n0`), so shift this worker's ids into a private block
                // before the merge sees them.
                let block_base = (pid as u32 + 1) * 10_000_000;
                let id_map: pf_sop::fx::FxHashMap<u32, u32> = (n0..local.num_signals() as u32)
                    .map(|id| (id, block_base + (id - n0)))
                    .collect();
                let mut wr = WorkerResult::default();
                for &node in part.iter() {
                    if local.func(node) != nw_ref.func(node) {
                        wr.rewritten
                            .push((node, crate::merge::remap_sop(local.func(node), &id_map)));
                    }
                }
                for id in n0..local.num_signals() as u32 {
                    wr.new_nodes.push(NewNode {
                        worker_id: id_map[&id],
                        name: local.name(id).to_string(),
                        func: crate::merge::remap_sop(local.func(id), &id_map),
                    });
                }
                results.lock().unwrap().push((wr, report));
            });
        }
    });

    lane.end_with(extract_span, || vec![("parts", p as i64)]);
    let extract_elapsed = start.elapsed().saturating_sub(partition_elapsed);

    // Between the workers' scope join and the merge: a panic injected
    // here unwinds on the driver thread only (the workers, which also
    // pass the shared handle through `seq:cover`, are already joined).
    cfg.extract.ctl.fault_point("independent:merge");

    let mut worker_results = Vec::new();
    let mut extractions = 0usize;
    let mut total_value = 0i64;
    let mut budget_exhausted = false;
    // Each worker's extract_kernels checks the shared RunCtl itself (the
    // handle inside cfg.extract is cloned, not re-created); a stop in any
    // part marks the whole run.
    let mut timed_out = false;
    let mut cancelled = false;
    let mut passes = 0usize;
    let mut batch_candidates = 0usize;
    let mut batch_accepted = 0usize;
    let mut batch_rejected = 0usize;
    for (wr, rep) in results.into_inner().unwrap() {
        worker_results.push(wr);
        extractions += rep.extractions;
        total_value += rep.total_value;
        budget_exhausted |= rep.budget_exhausted;
        timed_out |= rep.timed_out;
        cancelled |= rep.cancelled;
        passes += rep.passes;
        batch_candidates += rep.batch_candidates;
        batch_accepted += rep.batch_accepted;
        batch_rejected += rep.batch_rejected;
    }
    // A cancellation that lands between the workers' join and the merge
    // (e.g. injected at `independent:merge`) never reaches a worker
    // report, so fold the shared flag in directly.
    cancelled |= cfg.extract.ctl.is_cancelled();
    let merge_span = lane.start("merge");
    merge_worker_results(nw, worker_results).expect("merge of disjoint parts");
    lane.end(merge_span);
    let elapsed = start.elapsed();
    let merge_elapsed = elapsed.saturating_sub(partition_elapsed + extract_elapsed);

    ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        budget_exhausted,
        shipped_rectangles: 0,
        timed_out,
        cancelled,
        degraded: false,
        recovery_rects: 0,
        passes,
        batch_candidates,
        batch_accepted,
        batch_rejected,
        resub_pairs_considered: 0,
        resub_pairs_divided: 0,
        resub_worklist_rounds: 0,
        setup: partition_elapsed,
        phases: vec![
            PhaseTiming::new("partition", partition_elapsed),
            PhaseTiming::new("extract", extract_elapsed),
            PhaseTiming::new("merge", merge_elapsed),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    #[test]
    fn example_4_1_partition_quality_loss() {
        // With the {F} / {G,H} style 2-way partition the paper reaches 26
        // literals instead of the sequential 22 (our exact cover: 21).
        // The partitioner may pick either orientation; quality must land
        // strictly between the sequential optimum and the initial LC.
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let report = independent_extract(
            &mut nw,
            &IndependentConfig {
                procs: 2,
                ..IndependentConfig::default()
            },
        );
        assert_eq!(report.lc_before, 33);
        assert!(report.lc_after < 33, "some extraction must happen");
        assert!(report.lc_after >= 21, "cannot beat the full-matrix optimum");
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn single_part_equals_sequential() {
        let (mut a, _) = example_1_1();
        let (mut b, _) = example_1_1();
        let rep_i = independent_extract(
            &mut a,
            &IndependentConfig {
                procs: 1,
                ..IndependentConfig::default()
            },
        );
        let rep_s = extract_kernels(&mut b, &[], &ExtractConfig::default());
        assert_eq!(rep_i.lc_after, rep_s.lc_after);
        assert_eq!(rep_i.extractions, rep_s.extractions);
    }

    #[test]
    fn six_procs_on_three_nodes_works() {
        // More processors than nodes: surplus parts are empty, as when
        // the paper runs 6 CPUs on small circuits.
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let report = independent_extract(
            &mut nw,
            &IndependentConfig {
                procs: 6,
                ..IndependentConfig::default()
            },
        );
        assert!(report.lc_after <= report.lc_before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn shared_ctl_stops_all_workers() {
        let (mut nw, _) = example_1_1();
        let cfg = IndependentConfig {
            procs: 2,
            ..IndependentConfig::default()
        };
        cfg.extract.ctl.cancel();
        let report = independent_extract(&mut nw, &cfg);
        assert!(report.cancelled);
        assert_eq!(report.extractions, 0);
        assert_eq!(report.lc_after, report.lc_before);
    }

    #[test]
    fn phases_partition_extract_merge() {
        let (mut nw, _) = example_1_1();
        let report = independent_extract(&mut nw, &IndependentConfig::default());
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["partition", "extract", "merge"]);
        assert_eq!(report.phase("partition"), Some(report.setup));
    }

    #[test]
    fn new_nodes_carry_worker_prefix() {
        let (mut nw, _) = example_1_1();
        independent_extract(
            &mut nw,
            &IndependentConfig {
                procs: 2,
                ..IndependentConfig::default()
            },
        );
        let any_prefixed = nw
            .node_ids()
            .any(|n| nw.name(n).starts_with("p0_kx_") || nw.name(n).starts_with("p1_kx_"));
        assert!(any_prefixed, "worker-created nodes are namespaced");
    }

    #[test]
    fn quality_ordering_vs_sequential() {
        // Sequential ≤ independent LC on the same circuit (the paper's
        // Table 3 quality degradation).
        let (mut s, _) = example_1_1();
        extract_kernels(&mut s, &[], &ExtractConfig::default());
        for procs in [2usize, 3] {
            let (mut i, _) = example_1_1();
            independent_extract(
                &mut i,
                &IndependentConfig {
                    procs,
                    ..IndependentConfig::default()
                },
            );
            assert!(
                s.literal_count() <= i.literal_count(),
                "procs={procs}: {} vs {}",
                s.literal_count(),
                i.literal_count()
            );
        }
    }
}
