//! Result types shared by the extraction drivers.

use crate::ctl::{RunCtl, StopReason};
use std::time::Duration;

/// Wall-clock time of one named phase of a run (matrix generation,
/// partitioning, concurrent extraction, merge, …). Names are
/// per-algorithm; see each driver's documentation.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    /// Phase name (stable, machine-readable: `"partition"`, `"matrix"`,
    /// `"cover"`, `"merge"`, …).
    pub name: &'static str,
    /// Time spent in the phase.
    pub elapsed: Duration,
}

impl PhaseTiming {
    /// Convenience constructor.
    pub fn new(name: &'static str, elapsed: Duration) -> Self {
        PhaseTiming { name, elapsed }
    }
}

/// What one extraction run did to a network.
#[derive(Clone, Debug, Default)]
pub struct ExtractReport {
    /// Literal count before.
    pub lc_before: usize,
    /// Literal count after.
    pub lc_after: usize,
    /// Number of rectangles extracted (new nodes created).
    pub extractions: usize,
    /// Sum of rectangle values (expected literal savings).
    pub total_value: i64,
    /// Wall-clock time of the optimization itself.
    pub elapsed: Duration,
    /// Whether any rectangle search exhausted its budget and returned
    /// the greedy fallback.
    pub budget_exhausted: bool,
    /// Number of cross-partition partial rectangles shipped between
    /// processors (Algorithms L only; 0 elsewhere).
    pub shipped_rectangles: usize,
    /// Whether the run hit its wall-clock deadline and stopped early
    /// (Table 2's "did not terminate" entries).
    pub timed_out: bool,
    /// Whether the run was cancelled externally (via
    /// [`RunCtl::cancel`]) and stopped early.
    pub cancelled: bool,
    /// Whether the run degraded to a lower-quality (but still correct)
    /// result because an optional refinement step failed — the
    /// distributed driver sets this when its boundary-recovery worker
    /// died or exceeded its deadline and the coordinator fell back to
    /// the Algorithm-I-quality merge.
    pub degraded: bool,
    /// Rectangles recovered by the distributed driver's boundary-recovery
    /// frontier shards (0 for every single-process driver, and for runs
    /// that degraded before any frontier shard merged; a run that
    /// degrades later — in the resub stage — keeps the frontier
    /// rectangles it already merged).
    pub recovery_rects: usize,
    /// Search→reduce→apply rounds executed (the final empty-handed
    /// search included). With batching (`batch_rects > 1`) several
    /// extractions ride one pass, so `passes < extractions + 1`; the
    /// one-per-pass engine has `passes == extractions + 1` on completed
    /// runs.
    pub passes: usize,
    /// Candidate rectangles the top-K searches returned across all
    /// passes (per pass: at most `batch_rects`).
    pub batch_candidates: usize,
    /// Candidates that survived conflict selection and were applied.
    /// Equals `extractions` for the drivers that batch; 0 when batching
    /// is off (`batch_rects = 1` keeps the classic best-only engine).
    pub batch_accepted: usize,
    /// Candidates dropped by conflict selection (shared column/node with
    /// an earlier pick, or past the remaining extraction budget).
    pub batch_rejected: usize,
    /// Divisor/target pairs the recovery resubstitution examined after
    /// the dirty-worklist gate (0 outside the distributed driver). Sums
    /// the sharded recovery passes and the coordinator's seeded cleanup.
    pub resub_pairs_considered: usize,
    /// Pairs that passed every candidate filter and ran the division.
    pub resub_pairs_divided: usize,
    /// Worklist rounds the resubstitution fixpoints took, summed over
    /// shards and the coordinator cleanup.
    pub resub_worklist_rounds: usize,
    /// Time spent before concurrent extraction began: partitioning,
    /// matrix generation and the B_ij exchange (Algorithm L), or replica
    /// construction (Algorithm R). Part of `elapsed`.
    pub setup: Duration,
    /// Per-phase wall-clock breakdown of `elapsed`, in execution order.
    /// Every driver fills this in; the phase durations sum to `elapsed`
    /// within measurement tolerance (see [`ExtractReport::phases_total`]).
    pub phases: Vec<PhaseTiming>,
}

impl ExtractReport {
    /// Literal-count reduction ratio (`lc_after / lc_before`).
    pub fn quality_ratio(&self) -> f64 {
        if self.lc_before == 0 {
            1.0
        } else {
            self.lc_after as f64 / self.lc_before as f64
        }
    }

    /// Literals saved.
    pub fn saved(&self) -> isize {
        self.lc_before as isize - self.lc_after as isize
    }

    /// Whether the run ran to natural completion (neither timed out nor
    /// cancelled).
    pub fn completed(&self) -> bool {
        !self.timed_out && !self.cancelled
    }

    /// Mean rectangles applied per search pass — the batching win
    /// (`extractions / passes`); 0 before any pass ran.
    pub fn rects_per_pass(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.extractions as f64 / self.passes as f64
        }
    }

    /// Sum of all phase durations. Drivers construct phases so this
    /// covers `elapsed` (each phase is measured against the same clock
    /// and the last phase absorbs the remainder), so
    /// `phases_total()` ≈ `elapsed` for every completed report.
    pub fn phases_total(&self) -> Duration {
        self.phases.iter().map(|p| p.elapsed).sum()
    }

    /// Looks up a phase timing by name.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.elapsed)
    }

    /// Checks `ctl` at a barrier point: records a pending stop request
    /// in the report's `timed_out` / `cancelled` flags and returns
    /// `true` when the caller should break out of its loop.
    pub fn note_stop(&mut self, ctl: &RunCtl) -> bool {
        match ctl.stop_reason() {
            None => false,
            Some(StopReason::Cancelled) => {
                self.cancelled = true;
                true
            }
            Some(StopReason::DeadlineExpired) => {
                self.timed_out = true;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_saved() {
        let r = ExtractReport {
            lc_before: 100,
            lc_after: 70,
            ..Default::default()
        };
        assert!((r.quality_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(r.saved(), 30);
        assert!(r.completed());
    }

    #[test]
    fn empty_network_ratio_is_one() {
        let r = ExtractReport::default();
        assert_eq!(r.quality_ratio(), 1.0);
        assert_eq!(r.saved(), 0);
    }

    #[test]
    fn phase_lookup() {
        let r = ExtractReport {
            phases: vec![
                PhaseTiming::new("matrix", Duration::from_millis(3)),
                PhaseTiming::new("cover", Duration::from_millis(7)),
            ],
            ..Default::default()
        };
        assert_eq!(r.phase("cover"), Some(Duration::from_millis(7)));
        assert_eq!(r.phase("merge"), None);
    }

    #[test]
    fn note_stop_records_reason() {
        let mut r = ExtractReport::default();
        assert!(!r.note_stop(&RunCtl::new()));
        assert!(r.completed());

        let expired = RunCtl::with_deadline(Duration::ZERO);
        assert!(r.note_stop(&expired));
        assert!(r.timed_out && !r.cancelled);

        let mut r2 = ExtractReport::default();
        let ctl = RunCtl::new();
        ctl.cancel();
        assert!(r2.note_stop(&ctl));
        assert!(r2.cancelled && !r2.timed_out);
    }
}
