//! Result types shared by the extraction drivers.

use std::time::Duration;

/// What one extraction run did to a network.
#[derive(Clone, Debug, Default)]
pub struct ExtractReport {
    /// Literal count before.
    pub lc_before: usize,
    /// Literal count after.
    pub lc_after: usize,
    /// Number of rectangles extracted (new nodes created).
    pub extractions: usize,
    /// Sum of rectangle values (expected literal savings).
    pub total_value: i64,
    /// Wall-clock time of the optimization itself.
    pub elapsed: Duration,
    /// Whether any rectangle search exhausted its budget and returned
    /// the greedy fallback.
    pub budget_exhausted: bool,
    /// Number of cross-partition partial rectangles shipped between
    /// processors (Algorithms L only; 0 elsewhere).
    pub shipped_rectangles: usize,
    /// Whether the run hit its wall-clock deadline and stopped early
    /// (Table 2's "did not terminate" entries).
    pub timed_out: bool,
    /// Time spent before concurrent extraction began: partitioning,
    /// matrix generation and the B_ij exchange (Algorithm L), or replica
    /// construction (Algorithm R). Part of `elapsed`.
    pub setup: Duration,
}

impl ExtractReport {
    /// Literal-count reduction ratio (`lc_after / lc_before`).
    pub fn quality_ratio(&self) -> f64 {
        if self.lc_before == 0 {
            1.0
        } else {
            self.lc_after as f64 / self.lc_before as f64
        }
    }

    /// Literals saved.
    pub fn saved(&self) -> isize {
        self.lc_before as isize - self.lc_after as isize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_saved() {
        let r = ExtractReport {
            lc_before: 100,
            lc_after: 70,
            ..Default::default()
        };
        assert!((r.quality_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(r.saved(), 30);
    }

    #[test]
    fn empty_network_ratio_is_one() {
        let r = ExtractReport::default();
        assert_eq!(r.quality_ratio(), 1.0);
        assert_eq!(r.saved(), 0);
    }
}
