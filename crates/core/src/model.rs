//! The analytic speedup model of Equation 3.
//!
//! The paper models the L-shaped algorithm's speedup as
//!
//! ```text
//!                p²
//! S(p) = ──────────────────────
//!        (1 + γ(p−1) / (2αp))²
//! ```
//!
//! where `p` is the number of partitions and `α`, `γ` are the sparsity
//! factors (fraction of non-zero entries) of the initial KC matrix and of
//! the L-shaped KC matrix respectively. Intuition: rectangle search cost
//! grows roughly quadratically with the number of matrix entries; each
//! L-matrix holds a `1/p` slab of the rows plus the `γ/(2α)`-weighted
//! vertical leg.

use pf_kcmatrix::KcMatrix;

/// Sparsity factors feeding Equation 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparsityFactors {
    /// Sparsity (non-zero fraction) of the full KC matrix.
    pub alpha: f64,
    /// Sparsity of the L-shaped KC matrix.
    pub gamma: f64,
}

impl SparsityFactors {
    /// Measures the sparsity of a matrix: alive entries over the
    /// `rows × cols` bounding box (0 when the matrix is degenerate).
    pub fn measure(m: &KcMatrix) -> f64 {
        let rows = m.num_alive_rows();
        let cols = m.cols().len();
        if rows == 0 || cols == 0 {
            return 0.0;
        }
        m.num_entries() as f64 / (rows as f64 * cols as f64)
    }
}

/// Equation 3: predicted speedup of the L-shaped algorithm on `p`
/// partitions with sparsity factors `f`.
///
/// `p = 1` always predicts 1.0 regardless of the factors.
pub fn predicted_speedup(p: usize, f: &SparsityFactors) -> f64 {
    assert!(p >= 1, "at least one partition");
    assert!(f.alpha > 0.0, "alpha must be positive");
    let p_f = p as f64;
    let denom = 1.0 + (f.gamma * (p_f - 1.0)) / (2.0 * f.alpha * p_f);
    (p_f * p_f) / (denom * denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_has_unit_speedup() {
        let f = SparsityFactors {
            alpha: 0.2,
            gamma: 0.1,
        };
        assert!((predicted_speedup(1, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_overlap_gives_quadratic_speedup() {
        // γ = 0: the model's super-linear regime (fewer rectangles
        // searched), S = p².
        let f = SparsityFactors {
            alpha: 0.3,
            gamma: 0.0,
        };
        assert!((predicted_speedup(4, &f) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_overlap_means_less_speedup() {
        let a = SparsityFactors {
            alpha: 0.25,
            gamma: 0.05,
        };
        let b = SparsityFactors {
            alpha: 0.25,
            gamma: 0.25,
        };
        for p in [2usize, 4, 6] {
            assert!(predicted_speedup(p, &a) > predicted_speedup(p, &b));
        }
    }

    #[test]
    fn speedup_grows_with_p_for_moderate_overlap() {
        let f = SparsityFactors {
            alpha: 0.25,
            gamma: 0.1,
        };
        let s2 = predicted_speedup(2, &f);
        let s4 = predicted_speedup(4, &f);
        let s6 = predicted_speedup(6, &f);
        assert!(s2 < s4 && s4 < s6);
        assert!(s2 > 1.0);
    }

    #[test]
    fn formula_spot_check() {
        // p = 6, α = 0.25, γ = 0.25: denom = 1 + 0.25·5/(2·0.25·6) = 1 + 5/12
        // S = 36 / (17/12)² = 36·144/289 ≈ 17.93…
        let f = SparsityFactors {
            alpha: 0.25,
            gamma: 0.25,
        };
        let s = predicted_speedup(6, &f);
        assert!((s - 36.0 * 144.0 / 289.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        predicted_speedup(
            2,
            &SparsityFactors {
                alpha: 0.0,
                gamma: 0.1,
            },
        );
    }
}
